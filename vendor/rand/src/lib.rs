//! Vendored, dependency-free subset of the `rand` 0.9 API.
//!
//! This workspace builds fully offline, so the pieces of `rand` it uses
//! are reimplemented here: a deterministic [`rngs::StdRng`]
//! (xoshiro256++ seeded by SplitMix64), the [`RngExt`] extension trait
//! (`random`, `random_range`), [`SeedableRng::seed_from_u64`], and the
//! slice helpers [`seq::SliceRandom::shuffle`] /
//! [`seq::IndexedRandom::choose`].
//!
//! The implementation is *not* the upstream algorithms — streams differ
//! from crates.io `rand` — but it is deterministic in the seed, which is
//! all the workspace relies on.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator via [`RngExt::random`].
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that can be drawn uniformly from a bounded interval.
pub trait SampleUniform: Sized {
    /// Draws from `[start, end)` (`[start, end]` when `inclusive`).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as i128 - start as i128) + i128::from(inclusive);
                assert!(span > 0, "empty range");
                let v = rng.next_u64() as u128 % span as u128;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(start < end, "empty range");
                let f: $t = StandardSample::sample(rng);
                start + f * (end - start)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges samplable via [`RngExt::random_range`]. The element type is a
/// trait parameter and the impls are blanket impls over
/// [`SampleUniform`] (mirroring upstream `rand`), so the expected output
/// type drives integer-literal inference at call sites.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample of `T` (full integer range, `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
