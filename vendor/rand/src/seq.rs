//! Sequence helpers: in-place shuffling and uniform element choice.

use crate::{RngCore, RngExt};

/// In-place uniform shuffling of slices.
pub trait SliceRandom {
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Uniform choice of one element from a slice.
pub trait IndexedRandom<T> {
    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T>;
}

impl<T> IndexedRandom<T> for [T] {
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.random_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
