//! Meta-test: the proptest! harness must actually run bodies and fail
//! on violated properties.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn passing_property_runs(x in 0u32..100) {
        prop_assert!(x < 100);
    }
}

#[test]
fn failing_property_panics() {
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn inner(x in 0u32..100) {
            prop_assert!(x < 5, "x was {}", x);
        }
    }
    let result = std::panic::catch_unwind(inner);
    assert!(result.is_err(), "violated property must panic");
}

#[test]
fn rejects_are_skipped_not_failed() {
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn inner(x in 0u32..100) {
            if x % 2 == 0 {
                return Err(TestCaseError::reject("even"));
            }
            prop_assert!(x % 2 == 1);
        }
    }
    inner();
}
