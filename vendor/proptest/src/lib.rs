//! Vendored, dependency-free subset of the `proptest` API.
//!
//! This workspace builds fully offline, so the pieces of `proptest` its
//! test suites use are reimplemented here: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the generated inputs' case number), and generation is driven by a
//! deterministic per-test RNG derived from the test name, so failures
//! reproduce across runs.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
mod strategy;

pub use strategy::{FlatMap, Just, Map, Strategy, TupleStrategy};

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator seeded from a 64-bit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// A generator seeded from a test name (FNV-1a hash), so each test
    /// gets a distinct but stable stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self::from_seed(h)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_index(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
    }
}

/// Per-test configuration, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why one generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion (test fails).
    Fail(String),
    /// The case was rejected as invalid input (skipped, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs; the body may use
/// [`prop_assert!`]-family macros and `?` with [`TestCaseError`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::core::result::Result::Err(e) => {
                            panic!("proptest: case {} of {} failed: {}", __case, stringify!($name), e)
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}
