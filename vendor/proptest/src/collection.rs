//! Collection strategies.

use crate::{Strategy, TestRng};

/// A strategy producing `Vec`s of `element` with length drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start).max(1) as u128;
        let len = self.size.start + rng.next_index(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::from_seed(3);
        let s = vec(0u8..10, 2..7);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
