//! The [`Strategy`] trait and its combinators/primitive impls.

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.next_index(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.next_index(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float!(f32, f64);

/// Marker trait documenting that tuples of strategies are strategies.
pub trait TupleStrategy {}

macro_rules! impl_strategy_tuple {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> TupleStrategy for ($($s,)+) {}

        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A / 0);
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let (a, b, f) = (0u8..4, 2usize..=6, -1.0f64..1.0).generate(&mut rng);
            assert!(a < 4);
            assert!((2..=6).contains(&b));
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (1usize..5).prop_flat_map(|n| (0..n).prop_map(move |k| (n, k)));
        for _ in 0..200 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
        assert_eq!(Just(9u8).generate(&mut rng), 9);
    }
}
