//! The conventional `use proptest::prelude::*;` import surface.

pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    TestCaseError, TestRng,
};
