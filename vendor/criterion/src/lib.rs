//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! This workspace builds fully offline; the benches only need
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Timing is a simple
//! best-of-N wall-clock measurement printed to stdout — adequate for the
//! relative comparisons the workspace benches make, without upstream's
//! statistical machinery.

#![warn(missing_docs)]

use std::time::Instant;

/// Benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// A driver with the default sample size (10).
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Criterion { sample_size: 10 }
    }

    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark and prints its best/mean sample times.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One warm-up plus the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let best = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = b.samples.iter().sum::<f64>() / b.samples.len().max(1) as f64;
        println!(
            "bench {id:<40} best {:>12} mean {:>12}",
            fmt_time(best),
            fmt_time(mean)
        );
        self
    }
}

fn fmt_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        "n/a".into()
    } else if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Times closures for one benchmark sample.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one execution of `f` and records it as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed().as_secs_f64());
        drop(out);
    }
}

/// Groups benchmark functions under one name, with optional config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 samples, one iter each.
        assert_eq!(runs, 4);
    }

    #[test]
    fn time_formatting_ranges() {
        assert!(fmt_time(2.5e-9).ends_with("ns"));
        assert!(fmt_time(2.5e-6).ends_with("µs"));
        assert!(fmt_time(2.5e-3).ends_with("ms"));
        assert!(fmt_time(2.5).ends_with("s"));
    }
}
