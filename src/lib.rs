//! Umbrella crate for the Atomique (ISCA 2024) reproduction.
//!
//! Re-exports the public API of every workspace crate so that examples and
//! downstream users can depend on a single crate.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use atomique;
pub use raa_arch as arch;
pub use raa_baselines as baselines;
pub use raa_benchmarks as benchmarks;
pub use raa_circuit as circuit;
pub use raa_physics as physics;
pub use raa_sabre as sabre;
