//! Cross-crate integration tests of the baseline compilers against
//! Atomique: the qualitative claims of the paper's evaluation must hold.

use std::time::Duration;

use atomique::{compile, AtomiqueConfig};
use raa_baselines::{
    compile_fixed, geyser_pulses_routed, qpilot, tan_iterp, tan_solver, FixedArchitecture,
};
use raa_benchmarks::{arbitrary_circuit, qaoa_regular, qsim_random};
use raa_physics::HardwareParams;

/// On a high-degree non-local workload, Atomique needs fewer two-qubit
/// gates than every fixed atom array (the paper's core claim).
#[test]
fn atomique_beats_fixed_arrays_on_nonlocal_circuits() {
    let c = qsim_random(20, 0.5, 10, 3);
    let ours = compile(&c, &AtomiqueConfig::default()).unwrap();
    for arch in [
        FixedArchitecture::FaaRectangular,
        FixedArchitecture::FaaTriangular,
    ] {
        let base = compile_fixed(&c, arch, 0).unwrap();
        assert!(
            ours.stats.two_qubit_gates <= base.two_qubit_gates,
            "{}: {} < {}",
            arch.name(),
            base.two_qubit_gates,
            ours.stats.two_qubit_gates
        );
    }
}

/// Atomique inserts fewer additional CNOTs than the fixed baselines
/// (Fig. 25's claim).
#[test]
fn atomique_adds_fewest_cnots() {
    let c = qaoa_regular(20, 5, 1);
    let ours = compile(&c, &AtomiqueConfig::default()).unwrap();
    for arch in FixedArchitecture::ALL {
        let base = compile_fixed(&c, arch, 0).unwrap();
        assert!(
            ours.stats.additional_cnots <= base.additional_cnots,
            "{}: {} additional vs ours {}",
            arch.name(),
            base.additional_cnots,
            ours.stats.additional_cnots
        );
    }
}

/// Q-Pilot trades gates for depth (Fig. 19's shape).
#[test]
fn qpilot_shallower_but_more_gates() {
    let c = qaoa_regular(20, 5, 2);
    let ours = compile(&c, &AtomiqueConfig::default()).unwrap();
    let qp = qpilot(&c, &HardwareParams::neutral_atom());
    assert!(qp.two_qubit_gates > ours.stats.two_qubit_gates);
    assert!(qp.depth <= ours.stats.depth);
}

/// Tan-Solver produces at-least-greedy-quality schedules and costs far
/// more compile time (Fig. 14's shape).
#[test]
fn solver_quality_and_cost() {
    let c = qsim_random(8, 0.5, 6, 4);
    let params = HardwareParams::neutral_atom();
    let greedy = tan_iterp(&c, &params);
    let solver = tan_solver(&c, &params, Duration::from_secs(3));
    assert!(solver.stages <= greedy.stages);
    assert!(solver.compile_time_s >= greedy.compile_time_s);
}

/// Atomique's pulse count beats Geyser's blocked resynthesis
/// (Table III's claim).
#[test]
fn fewer_pulses_than_geyser() {
    let c = raa_benchmarks::bv(50, 22, 0);
    let g = geyser_pulses_routed(&c).unwrap();
    let ours = compile(&c, &AtomiqueConfig::default()).unwrap();
    let pulses = raa_baselines::atomique_pulses(ours.stats.two_qubit_gates);
    assert!(
        pulses < g.pulses,
        "Atomique {pulses} pulses vs Geyser {}",
        g.pulses
    );
}

/// The MAX k-Cut mapper pays off against the dense mapper on structured
/// interaction graphs (Fig. 21's first ablation step).
#[test]
fn mapper_ablation_direction() {
    let c = arbitrary_circuit(24, 16.0, 5.0, 5);
    let smart = compile(&c, &AtomiqueConfig::default()).unwrap();
    let baseline = compile(&c, &AtomiqueConfig::default().ablation_baseline()).unwrap();
    assert!(smart.stats.swaps_inserted <= baseline.stats.swaps_inserted);
    assert!(smart.stats.depth <= baseline.stats.depth);
    assert!(smart.total_fidelity() >= baseline.total_fidelity());
}
