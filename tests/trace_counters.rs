//! Counter-based regression gates: the telemetry counters the compile
//! pipeline emits under detail tracing are *exactly* reproducible —
//! compilation is deterministic (seeded, no ambient randomness, no
//! wall-clock-dependent decisions), so the committed per-benchmark
//! baselines below must match to the last increment on every machine
//! and build profile. A drift means the pipeline's work profile changed
//! (more grid queries, a pass suddenly rejected, the incremental
//! verifier falling back to the oracle) — exactly the class of silent
//! regression wall-clock benchmarks cannot catch.
//!
//! On intentional pipeline changes, regenerate the table: the failure
//! message prints the new rows as Rust source ready to paste.
//!
//! The companion guard [`disabled_tracing_records_no_counters`] pins
//! the off-path: without `trace: true` a compile must attach zero
//! counters and only the fixed handful of coarse stage spans, so the
//! instrumentation stays near-free when disabled.

use atomique::{compile, AtomiqueConfig, OptLevel};
use raa_benchmarks::small_suite;

/// The gated columns, in order: spatial-grid queries, router admission
/// attempts, optimizer candidate rewrites, optimizer rejections,
/// incremental-verifier full-oracle fallbacks, and the four
/// transpile-index cache columns (score-cache hits, from-scratch delta
/// derivations, duplicate candidates skipped, extended-set reuses —
/// the default `TranspileIndex::Indexed` path's work profile).
const COLUMNS: [&str; 9] = [
    "grid.query",
    "route.try_add",
    "opt.candidates",
    "opt.rejected",
    "opt.verify.full",
    "transpile.score_cache_hit",
    "transpile.score_recompute",
    "transpile.score_dedup",
    "transpile.extset_incremental",
];

/// Committed counter baselines for [`traced_config`] over the small
/// suite. Regenerate by running this test and pasting the printed rows.
const BASELINES: &[(&str, [u64; 9])] = &[
    ("Mermin-Bell-5", [423, 30, 3, 0, 0, 0, 18, 0, 0]),
    ("VQE-10", [265, 10, 3, 0, 0, 0, 0, 0, 0]),
    ("VQE-20", [923, 23, 3, 0, 0, 0, 0, 0, 0]),
    ("Adder-10", [1772, 83, 3, 0, 0, 0, 0, 0, 0]),
    ("BV-14", [521, 15, 1, 0, 0, 0, 0, 0, 0]),
    ("QSim-rand-5", [549, 39, 3, 0, 0, 0, 6, 0, 0]),
    ("QSim-rand-10", [2384, 103, 3, 0, 0, 0, 24, 0, 0]),
    ("H2-4", [512, 42, 2, 0, 0, 0, 0, 0, 0]),
    ("QAOA-rand-5", [42, 3, 0, 0, 0, 0, 0, 0, 0]),
    ("QAOA-regu3-20", [934, 60, 3, 0, 0, 0, 24, 0, 0]),
    ("QAOA-regu4-10", [479, 30, 2, 0, 0, 0, 14, 0, 0]),
];

/// The fixed workload configuration the baselines were recorded under:
/// full pipeline through aggressive ISA optimization with the
/// legality + replay oracle, detail tracing on.
fn traced_config() -> AtomiqueConfig {
    AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        opt_level: OptLevel::Aggressive,
        trace: true,
        ..AtomiqueConfig::default()
    }
}

fn render_rows(rows: &[(String, [u64; 9])]) -> String {
    let mut s = String::new();
    for (name, vals) in rows {
        let cells = vals.map(|v| v.to_string()).join(", ");
        s.push_str(&format!("    (\"{name}\", [{cells}]),\n"));
    }
    s
}

#[test]
fn counters_match_committed_baselines_exactly() {
    let mut actual: Vec<(String, [u64; 9])> = Vec::new();
    for b in small_suite() {
        let out =
            compile(&b.circuit, &traced_config()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut vals = [0u64; 9];
        for (v, col) in vals.iter_mut().zip(COLUMNS) {
            *v = out.report.counter(col);
        }
        actual.push((b.name.to_string(), vals));
    }
    let expected: Vec<(String, [u64; 9])> =
        BASELINES.iter().map(|(n, v)| (n.to_string(), *v)).collect();
    assert_eq!(
        actual,
        expected,
        "\ncounter baselines drifted (columns: {COLUMNS:?}).\n\
         If the pipeline change is intentional, replace BASELINES in\n\
         tests/trace_counters.rs with:\n{}",
        render_rows(&actual)
    );
}

/// The zero-fault case of the chaos work: with no `RAA_FAULT_SPEC`
/// armed (the only state this binary ever runs in), the fault seams
/// compiled into the pipeline are completely inert — no fault counter
/// ticks, no registry state accumulates, and the exact baselines above
/// hold with the gates compiled in. This pins the "free when off"
/// claim the tier-1 suites rest on.
#[test]
fn fault_instrumentation_is_inert_when_disarmed() {
    assert!(!raa_fault::active(), "no test in this binary arms faults");
    for b in small_suite().into_iter().take(3) {
        let out =
            compile(&b.circuit, &traced_config()).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_eq!(
            out.report.counter("compile.fault.injected"),
            0,
            "{}: fault injected with no schedule armed",
            b.name
        );
    }
    assert!(
        raa_fault::stats().is_empty(),
        "disarmed evaluation recorded registry state: {:?}",
        raa_fault::stats()
    );
    assert_eq!(raa_fault::fired_total(), 0);
}

/// With tracing off (the default), a compile still derives its stage
/// timings from the span tree but must record *no* counters and only
/// the coarse stage spans — a fixed handful of nodes regardless of
/// workload size, so the disabled path cannot accumulate per-gate cost.
#[test]
fn disabled_tracing_records_no_counters() {
    fn count_spans(spans: &[atomique::trace::SpanNode]) -> usize {
        spans.iter().map(|s| 1 + count_spans(&s.children)).sum()
    }
    for b in small_suite() {
        let cfg = AtomiqueConfig {
            trace: false,
            ..traced_config()
        };
        let out = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(
            out.report.trace.counters.is_empty(),
            "{}: counters recorded with tracing disabled: {:?}",
            b.name,
            out.report.trace.counters
        );
        let n = count_spans(&out.report.trace.spans);
        assert!(
            n <= 16,
            "{}: {n} spans at stage level (expected a fixed coarse handful)",
            b.name
        );
    }
}
