//! Differential harness for the layered router strategy
//! (`RouterStrategy::Layered` vs the `Sequential` baseline).
//!
//! Layered batching *intentionally* changes the schedule — stages merge
//! into coordinated layers, round trips are elided — so unlike the
//! proximity-index differential the two streams are not byte-identical.
//! What must hold instead, over the full small suite × the four
//! router-relevant configurations:
//!
//! * **Same computation.** The flattened gate-event sequence (each
//!   pulse's pairs in order, Raman layers, transfers, cooling swaps) is
//!   identical, and the layered stream passes `check_legality` (both
//!   candidate-enumeration modes) and `replay_verify` against the same
//!   reference circuit, plus the stage-level validator.
//! * **Never worse.** Pulse count and line travel never increase, and
//!   the schedule's depth (two-qubit stages) never grows.
//! * **Strictly better where it matters.** On a majority of the
//!   Atomique small-suite streams the layered strategy strictly reduces
//!   pulse count or total line travel — the acceptance bar for
//!   Arctic-style move batching being worth its compile-time cost.

use atomique::{
    compile, validate_program, AtomiqueConfig, CompiledProgram, ProximityIndex, RouterMode,
    RouterStrategy,
};
use raa_arch::RaaConfig;
use raa_benchmarks::small_suite;
use raa_isa::{check_legality_mode, flat_gate_events, replay_verify, CheckMode, IsaStats};

/// The same four router configurations the proximity differential
/// sweeps: paper defaults, serial scheduling, the Fig. 21 all-baselines
/// ablation, and a three-AOD machine.
fn configs() -> Vec<(&'static str, AtomiqueConfig)> {
    let base = AtomiqueConfig {
        emit_isa: true,
        ..AtomiqueConfig::default()
    };
    vec![
        ("default", base.clone()),
        (
            "serial",
            AtomiqueConfig {
                router_mode: RouterMode::Serial,
                ..base.clone()
            },
        ),
        ("ablation-baseline", base.clone().ablation_baseline()),
        (
            "three-aods",
            AtomiqueConfig {
                hardware: RaaConfig::square(10, 3).expect("valid machine"),
                ..base
            },
        ),
    ]
}

fn compile_with(circuit: &raa_circuit::Circuit, cfg: &AtomiqueConfig) -> CompiledProgram {
    compile(circuit, cfg).expect("small-suite circuits always compile")
}

#[test]
fn layered_matches_sequential_gate_for_gate_and_never_regresses() {
    let mut cases = 0usize;
    let mut default_cases = 0usize;
    let mut strict_wins = 0usize;
    let mut default_strict_wins = 0usize;

    for b in small_suite() {
        for (cfg_name, cfg) in configs() {
            let ctx = format!("{}/{cfg_name}", b.name);
            let seq = compile_with(
                &b.circuit,
                &AtomiqueConfig {
                    router_strategy: RouterStrategy::Sequential,
                    ..cfg.clone()
                },
            );
            let lay = compile_with(
                &b.circuit,
                &AtomiqueConfig {
                    router_strategy: RouterStrategy::Layered,
                    ..cfg.clone()
                },
            );
            let seq_isa = seq.isa.as_ref().expect("emit_isa set");
            let lay_isa = lay.isa.as_ref().expect("emit_isa set");

            // Same computation: flattened gate trace identical, oracle
            // clean in both checker modes, replay faithful, stage
            // validator clean.
            assert_eq!(
                flat_gate_events(&lay_isa.instrs),
                flat_gate_events(&seq_isa.instrs),
                "{ctx}: flattened gate sequences differ"
            );
            check_legality_mode(lay_isa, CheckMode::Grid)
                .unwrap_or_else(|e| panic!("{ctx}: layered stream (grid): {e}"));
            check_legality_mode(lay_isa, CheckMode::Exhaustive)
                .unwrap_or_else(|e| panic!("{ctx}: layered stream (exhaustive): {e}"));
            replay_verify(lay_isa).unwrap_or_else(|e| panic!("{ctx}: layered replay: {e}"));
            validate_program(&lay, &cfg.hardware, &lay.mapping.site_of_slot)
                .unwrap_or_else(|e| panic!("{ctx}: layered validator: {e}"));

            // The proximity index must not leak into layered schedules
            // either: grid and exhaustive enumeration give the same
            // layered stream.
            let lay_scan = compile_with(
                &b.circuit,
                &AtomiqueConfig {
                    router_strategy: RouterStrategy::Layered,
                    proximity_index: ProximityIndex::Exhaustive,
                    ..cfg.clone()
                },
            );
            assert_eq!(
                raa_isa::codec::to_bytes(lay_isa),
                raa_isa::codec::to_bytes(lay_scan.isa.as_ref().unwrap()),
                "{ctx}: layered stream differs across proximity modes"
            );

            // Never worse, on every metric the batching touches.
            let s = IsaStats::of(seq_isa);
            let l = IsaStats::of(lay_isa);
            assert!(
                l.pulses <= s.pulses,
                "{ctx}: pulses grew {} -> {}",
                s.pulses,
                l.pulses
            );
            assert!(
                l.line_travel_tracks <= s.line_travel_tracks + 1e-9,
                "{ctx}: travel grew {} -> {}",
                s.line_travel_tracks,
                l.line_travel_tracks
            );
            assert!(l.instructions <= s.instructions, "{ctx}: instructions grew");
            assert!(
                lay.stats.depth <= seq.stats.depth,
                "{ctx}: depth grew {} -> {}",
                seq.stats.depth,
                lay.stats.depth
            );
            assert_eq!(
                lay.stats.two_qubit_gates, seq.stats.two_qubit_gates,
                "{ctx}: gate counts differ"
            );

            // Accounting-drift guard: the layered path re-derives
            // RouterStats by replaying the (merged) stages through its
            // own mirror of the sequential router's charging rules.
            // When batching changed nothing — the two streams are
            // byte-identical — the mirrored accounting must reproduce
            // the in-loop accounting exactly, so any divergence in the
            // duplicated reset/cooling/transfer/move charging rules
            // fails here instead of silently skewing fidelity numbers.
            if raa_isa::codec::to_bytes(lay_isa) == raa_isa::codec::to_bytes(seq_isa) {
                assert_eq!(
                    lay.stats.execution_time_s, seq.stats.execution_time_s,
                    "{ctx}: identical schedules, different execution time"
                );
                // Approximate: the in-loop accounting sums per-atom
                // distances in hash-iteration order, so identical
                // schedules can differ in the last float bits.
                let (a, b) = (
                    lay.stats.total_move_distance_mm,
                    seq.stats.total_move_distance_mm,
                );
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "{ctx}: identical schedules, move distance {a} vs {b}"
                );
                assert_eq!(
                    lay.stats.num_move_stages, seq.stats.num_move_stages,
                    "{ctx}: identical schedules, different move-stage count"
                );
                assert_eq!(
                    lay.fidelity.total(),
                    seq.fidelity.total(),
                    "{ctx}: identical schedules, different fidelity"
                );
            }

            let win = l.pulses < s.pulses || l.line_travel_tracks < s.line_travel_tracks - 1e-9;
            cases += 1;
            strict_wins += win as usize;
            if cfg_name == "default" {
                default_cases += 1;
                default_strict_wins += win as usize;
            }
        }
    }

    // Strict reduction of pulses or travel on a majority of streams —
    // both across the whole sweep and on the paper-default
    // configuration alone.
    assert!(
        2 * strict_wins > cases,
        "layered strictly improved only {strict_wins}/{cases} cases"
    );
    assert!(
        2 * default_strict_wins > default_cases,
        "layered strictly improved only {default_strict_wins}/{default_cases} default-config cases"
    );
}

/// Serial scheduling leaves parallelism on the table by construction;
/// layered batching must recover a measurable part of it, merging
/// pulses that the per-gate planner serialized. This is the
/// router-level counterpart of the `parallelize` ISA pass (same merge
/// conditions, applied upstream), and the two must agree: running the
/// ISA optimizer's pulse merging on the *sequential* serial stream
/// finds exactly the pulses the layered router merged.
#[test]
fn layered_recovers_serial_parallelism_and_agrees_with_the_isa_pass() {
    let mut merged_total = 0usize;
    for b in small_suite() {
        let base = AtomiqueConfig {
            emit_isa: true,
            router_mode: RouterMode::Serial,
            ..AtomiqueConfig::default()
        };
        let seq = compile_with(&b.circuit, &base);
        let lay = compile_with(
            &b.circuit,
            &AtomiqueConfig {
                router_strategy: RouterStrategy::Layered,
                ..base
            },
        );
        let s = IsaStats::of(seq.isa.as_ref().unwrap());
        let l = IsaStats::of(lay.isa.as_ref().unwrap());
        let router_merged = s.pulses - l.pulses;
        merged_total += router_merged;

        let (_, report) =
            raa_isa::optimize(seq.isa.as_ref().unwrap(), raa_isa::OptLevel::Aggressive);
        assert_eq!(
            report.merged_pulses, router_merged,
            "{}: router merged {} pulses, ISA pass merged {}",
            b.name, router_merged, report.merged_pulses
        );
    }
    assert!(
        merged_total > 0,
        "layered routing merged no pulses on any serial small-suite stream"
    );
}
