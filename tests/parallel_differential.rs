//! Parallel-compilation differential harness: a compile running on a
//! multi-worker `raa-par` pool must be *observably identical* to the
//! sequential compile it parallelizes — same schedule down to every
//! line move, byte-identical lowered ISA, the same stage-span set, and
//! every telemetry counter matching to the last increment. The pool
//! only changes *which thread* evaluates each independent job (SABRE
//! candidate scores, MAX k-Cut degrees, C1 scan shards, harness
//! re-verifies), never the values or the merge order, so any divergence
//! here is a determinism bug in a parallel stage.
//!
//! Coverage: the full small suite under the four router-relevant
//! Atomique configurations (the same backend set as
//! `tests/router_differential.rs`), each compiled at `threads` ∈
//! {1, 2, 4, 8} with the 1-thread compile as the reference. Counter
//! equality against the 1-thread run also transitively re-proves the
//! committed baselines of `tests/trace_counters.rs` at every thread
//! count (and CI's `ATOMIQUE_THREADS=4` leg checks them directly). A
//! final test drives the whole-suite fan-out
//! (`raa_bench::harness::compile_suite_pooled`): concurrent compiles
//! own separate trace sessions, so per-compile counters must show no
//! cross-talk.

use atomique::{compile, AtomiqueConfig, CompiledProgram, LineMove, OptLevel};
use raa_arch::RaaConfig;
use raa_bench::harness::compile_suite_pooled;
use raa_benchmarks::small_suite;
use raa_isa::codec;
use raa_par::WorkPool;

/// The pool widths swept against the 1-thread reference.
const THREADS: [usize; 3] = [2, 4, 8];

/// The four configurations the harness sweeps — the backend set of
/// `tests/router_differential.rs`, here with the full pipeline enabled
/// (aggressive ISA optimization, verification, detail tracing) so every
/// parallel stage actually runs.
fn configs() -> Vec<(&'static str, AtomiqueConfig)> {
    let base = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        opt_level: OptLevel::Aggressive,
        trace: true,
        threads: 1,
        ..AtomiqueConfig::default()
    };
    vec![
        ("default", base.clone()),
        (
            "serial",
            AtomiqueConfig {
                router_mode: atomique::RouterMode::Serial,
                ..base.clone()
            },
        ),
        ("ablation-baseline", base.clone().ablation_baseline()),
        (
            "three-aods",
            AtomiqueConfig {
                hardware: RaaConfig::square(10, 3).expect("valid machine"),
                ..base
            },
        ),
    ]
}

/// Bit-level line-move equality (unpark markers carry NaN coordinates,
/// so `==` on the floats would never match them).
fn moves_eq(a: &[LineMove], b: &[LineMove]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.aod == y.aod
                && x.axis_row == y.axis_row
                && x.line == y.line
                && x.from_track.to_bits() == y.from_track.to_bits()
                && x.to_track.to_bits() == y.to_track.to_bits()
        })
}

/// The names of the compile root's direct children — the stage-span
/// set. Parallel waves add `par.*` *detail* spans nested inside stages,
/// but the stage level itself must be byte-for-byte stable.
fn stage_span_names(out: &CompiledProgram) -> Vec<String> {
    out.report
        .root()
        .map(|root| root.children.iter().map(|s| s.name.clone()).collect())
        .unwrap_or_default()
}

fn assert_observably_identical(ctx: &str, seq: &CompiledProgram, par: &CompiledProgram) {
    assert_eq!(
        seq.stages.len(),
        par.stages.len(),
        "{ctx}: stage counts differ"
    );
    for (i, (s, p)) in seq.stages.iter().zip(par.stages.iter()).enumerate() {
        assert_eq!(s.kind, p.kind, "{ctx}: stage {i} kind");
        assert_eq!(s.gate_pairs, p.gate_pairs, "{ctx}: stage {i} gate pairs");
        assert_eq!(
            s.one_qubit_gates, p.one_qubit_gates,
            "{ctx}: stage {i} 1Q gates"
        );
        assert!(moves_eq(&s.moves, &p.moves), "{ctx}: stage {i} moves");
        assert!(
            moves_eq(&s.retract_moves, &p.retract_moves),
            "{ctx}: stage {i} retraction moves"
        );
    }
    assert_eq!(seq.mapping, par.mapping, "{ctx}: atom mappings differ");
    assert_eq!(
        seq.stats.two_qubit_gates, par.stats.two_qubit_gates,
        "{ctx}: gate counts differ"
    );
    assert_eq!(seq.stats.depth, par.stats.depth, "{ctx}: depths differ");
    // The lowered instruction streams must be byte-identical.
    let sb = codec::to_bytes(seq.isa.as_ref().expect("emit_isa set"));
    let pb = codec::to_bytes(par.isa.as_ref().expect("emit_isa set"));
    assert_eq!(sb, pb, "{ctx}: ISA streams differ");
    // Same stage-span set: parallelism may nest detail spans, never
    // add, drop or reorder pipeline stages.
    assert_eq!(
        stage_span_names(seq),
        stage_span_names(par),
        "{ctx}: stage-span sets differ"
    );
    // Every counter, to the last increment: worker increments land in
    // the session's shared atomic store, and no parallel path may do
    // different work than its sequential twin on an accepting compile.
    assert_eq!(
        seq.report.counters(),
        par.report.counters(),
        "{ctx}: counters differ"
    );
}

#[test]
fn parallel_compiles_are_bit_identical_on_the_small_suite() {
    for b in small_suite() {
        for (cfg_name, cfg) in configs() {
            let seq =
                compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}/{cfg_name}: {e}", b.name));
            assert!(
                seq.report.counter("route.try_add") > 0,
                "{}/{cfg_name}: reference compile recorded no counters",
                b.name
            );
            for t in THREADS {
                let ctx = format!("{}/{cfg_name}/threads={t}", b.name);
                let par = compile(
                    &b.circuit,
                    &AtomiqueConfig {
                        threads: t,
                        ..cfg.clone()
                    },
                )
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                assert_observably_identical(&ctx, &seq, &par);
            }
        }
    }
}

/// The whole-suite fan-out: every small-suite benchmark compiled
/// concurrently on one pool via `compile_suite_pooled`. Each job owns
/// its trace session, so the per-compile counter tables must equal the
/// sequential per-benchmark tables exactly — concurrent sessions may
/// not bleed increments into each other — and results come back in
/// submission order.
#[test]
fn suite_fanout_has_no_counter_cross_talk() {
    let suite = small_suite();
    let cfg = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        opt_level: OptLevel::Aggressive,
        trace: true,
        threads: 1,
        ..AtomiqueConfig::default()
    };
    let jobs: Vec<(&str, &raa_circuit::Circuit, AtomiqueConfig)> = suite
        .iter()
        .map(|b| (b.name, &b.circuit, cfg.clone()))
        .collect();
    let pooled = compile_suite_pooled(&jobs, &WorkPool::new(4));
    assert_eq!(pooled.len(), suite.len());
    for (b, p) in suite.iter().zip(&pooled) {
        let seq = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_observably_identical(&format!("{}/suite-fanout", b.name), &seq, p);
    }
}
