//! Transpile-index differential harness: a compile running with
//! `TranspileIndex::Indexed` (analytic multipartite graph construction,
//! incremental SABRE score cache, O(Δ) MAX k-Cut degree maintenance)
//! must be *observably identical* to the naive from-scratch path it
//! accelerates — same schedule down to every line move, byte-identical
//! lowered ISA, the same stage-span set, and (outside the `transpile.*`
//! cache-telemetry family, which only the indexed path ticks) every
//! counter matching to the last increment. The index only changes *how*
//! each score or degree is obtained (cached integer deltas replayed
//! through the identical float arithmetic), never the values or the
//! visit order, so any divergence here is a correctness bug in an
//! invalidation path.
//!
//! Coverage: the full small suite at Naive vs Indexed × `threads` ∈
//! {1, 4} (the indexed score cache must also be thread-invariant,
//! *including* its own `transpile.*` counters — cache hits depend only
//! on prior-round state, never on which worker evaluated a candidate),
//! plus release-only 1024-atom full-pipeline identity on both scaling
//! families and the QSim-4096 transpile-stage speedup gate from the
//! roadmap (indexed ≥ 3× faster, outputs identical).

use atomique::{
    compile, map_to_arrays_with, transpile_with, AtomiqueConfig, CompiledProgram, LineMove,
    OptLevel, TranspileIndex,
};
use raa_benchmarks::{scaling_pair, small_suite};
use raa_isa::codec;
use raa_par::WorkPool;
use raa_sabre::SabreConfig;

/// Bit-level line-move equality (unpark markers carry NaN coordinates,
/// so `==` on the floats would never match them).
fn moves_eq(a: &[LineMove], b: &[LineMove]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.aod == y.aod
                && x.axis_row == y.axis_row
                && x.line == y.line
                && x.from_track.to_bits() == y.from_track.to_bits()
                && x.to_track.to_bits() == y.to_track.to_bits()
        })
}

/// The names of the compile root's direct children — the stage-span set.
fn stage_span_names(out: &CompiledProgram) -> Vec<String> {
    out.report
        .root()
        .map(|root| root.children.iter().map(|s| s.name.clone()).collect())
        .unwrap_or_default()
}

/// Counters with the `transpile.*` family removed. The score cache's
/// own telemetry (`transpile.score_cache_hit` etc.) exists only on the
/// indexed path — it is the *only* counter family allowed to differ
/// across modes, and the whitelist is deliberately a prefix so any new
/// divergent counter outside it fails the differential loudly.
fn counters_sans_transpile(out: &CompiledProgram) -> Vec<(String, u64)> {
    out.report
        .counters()
        .iter()
        .filter(|(name, _)| !name.starts_with("transpile."))
        .cloned()
        .collect()
}

/// Everything observable must match; `check_all_counters` selects
/// whether the `transpile.*` family participates (true within one
/// index mode, false across modes).
fn assert_observably_identical(
    ctx: &str,
    seq: &CompiledProgram,
    par: &CompiledProgram,
    check_all_counters: bool,
) {
    assert_eq!(
        seq.stages.len(),
        par.stages.len(),
        "{ctx}: stage counts differ"
    );
    for (i, (s, p)) in seq.stages.iter().zip(par.stages.iter()).enumerate() {
        assert_eq!(s.kind, p.kind, "{ctx}: stage {i} kind");
        assert_eq!(s.gate_pairs, p.gate_pairs, "{ctx}: stage {i} gate pairs");
        assert_eq!(
            s.one_qubit_gates, p.one_qubit_gates,
            "{ctx}: stage {i} 1Q gates"
        );
        assert!(moves_eq(&s.moves, &p.moves), "{ctx}: stage {i} moves");
        assert!(
            moves_eq(&s.retract_moves, &p.retract_moves),
            "{ctx}: stage {i} retraction moves"
        );
    }
    assert_eq!(seq.mapping, par.mapping, "{ctx}: atom mappings differ");
    assert_eq!(
        seq.stats.two_qubit_gates, par.stats.two_qubit_gates,
        "{ctx}: gate counts differ"
    );
    assert_eq!(seq.stats.depth, par.stats.depth, "{ctx}: depths differ");
    let sb = codec::to_bytes(seq.isa.as_ref().expect("emit_isa set"));
    let pb = codec::to_bytes(par.isa.as_ref().expect("emit_isa set"));
    assert_eq!(sb, pb, "{ctx}: ISA streams differ");
    assert_eq!(
        stage_span_names(seq),
        stage_span_names(par),
        "{ctx}: stage-span sets differ"
    );
    if check_all_counters {
        assert_eq!(
            seq.report.counters(),
            par.report.counters(),
            "{ctx}: counters differ"
        );
    } else {
        assert_eq!(
            counters_sans_transpile(seq),
            counters_sans_transpile(par),
            "{ctx}: non-transpile counters differ across index modes"
        );
    }
}

fn traced(index: TranspileIndex, threads: usize) -> AtomiqueConfig {
    AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        opt_level: OptLevel::Aggressive,
        trace: true,
        threads,
        transpile_index: index,
        ..AtomiqueConfig::default()
    }
}

/// The core differential: Naive vs Indexed on every small-suite
/// benchmark, and the indexed path against itself at 4 threads with
/// *full* counter equality (the cache-hit pattern may not depend on
/// worker count).
#[test]
fn indexed_compiles_are_bit_identical_to_naive_on_the_small_suite() {
    let mut cache_activity = 0u64;
    for b in small_suite() {
        let naive = compile(&b.circuit, &traced(TranspileIndex::Naive, 1))
            .unwrap_or_else(|e| panic!("{}/naive: {e}", b.name));
        assert_eq!(
            naive.report.counter("transpile.score_recompute"),
            0,
            "{}: naive path ticked an indexed-only counter",
            b.name
        );
        let indexed = compile(&b.circuit, &traced(TranspileIndex::Indexed, 1))
            .unwrap_or_else(|e| panic!("{}/indexed: {e}", b.name));
        assert_observably_identical(
            &format!("{}/naive-vs-indexed", b.name),
            &naive,
            &indexed,
            false,
        );
        let indexed_par = compile(&b.circuit, &traced(TranspileIndex::Indexed, 4))
            .unwrap_or_else(|e| panic!("{}/indexed/threads=4: {e}", b.name));
        assert_observably_identical(
            &format!("{}/indexed-threads-1-vs-4", b.name),
            &indexed,
            &indexed_par,
            true,
        );
        cache_activity += indexed.report.counter("transpile.score_cache_hit")
            + indexed.report.counter("transpile.score_recompute");
    }
    // The differential is vacuous if the index never engaged: at least
    // part of the suite must route through the score cache.
    assert!(
        cache_activity > 0,
        "no small-suite benchmark exercised the score cache"
    );
}

/// Full-pipeline identity at 1024 atoms on both scaling families —
/// the indexed analytic graph constructor and score cache at the scale
/// where the naive path's all-pairs BFS starts to dominate. Release
/// builds only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug; CI runs it via cargo test --release"
)]
fn indexed_1024_atom_compiles_match_naive_byte_for_byte() {
    for b in scaling_pair("QSim-1024", "QAOA-regu3-1024", 1024) {
        let base = AtomiqueConfig {
            emit_isa: true,
            verify_isa: true,
            trace: true,
            threads: 1,
            ..AtomiqueConfig::scaled_to(1024)
        };
        let naive = compile(
            &b.circuit,
            &AtomiqueConfig {
                transpile_index: TranspileIndex::Naive,
                ..base.clone()
            },
        )
        .unwrap_or_else(|e| panic!("{}/naive: {e}", b.name));
        for threads in [1usize, 4] {
            let indexed = compile(
                &b.circuit,
                &AtomiqueConfig {
                    transpile_index: TranspileIndex::Indexed,
                    threads,
                    ..base.clone()
                },
            )
            .unwrap_or_else(|e| panic!("{}/indexed/threads={threads}: {e}", b.name));
            assert_observably_identical(
                &format!("{}/1024/threads={threads}", b.name),
                &naive,
                &indexed,
                false,
            );
        }
    }
}

/// The roadmap acceptance gate: QSim-4096's transpile stage (array
/// mapping + multipartite SWAP insertion, the naive path's dominant
/// cost at this scale) must run ≥ 3× faster indexed, with gate-level
/// identical output. The naive all-pairs BFS alone is ~45 s here, so
/// the wall-clock guard on the indexed leg is the real scalability
/// assertion. Release builds only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug; CI runs it via cargo test --release"
)]
fn qsim_4096_transpile_is_3x_faster_indexed_and_identical() {
    const INDEXED_GUARD_S: f64 = 60.0;
    let [qsim, _] = scaling_pair("QSim-4096", "QAOA-regu3-4096", 4096);
    let cfg = AtomiqueConfig::scaled_to(4096);
    let pool = WorkPool::sequential();
    let sabre = SabreConfig::default();

    let mut outputs = Vec::new();
    let mut times = Vec::new();
    for index in [TranspileIndex::Naive, TranspileIndex::Indexed] {
        let t0 = std::time::Instant::now();
        let mapping = map_to_arrays_with(
            &qsim.circuit,
            &cfg.hardware,
            cfg.array_mapper,
            cfg.gamma,
            index,
            &pool,
        )
        .unwrap_or_else(|e| panic!("QSim-4096/{index:?}: mapper: {e}"));
        let transpiled = transpile_with(&qsim.circuit, &mapping, &sabre, index, &pool)
            .unwrap_or_else(|e| panic!("QSim-4096/{index:?}: transpile: {e}"));
        times.push(t0.elapsed().as_secs_f64());
        outputs.push((mapping, transpiled));
    }

    let (naive_map, naive_t) = &outputs[0];
    let (idx_map, idx_t) = &outputs[1];
    assert_eq!(naive_map, idx_map, "QSim-4096: array mappings differ");
    assert_eq!(
        naive_t.circuit.gates(),
        idx_t.circuit.gates(),
        "QSim-4096: transpiled gate streams differ"
    );
    assert_eq!(
        naive_t.slot_of_qubit, idx_t.slot_of_qubit,
        "QSim-4096: slot assignments differ"
    );
    assert_eq!(
        naive_t.slot_array, idx_t.slot_array,
        "QSim-4096: slot arrays differ"
    );
    assert_eq!(
        naive_t.swaps_inserted, idx_t.swaps_inserted,
        "QSim-4096: swap counts differ"
    );

    let (naive_s, indexed_s) = (times[0], times[1]);
    assert!(
        indexed_s < INDEXED_GUARD_S,
        "QSim-4096: indexed transpile took {indexed_s:.1}s (guard {INDEXED_GUARD_S}s)"
    );
    assert!(
        indexed_s * 3.0 <= naive_s,
        "QSim-4096: indexed transpile {indexed_s:.1}s is not 3x faster than naive {naive_s:.1}s"
    );
}
