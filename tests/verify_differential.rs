//! Full-suite differential tests of the PR 4 verification fast paths:
//!
//! * the legality checker's `CheckMode::Grid` must return exactly the
//!   verdict of `CheckMode::Exhaustive` — on every raw and every
//!   optimized stream of both benchmark suites across all four
//!   backends;
//! * the optimizer's incremental re-verify harness must accept exactly
//!   the rewrites the full-oracle harness accepts — identical output
//!   streams (byte-for-byte through the codec) and identical
//!   acceptance/rejection counts, at `-O0` and `-O2`.
//!
//! Together with the randomized `crates/isa/tests/check_modes.rs` (which
//! also covers *illegal* streams) this is the evidence that the spatial
//! index and the incremental harness are pure accelerations: they can
//! change how fast a verdict is reached, never the verdict.

use atomique::{compile, emit_isa, AtomiqueConfig};
use raa_baselines::{
    compile_fixed, geyser_pulses, lower_fixed, lower_geyser, lower_tan, tan_iterp,
    FixedArchitecture,
};
use raa_benchmarks::{large_suite, small_suite, Benchmark};
use raa_circuit::NativeGateSet;
use raa_isa::{
    check_legality_mode, codec, optimize_with, CheckMode, IsaProgram, OptLevel, VerifyStrategy,
};
use raa_physics::HardwareParams;

fn full_suite() -> Vec<Benchmark> {
    let mut suite = large_suite();
    for b in small_suite() {
        if !suite.iter().any(|x| x.name == b.name) {
            suite.push(b);
        }
    }
    suite
}

/// All four backends' streams for one benchmark.
fn all_backends(b: &Benchmark) -> Vec<(&'static str, IsaProgram)> {
    let cfg = AtomiqueConfig::default();
    let params = HardwareParams::neutral_atom();

    let ours = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let atomique = emit_isa(&ours, &cfg.hardware, b.name);

    let tan = tan_iterp(&b.circuit, &params);
    let tan = lower_tan(&b.circuit, &tan, "tan-iterp", b.name).unwrap();

    let fixed = compile_fixed(&b.circuit, FixedArchitecture::FaaRectangular, 0).unwrap();
    let fixed = lower_fixed(&fixed, b.name).unwrap();

    let native = b.circuit.decompose_to(NativeGateSet::Cz);
    let geyser = geyser_pulses(&native);
    let geyser = lower_geyser(&native, &geyser, b.name).unwrap();

    vec![
        ("atomique", atomique),
        ("tan-iterp", tan),
        ("faa-rect", fixed),
        ("geyser", geyser),
    ]
}

fn assert_modes_agree(name: &str, backend: &str, what: &str, p: &IsaProgram) {
    let grid = check_legality_mode(p, CheckMode::Grid);
    let scan = check_legality_mode(p, CheckMode::Exhaustive);
    assert_eq!(grid, scan, "{name}/{backend}: modes disagree on {what}");
    grid.unwrap_or_else(|e| panic!("{name}/{backend}: {what} stream illegal: {e}"));
}

#[test]
fn check_modes_and_harness_strategies_agree_on_the_full_suite() {
    for b in full_suite() {
        for (backend, program) in all_backends(&b) {
            assert_modes_agree(b.name, backend, "raw", &program);

            for level in [OptLevel::None, OptLevel::Aggressive] {
                let (inc, inc_report) = optimize_with(&program, level, VerifyStrategy::Incremental);
                let (full, full_report) = optimize_with(&program, level, VerifyStrategy::Full);
                assert_eq!(
                    codec::to_bytes(&inc),
                    codec::to_bytes(&full),
                    "{}/{backend}@{level:?}: harness strategies produced different streams",
                    b.name
                );
                assert_eq!(
                    inc_report.rejected_rewrites, full_report.rejected_rewrites,
                    "{}/{backend}@{level:?}: rejection counts differ",
                    b.name
                );
                assert_eq!(
                    inc_report.instructions_after, full_report.instructions_after,
                    "{}/{backend}@{level:?}: instruction counts differ",
                    b.name
                );
                assert_eq!(
                    inc_report.iterations, full_report.iterations,
                    "{}/{backend}@{level:?}: fixpoint iteration counts differ",
                    b.name
                );
                assert_eq!(
                    full_report.incremental_reverifies, 0,
                    "{}/{backend}@{level:?}: full strategy used the incremental verifier",
                    b.name
                );
                assert_modes_agree(
                    b.name,
                    backend,
                    if level == OptLevel::None {
                        "-O0"
                    } else {
                        "-O2"
                    },
                    &inc,
                );
            }
        }
    }
}
