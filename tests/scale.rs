//! Large-array scale smoke tests (ROADMAP "Router performance", paper
//! Fig. 20's 1000+-qubit extrapolations): generated 512- and 1024-atom
//! workloads must compile through the full pipeline, pass the
//! independent stage validator and the ISA legality + replay oracle, and
//! stay within generous *stage-count* bounds — deliberately wall-clock
//! free, so the tests guard scalability without becoming timing-flaky.
//!
//! The 1024-atom test is ignored in debug builds (the tier-1 `cargo
//! test -q` run) and exercised by CI's `cargo test -q --release --test
//! scale` step.

use atomique::{compile, validate_program, AtomiqueConfig, RouterStrategy};
use raa_benchmarks::{scaling_pair, Benchmark};

fn compile_and_verify_with(
    b: &Benchmark,
    qubits: usize,
    strategy: RouterStrategy,
) -> atomique::CompiledProgram {
    let cfg = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        router_strategy: strategy,
        ..AtomiqueConfig::scaled_to(qubits)
    };
    let out =
        compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{} ({strategy:?}): {e}", b.name));
    validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot)
        .unwrap_or_else(|e| panic!("{} ({strategy:?}): validator: {e}", b.name));
    assert!(out.isa.is_some(), "{}: stream not attached", b.name);
    assert_disabled_tracing_is_coarse(b, &out);
    out
}

/// Disabled-mode overhead guard: `trace` is off here, so even a
/// 1024-atom compile must attach zero counters and a fixed coarse
/// handful of stage spans — the per-event fast path (one thread-local
/// level load) never materializes per-gate telemetry. A failure means
/// detail instrumentation started running unconditionally, i.e. the
/// "near-free when disabled" contract broke at exactly the scale where
/// it costs the most.
fn assert_disabled_tracing_is_coarse(b: &Benchmark, out: &atomique::CompiledProgram) {
    fn count_spans(spans: &[atomique::trace::SpanNode]) -> usize {
        spans.iter().map(|s| 1 + count_spans(&s.children)).sum()
    }
    assert!(
        out.report.trace.counters.is_empty(),
        "{}: counters recorded with tracing disabled: {:?}",
        b.name,
        out.report.trace.counters
    );
    let n = count_spans(&out.report.trace.spans);
    assert!(
        n <= 16,
        "{}: {n} spans recorded at stage level for a {}-qubit workload",
        b.name,
        out.stats.num_qubits
    );
}

fn compile_and_verify(b: &Benchmark, qubits: usize) -> atomique::CompiledProgram {
    compile_and_verify_with(b, qubits, RouterStrategy::Sequential)
}

/// Stage-count sanity: every two-qubit stage executes at least one gate,
/// and fallbacks (resets, transfers) stay a bounded multiple of the
/// useful work. The factor is generous — the point is catching
/// super-linear blowups (a stage-per-gate router that stops finding
/// parallelism, or a reset storm), not pinning exact schedules.
fn assert_stage_bounds(b: &Benchmark, out: &atomique::CompiledProgram) {
    let gates = out.stats.two_qubit_gates;
    assert!(gates > 0, "{}: no two-qubit gates routed", b.name);
    assert!(
        out.stats.depth <= gates,
        "{}: {} stages for {} gates",
        b.name,
        out.stats.depth,
        gates
    );
    assert!(
        out.stages.len() <= 4 * gates + out.stats.one_qubit_gates + 16,
        "{}: {} total stages for {} 2Q / {} 1Q gates",
        b.name,
        out.stages.len(),
        gates,
        out.stats.one_qubit_gates
    );
    assert!(
        out.stats.transfers <= gates,
        "{}: {} transfers for {} gates",
        b.name,
        out.stats.transfers,
        gates
    );
}

/// 512 atoms route, validate and verify in every build profile.
#[test]
fn routes_512_atom_workloads() {
    for b in scaling_pair("QSim-512", "QAOA-regu3-512", 512) {
        let out = compile_and_verify(&b, 512);
        assert_eq!(out.stats.num_qubits, 512, "{}", b.name);
        assert_stage_bounds(&b, &out);
    }
}

/// The full 1024-atom scaling workloads compile through
/// `atomique::compile` with ISA legality + replay passing — the
/// acceptance bar for Fig. 20-scale machines. Release builds only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug; CI runs it via cargo test --release"
)]
fn compiles_1024_atom_workloads_through_the_isa_oracle() {
    for b in scaling_pair("QSim-1024", "QAOA-regu3-1024", 1024) {
        let out = compile_and_verify(&b, 1024);
        assert_eq!(out.stats.num_qubits, 1024, "{}", b.name);
        assert_stage_bounds(&b, &out);
    }
}

/// Nested-pool stress: the 1024-atom QAOA workload compiled 8× at once
/// from 8 plain OS threads, each compile running its own 2-worker
/// `raa-par` pool (so pool waves nest inside foreign threads the pool
/// never spawned). Must not deadlock — pools are capacity descriptors
/// whose workers are scoped per wave, so concurrent compiles never
/// contend on shared pool state — and every compile must produce
/// byte-identical ISA to a single-threaded reference with exactly the
/// reference's counter table: trace sessions are per-thread, so eight
/// concurrent detail-traced compiles may not bleed a single increment
/// into each other. Release builds only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug; CI runs it via cargo test --release"
)]
fn concurrent_1024_atom_compiles_are_isolated_and_identical() {
    use raa_isa::codec;

    let [_, b] = scaling_pair("QSim-1024", "QAOA-regu3-1024", 1024);
    let cfg = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        trace: true,
        threads: 1,
        ..AtomiqueConfig::scaled_to(1024)
    };
    let reference = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let ref_bytes = codec::to_bytes(reference.isa.as_ref().expect("stream attached"));
    let ref_counters = reference.report.counters().to_vec();
    assert!(
        ref_counters.iter().any(|(_, v)| *v > 0),
        "{}: reference compile recorded no counters",
        b.name
    );

    let nested_cfg = AtomiqueConfig {
        threads: 2,
        ..cfg.clone()
    };
    let outputs: Vec<atomique::CompiledProgram> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let circuit = &b.circuit;
                let nested_cfg = &nested_cfg;
                scope.spawn(move || compile(circuit, nested_cfg).expect("concurrent compile"))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no panic"))
            .collect()
    });
    for (i, out) in outputs.iter().enumerate() {
        assert_eq!(
            codec::to_bytes(out.isa.as_ref().expect("stream attached")),
            ref_bytes,
            "{}: concurrent compile {i} ISA differs",
            b.name
        );
        assert_eq!(
            out.report.counters(),
            &ref_counters[..],
            "{}: concurrent compile {i} counter cross-talk",
            b.name
        );
    }
}

/// The 1024-atom workloads under *both* router strategies, with a
/// wall-clock guard: layered batching replans the whole schedule
/// (compatibility scan + merged-pulse geometry per candidate) and an
/// accidental O(stages × atoms²) regression there — or in the
/// sequential planner it wraps — would show up as a multi-minute
/// compile long before any stage-count bound trips. The guard is
/// generous (CI machines are slow), but a quadratic blowup at 1024
/// atoms overshoots it by an order of magnitude. Layered must also
/// never schedule worse than sequential. Release builds only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug; CI runs it via cargo test --release"
)]
fn routes_1024_atom_workloads_under_both_strategies_within_wall_clock() {
    const GUARD_S: f64 = 90.0;
    for b in scaling_pair("QSim-1024", "QAOA-regu3-1024", 1024) {
        let mut depths = Vec::new();
        for strategy in [RouterStrategy::Sequential, RouterStrategy::Layered] {
            let t0 = std::time::Instant::now();
            let out = compile_and_verify_with(&b, 1024, strategy);
            let elapsed = t0.elapsed().as_secs_f64();
            assert!(
                elapsed < GUARD_S,
                "{} ({strategy:?}): compile + verify took {elapsed:.1}s (guard {GUARD_S}s)",
                b.name
            );
            assert_stage_bounds(&b, &out);
            depths.push(out.stats.depth);
        }
        assert!(
            depths[1] <= depths[0],
            "{}: layered depth {} exceeds sequential {}",
            b.name,
            depths[1],
            depths[0]
        );
    }
}
