//! Large-array scale smoke tests (ROADMAP "Router performance", paper
//! Fig. 20's 1000+-qubit extrapolations): generated 512- and 1024-atom
//! workloads must compile through the full pipeline, pass the
//! independent stage validator and the ISA legality + replay oracle, and
//! stay within generous *stage-count* bounds — deliberately wall-clock
//! free, so the tests guard scalability without becoming timing-flaky.
//!
//! The 1024-atom test is ignored in debug builds (the tier-1 `cargo
//! test -q` run) and exercised by CI's `cargo test -q --release --test
//! scale` step.

use atomique::{compile, validate_program, AtomiqueConfig};
use raa_benchmarks::{scaling_pair, Benchmark};

fn compile_and_verify(b: &Benchmark, qubits: usize) -> atomique::CompiledProgram {
    let cfg = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        ..AtomiqueConfig::scaled_to(qubits)
    };
    let out = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot)
        .unwrap_or_else(|e| panic!("{}: validator: {e}", b.name));
    assert!(out.isa.is_some(), "{}: stream not attached", b.name);
    out
}

/// Stage-count sanity: every two-qubit stage executes at least one gate,
/// and fallbacks (resets, transfers) stay a bounded multiple of the
/// useful work. The factor is generous — the point is catching
/// super-linear blowups (a stage-per-gate router that stops finding
/// parallelism, or a reset storm), not pinning exact schedules.
fn assert_stage_bounds(b: &Benchmark, out: &atomique::CompiledProgram) {
    let gates = out.stats.two_qubit_gates;
    assert!(gates > 0, "{}: no two-qubit gates routed", b.name);
    assert!(
        out.stats.depth <= gates,
        "{}: {} stages for {} gates",
        b.name,
        out.stats.depth,
        gates
    );
    assert!(
        out.stages.len() <= 4 * gates + out.stats.one_qubit_gates + 16,
        "{}: {} total stages for {} 2Q / {} 1Q gates",
        b.name,
        out.stages.len(),
        gates,
        out.stats.one_qubit_gates
    );
    assert!(
        out.stats.transfers <= gates,
        "{}: {} transfers for {} gates",
        b.name,
        out.stats.transfers,
        gates
    );
}

/// 512 atoms route, validate and verify in every build profile.
#[test]
fn routes_512_atom_workloads() {
    for b in scaling_pair("QSim-512", "QAOA-regu3-512", 512) {
        let out = compile_and_verify(&b, 512);
        assert_eq!(out.stats.num_qubits, 512, "{}", b.name);
        assert_stage_bounds(&b, &out);
    }
}

/// The full 1024-atom scaling workloads compile through
/// `atomique::compile` with ISA legality + replay passing — the
/// acceptance bar for Fig. 20-scale machines. Release builds only.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug; CI runs it via cargo test --release"
)]
fn compiles_1024_atom_workloads_through_the_isa_oracle() {
    for b in scaling_pair("QSim-1024", "QAOA-regu3-1024", 1024) {
        let out = compile_and_verify(&b, 1024);
        assert_eq!(out.stats.num_qubits, 1024, "{}", b.name);
        assert_stage_bounds(&b, &out);
    }
}
