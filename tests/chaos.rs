//! Chaos gate: the serve/compile stack under deterministic fault
//! injection (`raa-fault`).
//!
//! Three properties turn "the service survived chaos" into a
//! regression test:
//!
//! 1. **Termination** — under every pinned fault schedule, every
//!    request gets a terminal response (a payload or a typed error) —
//!    no follower deadlocks, no wedged flights, no hung connections.
//! 2. **Bit-identity when healthy** — with faults disabled the served
//!    ISA bytes are identical to a direct in-process
//!    `atomique::compile`, and a fault-injected *degraded* result is
//!    still a verified, legality-checked stream.
//! 3. **Determinism** — the same `RAA_FAULT_SPEC` (same seed)
//!    reproduces the identical fault sequence, identical per-point
//!    counter totals, and identical request outcomes across runs.
//!
//! The fault schedule is process-global, so every test here serializes
//! on one mutex and disarms on exit; this suite is the *only* test
//! binary that ever arms a schedule.

use std::sync::{Mutex, MutexGuard, Once};

use atomique::{AtomiqueConfig, OptLevel, RouterStrategy};
use raa_circuit::{qasm, Circuit, Gate, Qubit};
use raa_isa::{check_legality, codec, json, replay_verify};
use raa_serve::engine::{BreakerState, CacheStatus, Engine, Job, ServeConfig};
use raa_serve::{b64, http, request, ServeError};

static FAULTS: Mutex<()> = Mutex::new(());

/// Serializes fault-arming tests and guarantees a disarm on exit (even
/// when an assertion fails, via `Drop`). A poisoned mutex only means a
/// previous test failed — the schedule is reconfigured from scratch
/// here, so recovering the lock is safe.
struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Armed {
    fn new(spec: &str) -> Armed {
        quiet_injected_panics();
        let guard = FAULTS.lock().unwrap_or_else(|p| p.into_inner());
        raa_fault::configure(spec).expect("valid fault spec");
        Armed(guard)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        raa_fault::disarm();
    }
}

/// Injected panics are *expected* here; keep them out of the test
/// output so a real failure stays visible. Anything else still goes to
/// the default hook.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
                .unwrap_or("");
            if message.contains("injected fault") {
                return;
            }
            previous(info);
        }));
    });
}

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(Qubit(0)));
    for i in 0..n - 1 {
        c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
    }
    c
}

fn job(name: &str, circuit: Circuit) -> Job {
    Job {
        name: name.into(),
        circuit,
    }
}

/// The engine configuration chaos runs under: single worker (fully
/// deterministic hit ordering), instant retries, breaker off unless a
/// test turns it on.
fn chaos_config() -> ServeConfig {
    ServeConfig {
        workers: 1,
        max_retries: 2,
        retry_backoff_ms: 0,
        breaker_threshold: 0,
        ..ServeConfig::default()
    }
}

/// Direct in-process reference compile under the serving flags.
fn direct_bytes(circuit: &Circuit, cfg: &AtomiqueConfig) -> Vec<u8> {
    let cfg = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        trace: true,
        ..cfg.clone()
    };
    let out = atomique::compile(circuit, &cfg).expect("direct compile");
    codec::to_bytes(out.isa.as_ref().expect("isa attached"))
}

// ---------------------------------------------------------------------
// Determinism: same spec, same seed → same everything
// ---------------------------------------------------------------------

/// One run's complete observable signature: per-job outcomes (cache
/// status, degraded label or error kind), the fault registry's
/// per-point hit/fired totals, and the engine's resilience counters.
#[derive(Debug, PartialEq)]
struct RunSignature {
    outcomes: Vec<String>,
    fault_stats: Vec<(String, raa_fault::PointStats)>,
    engine: (u64, u64, u64, u64),
}

/// Runs a fixed mixed workload on a fresh engine under `spec`
/// (re-arming resets the fault counters to zero).
fn chaos_workload(spec: &str) -> RunSignature {
    raa_fault::configure(spec).expect("valid fault spec");
    let engine = Engine::new(chaos_config());
    // Layered + -O2 gives the degradation ladder real rungs to fall
    // down; threads stays 1 so the whole run is one thread end to end.
    let cfg = AtomiqueConfig {
        router_strategy: RouterStrategy::Layered,
        opt_level: OptLevel::Aggressive,
        ..AtomiqueConfig::default()
    };
    let jobs: Vec<Job> = (3..9).map(|n| job(&format!("ghz{n}"), ghz(n))).collect();
    let mut outcomes = Vec::new();
    for round in 0..2 {
        let out = engine.submit(&cfg, &jobs).expect("batch admitted");
        for o in out {
            outcomes.push(match &o.result {
                Ok(r) => format!(
                    "{round}/{}:{}:{}",
                    o.name,
                    r.status.as_str(),
                    r.entry.degraded.clone().unwrap_or_default()
                ),
                Err(e) => format!("{round}/{}:err:{}", o.name, e.kind()),
            });
        }
    }
    let s = engine.stats();
    RunSignature {
        outcomes,
        fault_stats: raa_fault::stats(),
        engine: (s.compiles, s.retries, s.degraded, s.deadline_exceeded),
    }
}

/// Acceptance gate: the same `RAA_FAULT_SPEC` seed reproduces the
/// identical fault sequence and identical counter totals across two
/// runs — probability triggers included, because they are pure
/// functions of `(seed, point, hit index)`.
#[test]
fn same_spec_and_seed_reproduce_identical_fault_sequences() {
    let spec = "serve.compile:error@0.35;compile.route:error@0.3;seed=20240808";
    let _armed = Armed::new(spec);
    let first = chaos_workload(spec);
    let second = chaos_workload(spec);
    assert_eq!(first, second, "fault injection is not deterministic");
    // The schedule actually did something: this spec fires on this
    // workload (a fixed fact of the seed, pinned here so the gate
    // cannot silently degenerate into comparing two healthy runs).
    assert!(
        first.fault_stats.iter().any(|(_, s)| s.fired > 0),
        "spec never fired: {:?}",
        first.fault_stats
    );
    // A different seed produces a different firing pattern.
    let reseeded = chaos_workload("serve.compile:error@0.35;compile.route:error@0.3;seed=7");
    assert_ne!(
        first.fault_stats, reseeded.fault_stats,
        "reseeding changed nothing — probability triggers are not seeded"
    );
}

// ---------------------------------------------------------------------
// Single-flight under leader panic (the bugfix-sweep satellite)
// ---------------------------------------------------------------------

/// A leader panic is caught, retried on the same config, and the retry
/// compiles fresh — bit-identical to a direct compile, nothing poisoned.
#[test]
fn leader_panic_is_retried_and_recompiles_fresh() {
    let _armed = Armed::new("serve.compile:panic@1;seed=1");
    let engine = Engine::new(chaos_config());
    let cfg = engine.base().clone();
    let out = engine.submit(&cfg, &[job("ghz", ghz(4))]).unwrap();
    let r = out[0].result.as_ref().expect("retry succeeded");
    assert_eq!(r.status, CacheStatus::Miss);
    assert_eq!(r.entry.degraded, None);
    assert_eq!(r.entry.isa_bytes, direct_bytes(&ghz(4), &cfg));
    let stats = engine.stats();
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.compiles, 2);
    assert_eq!(raa_fault::fired_at("serve.compile"), 1);
}

/// With retries disabled the panic surfaces as a per-job error — and
/// the *next* identical request must not see a poisoned `CacheEntry`
/// or a wedged flight: it recompiles fresh and succeeds.
#[test]
fn failed_leader_leaves_nothing_poisoned_for_the_next_request() {
    let _armed = Armed::new("serve.compile:panic@1;seed=1");
    let engine = Engine::new(ServeConfig {
        max_retries: 0,
        degrade: false,
        ..chaos_config()
    });
    let cfg = engine.base().clone();
    let out = engine.submit(&cfg, &[job("ghz", ghz(4))]).unwrap();
    match out[0].result.as_ref() {
        Err(ServeError::Compile { message }) => {
            assert!(message.contains("panicked"), "{message}")
        }
        other => panic!("expected caught panic, got {other:?}"),
    }
    assert_eq!(engine.stats().cache_entries, 0, "failure must not cache");
    // Hit 2 is clean: the identical request compiles fresh.
    let out = engine.submit(&cfg, &[job("ghz", ghz(4))]).unwrap();
    let r = out[0].result.as_ref().expect("recompiled fresh");
    assert_eq!(r.status, CacheStatus::Miss);
    assert_eq!(r.entry.isa_bytes, direct_bytes(&ghz(4), &cfg));
}

// ---------------------------------------------------------------------
// Degradation ladder (acceptance gate)
// ---------------------------------------------------------------------

/// A request whose primary config is fault-injected to fail returns a
/// *verified, legality-checked* result from a ladder rung, labeled
/// `degraded` with the fallback config named — and is never cached, so
/// the next identical request retries the primary config.
#[test]
fn fault_injected_primary_degrades_to_a_verified_fallback() {
    // Hits 1–3 fail: the primary (layered, -O2) and the first two
    // rungs. Hit 4 — the `strategy=sequential,opt=0` rung — succeeds.
    let _armed = Armed::new("serve.compile:error@1-3;seed=1");
    let engine = Engine::new(ServeConfig {
        max_retries: 0,
        ..chaos_config()
    });
    let cfg = AtomiqueConfig {
        router_strategy: RouterStrategy::Layered,
        opt_level: OptLevel::Aggressive,
        ..AtomiqueConfig::default()
    };
    let out = engine.submit(&cfg, &[job("ghz", ghz(5))]).unwrap();
    let r = out[0].result.as_ref().expect("ladder served the job");
    assert_eq!(
        r.entry.degraded.as_deref(),
        Some("strategy=sequential,opt=0")
    );

    // The degraded stream is a real, independently verified program.
    let program = codec::from_bytes(&r.entry.isa_bytes).expect("decodable ISA");
    check_legality(&program).expect("degraded stream is legal");
    replay_verify(&program).expect("degraded stream replays");
    // And it is exactly what the named fallback config produces.
    let fallback = AtomiqueConfig {
        router_strategy: RouterStrategy::Sequential,
        opt_level: OptLevel::None,
        ..cfg.clone()
    };
    assert_eq!(r.entry.isa_bytes, direct_bytes(&ghz(5), &fallback));

    let stats = engine.stats();
    assert_eq!((stats.degraded, stats.compiles), (1, 4));
    assert_eq!(stats.cache_entries, 0, "degraded results are never cached");

    // Hits 5+ are clean: the retry compiles the primary config and
    // caches it.
    let out = engine.submit(&cfg, &[job("ghz", ghz(5))]).unwrap();
    let r = out[0].result.as_ref().unwrap();
    assert_eq!(r.status, CacheStatus::Miss);
    assert_eq!(r.entry.degraded, None);
    assert_eq!(r.entry.isa_bytes, direct_bytes(&ghz(5), &cfg));
    assert_eq!(engine.stats().cache_entries, 1);
}

// ---------------------------------------------------------------------
// Counter reconciliation
// ---------------------------------------------------------------------

/// The engine's resilience counters reconcile exactly with the fault
/// registry: every injected transient failure is one retry, every
/// attempt is one compile.
#[test]
fn engine_stats_reconcile_with_injected_fault_counts() {
    let _armed = Armed::new("serve.compile:error@1-2;seed=1");
    let engine = Engine::new(ServeConfig {
        max_retries: 3,
        ..chaos_config()
    });
    let cfg = engine.base().clone();
    let out = engine.submit(&cfg, &[job("ghz", ghz(4))]).unwrap();
    assert!(out[0].result.is_ok());
    let stats = engine.stats();
    assert_eq!(stats.retries, raa_fault::fired_at("serve.compile"));
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.compiles, 3);
    assert_eq!(raa_fault::fired_total(), 2);
}

/// The circuit breaker opens on injected consecutive failures, sheds
/// with a retry hint, and closes again through a clean probe.
#[test]
fn breaker_opens_and_recovers_under_injected_faults() {
    let _armed = Armed::new("serve.compile:error@1-2;seed=3");
    let engine = Engine::new(ServeConfig {
        max_retries: 0,
        degrade: false,
        breaker_threshold: 2,
        breaker_cooldown_ms: 50,
        ..chaos_config()
    });
    let cfg = engine.base().clone();
    for round in 0..2 {
        let out = engine
            .submit(&cfg, &[job(&format!("g{round}"), ghz(3 + round))])
            .unwrap();
        assert!(out[0].result.is_err(), "round {round} should be injected");
    }
    let stats = engine.stats();
    assert_eq!(stats.breaker_opens, 1);
    assert_eq!(stats.breaker_state, BreakerState::Open);
    match engine.submit(&cfg, &[job("shed", ghz(6))]) {
        Err(ServeError::BreakerOpen { retry_after_ms }) => assert!(retry_after_ms >= 1),
        other => panic!("expected BreakerOpen, got {other:?}"),
    }
    assert_eq!(engine.stats().shed, 1);
    // Cooldown elapses; hit 3 is clean, so the probe closes the breaker.
    std::thread::sleep(std::time::Duration::from_millis(60));
    let out = engine.submit(&cfg, &[job("probe", ghz(6))]).unwrap();
    assert!(out[0].result.is_ok());
    assert_eq!(engine.stats().breaker_state, BreakerState::Closed);
    assert_eq!(raa_fault::fired_at("serve.compile"), 2);
}

// ---------------------------------------------------------------------
// Termination over HTTP under a pinned fault matrix
// ---------------------------------------------------------------------

fn compile_body(names_sizes: &[(&str, usize)]) -> String {
    format!(
        "{{\"jobs\":[{}]}}",
        names_sizes
            .iter()
            .map(|(name, n)| {
                let text = qasm::to_qasm(&ghz(*n));
                format!("{{\"name\":{name:?},\"qasm\":{text:?}}}")
            })
            .collect::<Vec<_>>()
            .join(",")
    )
}

/// The pinned fault matrix (mirrored by the CI chaos leg): each spec
/// kills a different seam. Every request must terminate with a
/// documented status — the panics land in catch_unwind barriers, the
/// wedge-prone publish window is covered by `LeadGuard`, and worker
/// deaths resume on the submitter.
#[test]
fn every_request_terminates_under_the_pinned_fault_matrix() {
    quiet_injected_panics();
    let _serial = FAULTS.lock().unwrap_or_else(|p| p.into_inner());
    struct Case {
        spec: &'static str,
        workers: usize,
        /// Responses that must appear at least once across the case's
        /// requests (beyond plain termination).
        must_see: &'static [u16],
    }
    let matrix = [
        Case {
            // Leader panics, randomly: caught, retried, sometimes
            // falling through to a per-job error — always a response.
            spec: "serve.compile:panic@0.5;seed=7",
            workers: 1,
            must_see: &[200],
        },
        Case {
            // The publish window dies once: LeadGuard must fail the
            // flights fast (500), and the next request recompiles.
            spec: "serve.publish:panic@1;seed=7",
            workers: 1,
            must_see: &[500, 200],
        },
        Case {
            // A whole worker chunk dies mid-wave: the panic resumes on
            // the submitting thread and the handler barrier answers.
            spec: "par.worker:panic@1;seed=7",
            workers: 2,
            must_see: &[500, 200],
        },
        Case {
            // Every attempt overruns its (virtual) deadline at the
            // route stage: per-job `deadline` errors, still HTTP 200.
            spec: "compile.route:deadline;seed=7",
            workers: 1,
            must_see: &[200],
        },
        Case {
            // Slow but healthy.
            spec: "serve.compile:delay=2ms@0.5;seed=7",
            workers: 1,
            must_see: &[200],
        },
    ];

    for case in &matrix {
        raa_fault::configure(case.spec).expect("valid fault spec");
        let engine = std::sync::Arc::new(Engine::new(ServeConfig {
            workers: case.workers,
            max_retries: 1,
            retry_backoff_ms: 0,
            breaker_threshold: 0,
            ..ServeConfig::default()
        }));
        let server = http::serve(engine, "127.0.0.1:0").expect("bind");
        let mut seen = Vec::new();
        for i in 0..4 {
            let body = compile_body(&[("a", 3 + i), ("b", 4 + i)]);
            let (status, text) =
                request(server.addr(), "POST", "/v1/compile", Some(&body)).expect("response");
            assert!(
                [200, 500, 503].contains(&status),
                "{}: unexpected status {status}: {text}",
                case.spec
            );
            json::parse(&text).unwrap_or_else(|e| panic!("{}: bad body: {e}", case.spec));
            seen.push(status);
        }
        for want in case.must_see {
            assert!(
                seen.contains(want),
                "{}: expected a {want} among {seen:?}",
                case.spec
            );
        }
        // The engine is still coherent: stats answer and no jobs are
        // stuck admitted.
        let (status, text) = request(server.addr(), "GET", "/v1/stats", None).expect("stats");
        assert_eq!(status, 200, "{}", case.spec);
        let stats = json::parse(&text).unwrap();
        assert_eq!(
            stats.field("queue_depth").unwrap().uint(u64::MAX).unwrap(),
            0,
            "{}: jobs stuck in the queue",
            case.spec
        );
        server.stop();
    }
    raa_fault::disarm();

    // Fault-free rerun: the service is bit-identical to direct
    // compiles again (nothing latched, nothing cached wrong).
    assert!(!raa_fault::active());
    let engine = std::sync::Arc::new(Engine::new(ServeConfig::default()));
    let server = http::serve(engine, "127.0.0.1:0").expect("bind");
    let (status, text) = request(
        server.addr(),
        "POST",
        "/v1/compile",
        Some(&compile_body(&[("g", 5)])),
    )
    .expect("response");
    assert_eq!(status, 200);
    let response = json::parse(&text).unwrap();
    let result = &response.field("results").unwrap().arr().unwrap()[0];
    assert_eq!(result.field("ok").unwrap(), &json::Value::Bool(true));
    assert_eq!(result.field("degraded").unwrap(), &json::Value::Bool(false));
    let bytes = b64::decode(result.field("isa_b64").unwrap().str().unwrap()).unwrap();
    let reference = qasm::from_qasm(&qasm::to_qasm(&ghz(5))).unwrap();
    assert_eq!(bytes, direct_bytes(&reference, &AtomiqueConfig::default()));
    server.stop();
}

/// The HTTP front's own seam: a handler panic becomes a clean 500 on
/// that connection only; the listener and the next request are fine.
#[test]
fn http_handler_fault_is_one_500_not_an_outage() {
    let _armed = Armed::new("serve.http:panic@1;seed=1");
    let engine = std::sync::Arc::new(Engine::new(ServeConfig::default()));
    let server = http::serve(engine, "127.0.0.1:0").expect("bind");
    let (status, text) = request(server.addr(), "GET", "/v1/health", None).expect("response");
    assert_eq!(status, 500, "{text}");
    assert!(text.contains("\"kind\":\"internal\""), "{text}");
    let (status, text) = request(server.addr(), "GET", "/v1/health", None).expect("response");
    assert_eq!(status, 200, "{text}");
    server.stop();
}
