//! End-to-end differential gate for the batch-compilation service:
//! ISA bytes served over HTTP must be bit-identical to a direct
//! in-process `atomique::compile` — cold (cache miss) *and* warm
//! (cache hit) — for every small-suite benchmark under
//! {sequential, layered} × threads {1, 4}. Also pins the service's
//! edges: queue-full rejection (429), per-job QASM failures, body
//! caps and the stats endpoint.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

use atomique::{AtomiqueConfig, RouterStrategy};
use raa_benchmarks::small_suite;
use raa_circuit::{qasm, Circuit};
use raa_isa::codec;
use raa_isa::json::{self, Value};
use raa_serve::engine::{Engine, ServeConfig};
use raa_serve::{b64, http, request};

/// The served config axes: (label, strategy word, threads).
const AXES: [(&str, &str, usize); 4] = [
    ("seq-t1", "sequential", 1),
    ("seq-t4", "sequential", 4),
    ("lay-t1", "layered", 1),
    ("lay-t4", "layered", 4),
];

fn start_server(config: ServeConfig) -> (Arc<Engine>, http::ServerHandle) {
    let engine = Arc::new(Engine::new(config));
    let server = http::serve(engine.clone(), "127.0.0.1:0").expect("bind");
    (engine, server)
}

fn post_compile(addr: SocketAddr, body: &str) -> (u16, Value) {
    let (status, text) = request(addr, "POST", "/v1/compile", Some(body)).expect("http");
    let value = json::parse(&text).expect("response is valid JSON");
    (status, value)
}

/// Direct in-process compile under the exact flags the engine forces,
/// returning the verified binary-codec bytes.
fn direct_bytes(circuit: &Circuit, strategy: RouterStrategy, threads: usize) -> Vec<u8> {
    let cfg = AtomiqueConfig {
        router_strategy: strategy,
        threads,
        emit_isa: true,
        verify_isa: true,
        trace: true,
        ..AtomiqueConfig::default()
    };
    let out = atomique::compile(circuit, &cfg).expect("direct compile");
    codec::to_bytes(out.isa.as_ref().expect("isa attached"))
}

/// One result object from a response, by job name.
fn results_by_name(response: &Value) -> HashMap<String, &Value> {
    response
        .field("results")
        .unwrap()
        .arr()
        .unwrap()
        .iter()
        .map(|r| (r.field("name").unwrap().str().unwrap().to_string(), r))
        .collect()
}

fn isa_bytes_of(result: &Value) -> Vec<u8> {
    assert_eq!(result.field("ok").unwrap(), &Value::Bool(true));
    b64::decode(result.field("isa_b64").unwrap().str().unwrap()).expect("valid base64")
}

/// The headline gate. QASM goes over the wire, so the reference for
/// each benchmark is its QASM round trip — the same circuit the
/// server parses.
#[test]
fn served_isa_is_bit_identical_to_direct_compile_cold_and_warm() {
    let (_engine, server) = start_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let suite: Vec<(String, Circuit, String)> = small_suite()
        .into_iter()
        .map(|b| {
            let text = qasm::to_qasm(&b.circuit);
            let roundtripped = qasm::from_qasm(&text).expect("suite QASM round trip");
            (b.name.to_string(), roundtripped, text)
        })
        .collect();

    // threads ∈ {1, 4} is fingerprint-distinct but byte-identical
    // (the parallel-determinism guarantee), so one direct reference
    // per (benchmark, strategy) at threads=1 covers both columns.
    let mut reference: HashMap<(String, &str), Vec<u8>> = HashMap::new();
    for (name, circuit, _) in &suite {
        for (word, strategy) in [
            ("sequential", RouterStrategy::Sequential),
            ("layered", RouterStrategy::Layered),
        ] {
            reference.insert((name.clone(), word), direct_bytes(circuit, strategy, 1));
        }
    }

    for (label, strategy, threads) in AXES {
        // `{:?}` on a String produces a JSON-compatible escaped
        // literal for the QASM text (quotes and newlines escaped).
        let body = format!(
            "{{\"config\":{{\"strategy\":\"{strategy}\",\"threads\":{threads}}},\"jobs\":[{}]}}",
            suite
                .iter()
                .map(|(name, _, text)| format!("{{\"name\":{name:?},\"qasm\":{text:?}}}"))
                .collect::<Vec<_>>()
                .join(",")
        );

        // Cold pass: every job misses and matches the direct bytes.
        let (status, response) = post_compile(addr, &body);
        assert_eq!(status, 200, "{label}");
        let results = results_by_name(&response);
        assert_eq!(results.len(), suite.len(), "{label}");
        for (name, _, _) in &suite {
            let r = results[name.as_str()];
            assert_eq!(
                r.field("cache").unwrap().str().unwrap(),
                "miss",
                "{label} {name}"
            );
            assert_eq!(
                isa_bytes_of(r),
                reference[&(name.clone(), strategy)],
                "{label} {name}: served bytes diverge from direct compile"
            );
            // Per-request telemetry is present and non-trivial.
            let sum = r
                .field("timings")
                .unwrap()
                .field("sum_s")
                .unwrap()
                .num()
                .unwrap();
            assert!(sum > 0.0, "{label} {name}: empty stage timings");
            assert!(
                matches!(r.field("counters").unwrap(), Value::Obj(items) if !items.is_empty()),
                "{label} {name}: per-request counters missing"
            );
        }

        // Warm pass: same body, 100% hits, identical bytes.
        let (status, response) = post_compile(addr, &body);
        assert_eq!(status, 200, "{label} warm");
        let results = results_by_name(&response);
        for (name, _, _) in &suite {
            let r = results[name.as_str()];
            assert_eq!(
                r.field("cache").unwrap().str().unwrap(),
                "hit",
                "{label} {name} warm"
            );
            assert_eq!(
                isa_bytes_of(r),
                reference[&(name.clone(), strategy)],
                "{label} {name}: warm bytes diverge"
            );
        }
    }

    // The stats endpoint agrees with what just happened: 4 axes ×
    // suite misses, the same again in hits, zero rejections.
    let (status, text) = request(addr, "GET", "/v1/stats", None).expect("stats");
    assert_eq!(status, 200);
    let stats = json::parse(&text).unwrap();
    let n = (AXES.len() * suite.len()) as u64;
    assert_eq!(stats.field("misses").unwrap().uint(u64::MAX).unwrap(), n);
    assert_eq!(stats.field("compiles").unwrap().uint(u64::MAX).unwrap(), n);
    assert_eq!(stats.field("hits").unwrap().uint(u64::MAX).unwrap(), n);
    assert_eq!(stats.field("rejected").unwrap().uint(u64::MAX).unwrap(), 0);

    server.stop();
}

/// A batch larger than the queue bound is rejected whole with 429 and
/// the documented `queue_full` error kind.
#[test]
fn oversized_batches_get_429_queue_full() {
    let (_engine, server) = start_server(ServeConfig {
        queue_capacity: 2,
        ..ServeConfig::default()
    });
    let ghz = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
    let body = format!(
        "{{\"jobs\":[{}]}}",
        (0..3)
            .map(|i| format!("{{\"name\":\"j{i}\",\"qasm\":{ghz:?}}}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, response) = post_compile(server.addr(), &body);
    assert_eq!(status, 429);
    let error = response.field("error").unwrap();
    assert_eq!(error.field("kind").unwrap().str().unwrap(), "queue_full");

    // A batch that fits still compiles afterwards.
    let small = format!("{{\"jobs\":[{{\"name\":\"ok\",\"qasm\":{ghz:?}}}]}}");
    let (status, response) = post_compile(server.addr(), &small);
    assert_eq!(status, 200);
    let results = results_by_name(&response);
    assert_eq!(results["ok"].field("ok").unwrap(), &Value::Bool(true));
    server.stop();
}

/// One bad job fails alone (ok=false, kind qasm); its batch siblings
/// still compile.
#[test]
fn per_job_qasm_failures_do_not_poison_the_batch() {
    let (_engine, server) = start_server(ServeConfig::default());
    let ghz = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
    let body = format!(
        "{{\"jobs\":[{{\"name\":\"good\",\"qasm\":{ghz:?}}},{{\"name\":\"bad\",\"qasm\":\"qreg\"}}]}}"
    );
    let (status, response) = post_compile(server.addr(), &body);
    assert_eq!(status, 200);
    let results = results_by_name(&response);
    assert_eq!(results["good"].field("ok").unwrap(), &Value::Bool(true));
    assert_eq!(results["bad"].field("ok").unwrap(), &Value::Bool(false));
    let error = results["bad"].field("error").unwrap();
    assert_eq!(error.field("kind").unwrap().str().unwrap(), "qasm");
    server.stop();
}

/// Malformed bodies, unknown paths and oversized payloads map to the
/// documented statuses.
#[test]
fn http_edges_have_the_documented_statuses() {
    let (_engine, server) = start_server(ServeConfig {
        max_body_bytes: 128,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let (status, text) = request(addr, "POST", "/v1/compile", Some("{\"jobs\"")).unwrap();
    assert_eq!(status, 400);
    assert!(text.contains("\"kind\":\"decode\""), "{text}");

    let (status, _) = request(addr, "GET", "/v1/missing", None).unwrap();
    assert_eq!(status, 404);

    let big = "x".repeat(256);
    let (status, _) = request(addr, "POST", "/v1/compile", Some(&big)).unwrap();
    assert_eq!(status, 413);

    let (status, text) = request(addr, "GET", "/v1/health", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(text, "{\"ok\":true}");
    server.stop();
}
