//! End-to-end integration tests: benchmark generators → Atomique
//! compiler → fidelity model, across the whole workspace.

use atomique::{compile, AtomiqueConfig, Relaxation, StageKind};
use raa_arch::{ArrayDims, RaaConfig};
use raa_benchmarks::{large_suite, small_suite};

/// Every suite benchmark compiles; gate accounting is conserved and the
/// fidelity estimate is a probability.
#[test]
fn every_benchmark_compiles_on_atomique() {
    let cfg = AtomiqueConfig::default();
    for b in small_suite() {
        let out = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let logical =
            raa_circuit::optimize(&b.circuit).decompose_to(raa_circuit::NativeGateSet::Cz);
        assert_eq!(
            out.stats.two_qubit_gates,
            logical.two_qubit_count() + 3 * out.stats.swaps_inserted,
            "{}: two-qubit accounting broken",
            b.name
        );
        let f = out.total_fidelity();
        assert!(f > 0.0 && f <= 1.0, "{}: fidelity {f}", b.name);
        assert!(out.stats.depth >= 1, "{}", b.name);
    }
}

/// The larger Fig. 13 workloads compile too (a slower test, kept to the
/// light half of the suite).
#[test]
fn large_suite_subset_compiles() {
    let cfg = AtomiqueConfig::default();
    for b in large_suite() {
        if b.stats().two_qubit_gates > 400 {
            continue; // QV-32 / LiH take their time in debug builds
        }
        let out = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert!(out.total_fidelity() > 0.0, "{}", b.name);
    }
}

/// Stage gate lists cover every two-qubit gate exactly once.
#[test]
fn stages_cover_all_gates() {
    let b = &small_suite()[3]; // Adder-10
    let out = compile(&b.circuit, &AtomiqueConfig::default()).unwrap();
    let staged: usize = out.stages.iter().map(|s| s.gate_pairs.len()).sum();
    assert_eq!(staged, out.stats.two_qubit_gates);
    let one_q: usize = out
        .stages
        .iter()
        .filter(|s| s.kind == StageKind::OneQubit)
        .map(|s| s.one_qubit_gates.len())
        .sum();
    assert_eq!(one_q, out.stats.one_qubit_gates);
}

/// Compilation is a pure function of (circuit, config).
#[test]
fn compilation_is_deterministic() {
    let b = &small_suite()[6]; // QSim-rand-10
    let cfg = AtomiqueConfig::default();
    let x = compile(&b.circuit, &cfg).unwrap();
    let y = compile(&b.circuit, &cfg).unwrap();
    assert_eq!(x.stats.two_qubit_gates, y.stats.two_qubit_gates);
    assert_eq!(x.stats.depth, y.stats.depth);
    assert_eq!(x.stats.num_move_stages, y.stats.num_move_stages);
    assert!((x.total_fidelity() - y.total_fidelity()).abs() < 1e-12);
}

/// Relaxing all constraints can only help depth, never gate counts.
#[test]
fn relaxation_reduces_depth_only() {
    let b = &small_suite()[6];
    let strict = compile(&b.circuit, &AtomiqueConfig::default()).unwrap();
    let relaxed = compile(
        &b.circuit,
        &AtomiqueConfig {
            relaxation: Relaxation {
                individual_addressing: true,
                allow_order_violation: true,
                allow_overlap: true,
            },
            ..AtomiqueConfig::default()
        },
    )
    .unwrap();
    assert!(relaxed.stats.depth <= strict.stats.depth);
    assert_eq!(relaxed.stats.two_qubit_gates, strict.stats.two_qubit_gates);
}

/// Hardware too small for the circuit produces a typed error, not a panic.
#[test]
fn capacity_errors_are_typed() {
    let hw = RaaConfig::new(ArrayDims::new(2, 2), vec![ArrayDims::new(2, 2)]).unwrap();
    let b = &small_suite()[2]; // VQE-20: 20 qubits > 8 traps
    let err = compile(&b.circuit, &AtomiqueConfig::for_hardware(hw)).unwrap_err();
    assert!(matches!(err, atomique::CompileError::Capacity { .. }));
}

/// The movement physics responds to hardware parameters end to end.
#[test]
fn slower_moves_decohere_more() {
    let b = &small_suite()[6];
    let mut fast_cfg = AtomiqueConfig::default();
    fast_cfg.params = fast_cfg.params.with_t_move(200e-6);
    let mut slow_cfg = AtomiqueConfig::default();
    slow_cfg.params = slow_cfg.params.with_t_move(2000e-6);
    let fast = compile(&b.circuit, &fast_cfg).unwrap();
    let slow = compile(&b.circuit, &slow_cfg).unwrap();
    assert!(
        slow.fidelity.move_decoherence < fast.fidelity.move_decoherence,
        "decoherence must grow with movement time"
    );
}
