//! The ISA acceptance suite: every named benchmark of the workspace
//! (`raa-benchmarks` Table II sets), compiled by the Atomique pipeline
//! *and* by the lowered baselines, must produce instruction streams that
//!
//! * pass the standalone legality checker (C1/C2/C3 re-verified from the
//!   stream alone),
//! * pass the replay verifier (every reference gate exactly once, DAG
//!   order respected), and
//! * round-trip through both codecs byte-identically.

use atomique::{compile, emit_isa, AtomiqueConfig};
use raa_baselines::{
    compile_fixed, geyser_pulses, lower_fixed, lower_geyser, lower_tan, tan_iterp,
    FixedArchitecture,
};
use raa_benchmarks::{large_suite, small_suite, Benchmark};
use raa_circuit::NativeGateSet;
use raa_isa::{check_legality, codec, replay_verify, IsaProgram, IsaStats};
use raa_physics::HardwareParams;

/// The codec half of the oracle: both encodings must round-trip
/// losslessly and re-encode byte-identically.
fn assert_codecs_lossless(name: &str, backend: &str, program: &IsaProgram) {
    let json =
        codec::to_json(program).unwrap_or_else(|e| panic!("{name}/{backend}: json encode: {e}"));
    let decoded =
        codec::from_json(&json).unwrap_or_else(|e| panic!("{name}/{backend}: json decode: {e}"));
    assert_eq!(
        &decoded, program,
        "{name}/{backend}: json round-trip changed the program"
    );
    assert_eq!(
        codec::to_json(&decoded).unwrap(),
        json,
        "{name}/{backend}: json re-encoding not byte-identical"
    );

    let bytes = codec::to_bytes(program);
    let decoded = codec::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{name}/{backend}: binary decode: {e}"));
    assert_eq!(
        &decoded, program,
        "{name}/{backend}: binary round-trip changed the program"
    );
    assert_eq!(
        codec::to_bytes(&decoded),
        bytes,
        "{name}/{backend}: binary re-encoding not byte-identical"
    );
}

/// The full oracle: legality + replay + codecs.
fn assert_stream_ok(name: &str, backend: &str, program: &IsaProgram) {
    check_legality(program).unwrap_or_else(|e| panic!("{name}/{backend}: illegal stream: {e}"));
    let report = replay_verify(program)
        .unwrap_or_else(|e| panic!("{name}/{backend}: unfaithful stream: {e}"));
    let stats = IsaStats::of(program);
    assert_eq!(
        report.two_qubit_gates, stats.two_qubit_gates,
        "{name}/{backend}"
    );
    assert_eq!(
        report.one_qubit_gates, stats.one_qubit_gates,
        "{name}/{backend}"
    );
    assert_codecs_lossless(name, backend, program);
}

fn full_suite() -> Vec<Benchmark> {
    let mut suite = large_suite();
    // small_suite repeats H2-4; keep one instance of each name.
    for b in small_suite() {
        if !suite.iter().any(|x| x.name == b.name) {
            suite.push(b);
        }
    }
    suite
}

#[test]
fn atomique_streams_pass_the_oracle_on_the_full_suite() {
    let cfg = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        ..AtomiqueConfig::default()
    };
    for b in full_suite() {
        // verify_isa already ran the oracle inside compile; re-run it on
        // the attached stream plus the codec checks, from the outside.
        let out = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let isa = out.isa.as_ref().expect("emit_isa attaches the stream");
        assert_stream_ok(b.name, "atomique", isa);
        assert_eq!(
            IsaStats::of(isa).two_qubit_gates,
            out.stats.two_qubit_gates,
            "{}: stream and compiler disagree on gate count",
            b.name
        );
        // emit_isa on the same program is deterministic.
        let again = emit_isa(&out, &cfg.hardware, "");
        assert_eq!(&again, isa, "{}: re-lowering differs", b.name);
    }
}

#[test]
fn tan_streams_pass_the_oracle_on_the_full_suite() {
    let params = HardwareParams::neutral_atom();
    for b in full_suite() {
        let r = tan_iterp(&b.circuit, &params);
        let isa = lower_tan(&b.circuit, &r, "tan-iterp", b.name)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_stream_ok(b.name, "tan-iterp", &isa);
        assert_eq!(
            IsaStats::of(&isa).transfers,
            r.two_qubit_gates,
            "{}",
            b.name
        );
    }
}

#[test]
fn fixed_streams_pass_the_oracle_on_the_full_suite() {
    for b in full_suite() {
        for arch in [
            FixedArchitecture::FaaRectangular,
            FixedArchitecture::Superconducting,
        ] {
            let r = compile_fixed(&b.circuit, arch, 0)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", b.name, arch.name()));
            let isa = lower_fixed(&r, b.name)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", b.name, arch.name()));
            assert_stream_ok(b.name, arch.name(), &isa);
        }
    }
}

#[test]
fn geyser_streams_pass_the_oracle_on_the_full_suite() {
    for b in full_suite() {
        let native = b.circuit.decompose_to(NativeGateSet::Cz);
        let r = geyser_pulses(&native);
        let isa = lower_geyser(&native, &r, b.name).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        assert_stream_ok(b.name, "geyser", &isa);
    }
}
