//! Property-based tests over the whole pipeline: randomized circuits must
//! always compile to conserving, constraint-respecting programs.

use atomique::{compile, AtomiqueConfig, Relaxation, RouterMode};
use proptest::prelude::*;
use raa_circuit::{Circuit, CircuitStats, Gate, NativeGateSet, Qubit};
use raa_sabre::{route, verify_routing, SabreConfig};

/// Strategy: a random circuit over `n ∈ [2, 16]` qubits with up to 60
/// mixed gates.
fn circuits() -> impl Strategy<Value = Circuit> {
    (2usize..=16).prop_flat_map(|n| {
        let gate = (0u8..4, 0..n as u32, 1..n.max(2) as u32, -3.0f64..3.0).prop_map(
            move |(kind, a, off, theta)| {
                let b = (a + off) % n as u32;
                match kind {
                    0 => Gate::h(Qubit(a)),
                    1 => Gate::rz(Qubit(a), theta),
                    2 if b != a => Gate::cz(Qubit(a), Qubit(b)),
                    3 if b != a => Gate::zz(Qubit(a), Qubit(b), theta),
                    _ => Gate::x(Qubit(a)),
                }
            },
        );
        proptest::collection::vec(gate, 1..60)
            .prop_map(move |gates| Circuit::with_gates(n, gates).expect("generated gates valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Gate accounting: compiled 2Q = logical (CZ-native) + 3 per SWAP;
    /// every 1Q gate survives; fidelity is a probability.
    #[test]
    fn compile_conserves_gates(c in circuits()) {
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        // The pipeline pre-optimizes, so the reference count comes from
        // the optimized native circuit.
        let native = raa_circuit::optimize(&raa_circuit::optimize(&c).decompose_to(NativeGateSet::Cz));
        prop_assert_eq!(
            out.stats.two_qubit_gates,
            native.two_qubit_count() + 3 * out.stats.swaps_inserted
        );
        let f = out.total_fidelity();
        prop_assert!(f > 0.0 && f <= 1.0);
    }

    /// Every compiled program passes the independent stage validator.
    #[test]
    fn compiled_programs_validate(c in circuits()) {
        let cfg = AtomiqueConfig::default();
        let out = compile(&c, &cfg).unwrap();
        atomique::validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
    }

    /// Depth is bounded below by the dependency structure and above by
    /// full serialization.
    #[test]
    fn depth_bounds(c in circuits()) {
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        let native = c.decompose_to(NativeGateSet::Cz);
        let stats = CircuitStats::of(&native);
        if stats.two_qubit_gates > 0 {
            prop_assert!(out.stats.depth >= 1);
            prop_assert!(out.stats.depth <= out.stats.two_qubit_gates);
        }
    }

    /// The serial router is never shallower than the parallel router.
    #[test]
    fn serial_vs_parallel(c in circuits()) {
        let par = compile(&c, &AtomiqueConfig::default()).unwrap();
        let ser = compile(
            &c,
            &AtomiqueConfig { router_mode: RouterMode::Serial, ..AtomiqueConfig::default() },
        )
        .unwrap();
        prop_assert!(par.stats.depth <= ser.stats.depth);
        prop_assert_eq!(par.stats.two_qubit_gates, ser.stats.two_qubit_gates);
    }

    /// Fully relaxed constraints never increase depth.
    #[test]
    fn relaxation_monotone(c in circuits()) {
        let strict = compile(&c, &AtomiqueConfig::default()).unwrap();
        let relaxed = compile(
            &c,
            &AtomiqueConfig {
                relaxation: Relaxation {
                    individual_addressing: true,
                    allow_order_violation: true,
                    allow_overlap: true,
                },
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        prop_assert!(relaxed.stats.depth <= strict.stats.depth);
    }

    /// SABRE routing over a grid is always a faithful rewrite of the
    /// original circuit (checked by the independent verifier).
    #[test]
    fn sabre_routing_is_faithful(c in circuits()) {
        let side = (c.num_qubits() as f64).sqrt().ceil() as usize;
        let g = raa_arch::CouplingGraph::grid(side.max(2), side.max(2));
        let layout: Vec<u32> = (0..c.num_qubits() as u32).collect();
        let routed = route(&c, &g, &layout, &SabreConfig::default()).unwrap();
        let verified = verify_routing(&c, &routed, &g).unwrap();
        prop_assert_eq!(verified, c.len());
    }

    /// Movement accounting: distance and stages are zero iff no 2Q gates.
    #[test]
    fn movement_iff_two_qubit_gates(c in circuits()) {
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        if out.stats.two_qubit_gates == 0 {
            prop_assert_eq!(out.stats.num_move_stages, 0);
            prop_assert!(out.stats.total_move_distance_mm < 1e-12);
        } else {
            prop_assert!(out.stats.num_move_stages >= 1);
            prop_assert!(out.stats.total_move_distance_mm > 0.0);
        }
    }

    /// Every compiled program lowers to an instruction stream that the
    /// independent oracle accepts (C1/C2/C3 legality + exactly-once
    /// DAG-consistent replay), and both codecs round-trip the stream
    /// bit-identically.
    #[test]
    fn isa_oracle_and_codecs(c in circuits()) {
        let cfg = AtomiqueConfig {
            emit_isa: true,
            verify_isa: true,
            ..AtomiqueConfig::default()
        };
        // verify_isa makes compile itself fail on an illegal/unfaithful
        // stream.
        let out = compile(&c, &cfg).unwrap();
        let isa = out.isa.as_ref().expect("emit_isa attaches the stream");
        let report = raa_isa::replay_verify(isa)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(report.two_qubit_gates, out.stats.two_qubit_gates);
        prop_assert_eq!(report.one_qubit_gates, out.stats.one_qubit_gates);

        let json = raa_isa::codec::to_json(isa).unwrap();
        let from_json = raa_isa::codec::from_json(&json).unwrap();
        prop_assert_eq!(&from_json, isa);
        prop_assert_eq!(raa_isa::codec::to_json(&from_json).unwrap(), json);

        let bytes = raa_isa::codec::to_bytes(isa);
        let from_bytes = raa_isa::codec::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&from_bytes, isa);
        prop_assert_eq!(raa_isa::codec::to_bytes(&from_bytes), bytes);
    }

    /// Baseline schedules lower through the same ISA and pass the same
    /// oracle as the Atomique pipeline.
    #[test]
    fn baseline_lowerings_pass_the_oracle(c in circuits()) {
        let tan = raa_baselines::tan_iterp(&c, &raa_physics::HardwareParams::neutral_atom());
        let isa = raa_baselines::lower_tan(&c, &tan, "tan-iterp", "prop")
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        raa_isa::check_legality(&isa).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let report = raa_isa::replay_verify(&isa)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(report.two_qubit_gates, tan.two_qubit_gates);

        let native = c.decompose_to(NativeGateSet::Cz);
        let geyser = raa_baselines::geyser_pulses(&native);
        let isa = raa_baselines::lower_geyser(&native, &geyser, "prop")
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        raa_isa::check_legality(&isa).map_err(|e| TestCaseError::fail(e.to_string()))?;
        let report = raa_isa::replay_verify(&isa)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(report.two_qubit_gates, native.two_qubit_count());
    }
}
