//! Soak gate (release builds only): a live server under a sustained
//! mixed workload — cache hits, unique misses with LRU churn,
//! malformed requests, and low-probability injected faults — from 8
//! client threads for `RAA_SOAK_SECS` seconds (default 30).
//!
//! Asserts the service *stays* a service: every request terminates
//! with a documented status, no connection hangs, the queue depth
//! returns to zero, the engine's cache counters reconcile exactly with
//! the jobs the clients saw answered, and process memory is stable
//! (no per-request leak).
//!
//! Debug builds skip this test (`cargo test -q` tier-1 stays fast);
//! CI runs it as a separate release step.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atomique::AtomiqueConfig;
use raa_circuit::{qasm, Circuit, Gate, Qubit};
use raa_isa::json;
use raa_serve::engine::{Engine, ServeConfig};
use raa_serve::{api, http, request};

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(Qubit(0)));
    for i in 0..n - 1 {
        c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
    }
    c
}

/// A circuit no other (thread, iteration) produces: a GHZ ladder with
/// a thread/iteration-keyed rotation — distinct `stable_hash`, so a
/// guaranteed cache miss driving compile load and LRU churn.
fn unique_circuit(thread: usize, iter: usize) -> Circuit {
    let mut c = ghz(4 + (iter % 3));
    let angle = 1e-4 * (thread * 100_000 + iter + 1) as f64;
    c.push(Gate::rz(Qubit(0), angle));
    c
}

/// Resident-set size in bytes, from `/proc/self/statm`.
#[cfg(target_os = "linux")]
fn rss_bytes() -> u64 {
    let statm = std::fs::read_to_string("/proc/self/statm").expect("statm");
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("statm resident field");
    pages * 4096
}

/// What one client thread observed.
#[derive(Default)]
struct ClientReport {
    /// Jobs inside HTTP 200 responses (each was classified by the
    /// engine exactly once as hit, miss or coalesced).
    jobs_answered: u64,
    requests: u64,
    shed: u64,
    bad_requests: u64,
    problems: Vec<String>,
}

#[cfg_attr(debug_assertions, ignore = "soak runs in release builds only")]
#[test]
fn sustained_mixed_workload_stays_stable() {
    let secs: u64 = std::env::var("RAA_SOAK_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    // Low-probability injected faults ride along (this test binary is
    // its own process, so arming the global schedule is safe), and the
    // default breaker stays on — a shed burst is a legal outcome.
    raa_fault::configure("serve.compile:error@0.02;seed=99").expect("valid fault spec");

    let engine = Arc::new(Engine::new(ServeConfig {
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 64, // small: forces steady LRU eviction churn
        max_retries: 1,
        retry_backoff_ms: 1,
        ..ServeConfig::default()
    }));
    let server = http::serve(engine.clone(), "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    // Hot bodies (cache hits after round one) are shared by all
    // clients; unique bodies are generated per (thread, iteration).
    let hot_bodies: Vec<String> = (3..7)
        .map(|n| {
            let text = qasm::to_qasm(&ghz(n));
            format!("{{\"jobs\":[{{\"name\":\"hot{n}\",\"qasm\":{text:?}}}]}}")
        })
        .collect();
    let hot_bodies = Arc::new(hot_bodies);

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..8)
        .map(|t| {
            let hot = hot_bodies.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut report = ClientReport::default();
                let mut iter = 0usize;
                while !stop.load(Ordering::Acquire) {
                    iter += 1;
                    let (method, path, body);
                    match iter % 8 {
                        0 => {
                            // Malformed body: must be a clean 400.
                            (method, path) = ("POST", "/v1/compile");
                            body = Some("{\"jobs\"".to_string());
                        }
                        1 => {
                            (method, path) = ("GET", "/v1/stats");
                            body = None;
                        }
                        2 | 3 => {
                            // Unique miss: one fresh circuit plus one
                            // hot sibling in the same batch.
                            let unique = api::circuit_to_json(&unique_circuit(t, iter))
                                .expect("finite angles");
                            let hot_text = qasm::to_qasm(&ghz(3 + (iter % 4)));
                            (method, path) = ("POST", "/v1/compile");
                            body = Some(format!(
                                "{{\"jobs\":[{{\"name\":\"u{t}-{iter}\",\"circuit\":{unique}}},\
                                 {{\"name\":\"sib\",\"qasm\":{hot_text:?}}}]}}"
                            ));
                        }
                        _ => {
                            (method, path) = ("POST", "/v1/compile");
                            body = Some(hot[iter % hot.len()].clone());
                        }
                    }
                    report.requests += 1;
                    let (status, text) = match request(addr, method, path, body.as_deref()) {
                        Ok(r) => r,
                        Err(e) => {
                            report.problems.push(format!("t{t} i{iter}: io: {e}"));
                            continue;
                        }
                    };
                    match status {
                        200 => {
                            if path == "/v1/compile" {
                                match json::parse(&text) {
                                    Ok(v) => {
                                        let n = v
                                            .field("results")
                                            .ok()
                                            .and_then(|r| r.arr().ok())
                                            .map_or(0, |a| a.len());
                                        report.jobs_answered += n as u64;
                                    }
                                    Err(e) => report
                                        .problems
                                        .push(format!("t{t} i{iter}: bad 200 body: {e}")),
                                }
                            }
                        }
                        400 => report.bad_requests += 1,
                        503 => report.shed += 1,
                        other => report
                            .problems
                            .push(format!("t{t} i{iter}: unexpected status {other}: {text}")),
                    }
                }
                report
            })
        })
        .collect();

    // Sample memory once the workload is warmed up, then let it soak.
    std::thread::sleep(Duration::from_millis((secs * 1000 / 4).max(500)));
    #[cfg(target_os = "linux")]
    let warm_rss = rss_bytes();
    let remaining =
        Duration::from_secs(secs).saturating_sub(Duration::from_millis((secs * 1000 / 4).max(500)));
    std::thread::sleep(remaining);
    stop.store(true, Ordering::Release);

    // Zero hung connections: every client joins promptly (a wedged
    // request would hang this join and fail the gate by timeout).
    let reports: Vec<ClientReport> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread panicked"))
        .collect();
    for report in &reports {
        assert!(report.problems.is_empty(), "{:?}", report.problems);
    }

    // The service quiesces: admitted jobs drain to zero and no
    // connection stays open.
    let settle = Instant::now();
    loop {
        let stats = engine.stats();
        if stats.queue_depth == 0 && server.active_connections() == 0 {
            break;
        }
        assert!(
            settle.elapsed() < Duration::from_secs(5),
            "did not quiesce: queue_depth={} active_connections={}",
            stats.queue_depth,
            server.active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Reconcile: every job inside a 200 response was classified by the
    // engine exactly once. (Shed and malformed requests never reach
    // classification, and these bodies contain no per-job parse
    // failures.)
    let stats = engine.stats();
    let answered: u64 = reports.iter().map(|r| r.jobs_answered).sum();
    let requests: u64 = reports.iter().map(|r| r.requests).sum();
    assert_eq!(
        stats.hits + stats.misses + stats.coalesced,
        answered,
        "engine classification does not reconcile with answered jobs ({stats:?})"
    );
    assert!(
        stats.misses > 0 && stats.hits > 0,
        "workload too thin: {stats:?}"
    );
    assert!(
        requests >= 8 * 4,
        "clients barely ran ({requests} requests in {secs}s)"
    );

    // Memory stable: steady-state growth after warmup stays bounded
    // (the cache is LRU-bounded; anything linear in request count
    // would blow far past this in a soak).
    #[cfg(target_os = "linux")]
    {
        let final_rss = rss_bytes();
        assert!(
            final_rss < warm_rss + (256 << 20),
            "resident set grew {warm_rss} -> {final_rss} bytes over the soak"
        );
    }

    // Fault-free epilogue: disarm, and the served bytes match a direct
    // compile again.
    raa_fault::disarm();
    let reference = qasm::from_qasm(&qasm::to_qasm(&ghz(3))).unwrap();
    let direct = {
        let cfg = AtomiqueConfig {
            emit_isa: true,
            verify_isa: true,
            trace: true,
            ..AtomiqueConfig::default()
        };
        let out = atomique::compile(&reference, &cfg).unwrap();
        raa_isa::codec::to_bytes(out.isa.as_ref().unwrap())
    };
    let text = qasm::to_qasm(&ghz(3));
    let body = format!("{{\"jobs\":[{{\"name\":\"end\",\"qasm\":{text:?}}}]}}");
    let (status, text) = request(addr, "POST", "/v1/compile", Some(&body)).expect("epilogue");
    assert_eq!(status, 200);
    let v = json::parse(&text).unwrap();
    let result = &v.field("results").unwrap().arr().unwrap()[0];
    let bytes = raa_serve::b64::decode(result.field("isa_b64").unwrap().str().unwrap()).unwrap();
    assert_eq!(
        bytes, direct,
        "post-soak served bytes diverge from direct compile"
    );
    server.stop();
}
