//! Differential router harness: the spatial-grid proximity index
//! (`ProximityIndex::Grid`, the default) must be *observably identical*
//! to the exhaustive-scan oracle (`ProximityIndex::Exhaustive`) it
//! replaced. The grid only restricts which candidate atoms the
//! constraint checks enumerate — never the accept/reject predicates — so
//! any divergence in the compiled schedule is a bug in the index.
//!
//! Coverage: the full small suite compiled under four router-relevant
//! Atomique configurations, asserting stage-for-stage equality (kinds,
//! gate sets, every line move bit-for-bit) and byte-identical lowered
//! ISA streams; plus byte-stability of the three baseline backends,
//! which must not be affected by the proximity-index setting at all.

use atomique::{compile, AtomiqueConfig, CompiledProgram, LineMove, ProximityIndex, Stage};
use raa_arch::RaaConfig;
use raa_baselines::{
    compile_fixed, geyser_pulses, lower_fixed, lower_geyser, lower_tan, tan_iterp,
    FixedArchitecture,
};
use raa_benchmarks::small_suite;
use raa_circuit::NativeGateSet;
use raa_isa::codec;
use raa_physics::HardwareParams;

/// The four router configurations the differential harness sweeps:
/// paper defaults, serial scheduling, the Fig. 21 all-baselines
/// ablation, and a three-AOD machine.
fn configs() -> Vec<(&'static str, AtomiqueConfig)> {
    let base = AtomiqueConfig {
        emit_isa: true,
        ..AtomiqueConfig::default()
    };
    vec![
        ("default", base.clone()),
        (
            "serial",
            AtomiqueConfig {
                router_mode: atomique::RouterMode::Serial,
                ..base.clone()
            },
        ),
        ("ablation-baseline", base.clone().ablation_baseline()),
        (
            "three-aods",
            AtomiqueConfig {
                hardware: RaaConfig::square(10, 3).expect("valid machine"),
                ..base
            },
        ),
    ]
}

/// Bit-level line-move equality (unpark markers carry NaN coordinates,
/// so `==` on the floats would never match them).
fn moves_eq(a: &[LineMove], b: &[LineMove]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.aod == y.aod
                && x.axis_row == y.axis_row
                && x.line == y.line
                && x.from_track.to_bits() == y.from_track.to_bits()
                && x.to_track.to_bits() == y.to_track.to_bits()
        })
}

fn assert_stage_eq(ctx: &str, i: usize, g: &Stage, s: &Stage) {
    assert_eq!(g.kind, s.kind, "{ctx}: stage {i} kind");
    assert_eq!(g.gate_pairs, s.gate_pairs, "{ctx}: stage {i} gate pairs");
    assert_eq!(
        g.one_qubit_gates, s.one_qubit_gates,
        "{ctx}: stage {i} 1Q gates"
    );
    assert_eq!(g.cooled_aod, s.cooled_aod, "{ctx}: stage {i} cooling");
    assert_eq!(g.kept_aods, s.kept_aods, "{ctx}: stage {i} kept AODs");
    assert!(moves_eq(&g.moves, &s.moves), "{ctx}: stage {i} moves");
    assert!(
        moves_eq(&g.retract_moves, &s.retract_moves),
        "{ctx}: stage {i} retraction moves"
    );
}

fn assert_programs_identical(ctx: &str, grid: &CompiledProgram, scan: &CompiledProgram) {
    assert_eq!(
        grid.stages.len(),
        scan.stages.len(),
        "{ctx}: stage counts differ"
    );
    for (i, (g, s)) in grid.stages.iter().zip(scan.stages.iter()).enumerate() {
        assert_stage_eq(ctx, i, g, s);
    }
    assert_eq!(grid.mapping, scan.mapping, "{ctx}: atom mappings differ");
    assert_eq!(
        grid.stats.two_qubit_gates, scan.stats.two_qubit_gates,
        "{ctx}: gate counts differ"
    );
    assert_eq!(grid.stats.depth, scan.stats.depth, "{ctx}: depths differ");
    assert_eq!(
        grid.stats.transfers, scan.stats.transfers,
        "{ctx}: transfer counts differ"
    );
    assert!(
        (grid.stats.total_move_distance_mm - scan.stats.total_move_distance_mm).abs() < 1e-12,
        "{ctx}: move distances differ"
    );
    // The lowered instruction streams must be byte-identical.
    let gb = codec::to_bytes(grid.isa.as_ref().expect("emit_isa set"));
    let sb = codec::to_bytes(scan.isa.as_ref().expect("emit_isa set"));
    assert_eq!(gb, sb, "{ctx}: ISA streams differ");
}

#[test]
fn grid_router_matches_exhaustive_oracle_on_the_small_suite() {
    for b in small_suite() {
        for (cfg_name, cfg) in configs() {
            let ctx = format!("{}/{cfg_name}", b.name);
            let grid = compile(
                &b.circuit,
                &AtomiqueConfig {
                    proximity_index: ProximityIndex::Grid,
                    ..cfg.clone()
                },
            )
            .unwrap_or_else(|e| panic!("{ctx} (grid): {e}"));
            let scan = compile(
                &b.circuit,
                &AtomiqueConfig {
                    proximity_index: ProximityIndex::Exhaustive,
                    ..cfg
                },
            )
            .unwrap_or_else(|e| panic!("{ctx} (exhaustive): {e}"));
            assert_programs_identical(&ctx, &grid, &scan);
        }
    }
}

/// Tracing is pure observation: compiling with detail tracing enabled
/// (`trace: true`) must produce output bit-identical to a compile with
/// it disabled — same stages, same line moves, byte-identical lowered
/// ISA — across all four router configurations. Counters and spans may
/// only ever *read* pipeline state; a divergence here means an
/// instrumentation site leaked into a scheduling decision.
#[test]
fn tracing_is_output_identical_on_the_small_suite() {
    for b in small_suite() {
        for (cfg_name, cfg) in configs() {
            let ctx = format!("{}/{cfg_name}/trace-identity", b.name);
            let off = compile(
                &b.circuit,
                &AtomiqueConfig {
                    trace: false,
                    ..cfg.clone()
                },
            )
            .unwrap_or_else(|e| panic!("{ctx} (off): {e}"));
            let on = compile(&b.circuit, &AtomiqueConfig { trace: true, ..cfg })
                .unwrap_or_else(|e| panic!("{ctx} (on): {e}"));
            assert_programs_identical(&ctx, &on, &off);
            // The traced compile really did record detail telemetry
            // (otherwise the identity above would be vacuous) …
            assert!(
                on.report.counter("route.try_add") > 0,
                "{ctx}: traced compile recorded no router counters"
            );
            // … and the untraced one recorded none.
            assert!(
                off.report.trace.counters.is_empty(),
                "{ctx}: counters recorded with tracing disabled"
            );
        }
    }
}

/// The three baseline backends never touch the movement router, so their
/// lowered streams must be bitwise-stable regardless of how the Atomique
/// side is configured — pinning down that the proximity index cannot
/// leak into any of the four backends' output.
#[test]
fn baseline_backends_are_byte_stable_across_proximity_modes() {
    let params = HardwareParams::neutral_atom();
    for b in small_suite() {
        let streams = || {
            let tan = tan_iterp(&b.circuit, &params);
            let tan = lower_tan(&b.circuit, &tan, "tan-iterp", b.name).unwrap();
            let fixed = compile_fixed(&b.circuit, FixedArchitecture::FaaRectangular, 0).unwrap();
            let fixed = lower_fixed(&fixed, b.name).unwrap();
            let native = b.circuit.decompose_to(NativeGateSet::Cz);
            let geyser = lower_geyser(&native, &geyser_pulses(&native), b.name).unwrap();
            [
                codec::to_bytes(&tan),
                codec::to_bytes(&fixed),
                codec::to_bytes(&geyser),
            ]
        };
        // One evaluation per proximity mode of the surrounding test run:
        // the baselines take no proximity configuration, so two
        // independent evaluations must agree byte for byte.
        assert_eq!(streams(), streams(), "{}: baselines not stable", b.name);
    }
}
