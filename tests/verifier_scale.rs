//! Release-mode verifier-scaling smoke (CI's `cargo test -q --release
//! --test verifier_scale` step): the 1024-atom scaling workloads must be
//! ISA-verifiable under *both* check modes with identical verdicts, and
//! the default grid mode must finish well inside a generous wall-clock
//! guard. The guard is deliberately loose (an order of magnitude above
//! the measured grid time, far below the exhaustive-scan time at this
//! size) — its job is to fail the build on an accidental O(atoms²)
//! regression in the checker, not to pin exact timings.

use std::time::{Duration, Instant};

use atomique::{compile, emit_isa, AtomiqueConfig};
use raa_benchmarks::scaling_pair;
use raa_isa::{check_legality_mode, optimize_with, CheckMode, OptLevel, VerifyStrategy};

/// Generous wall-clock ceiling for grid-mode verification of one
/// 1024-atom stream. Measured ≲1 s in release (EXPERIMENTS.md "Verifier
/// scaling"); an O(atoms²) checker lands at exhaustive-scan cost, well
/// above this.
const GRID_VERIFY_GUARD: Duration = Duration::from_secs(30);

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug; CI runs it via cargo test --release"
)]
fn verifier_handles_1024_atom_streams_in_both_modes() {
    for b in scaling_pair("QSim-1024", "QAOA-regu3-1024", 1024) {
        let cfg = AtomiqueConfig {
            emit_isa: true,
            ..AtomiqueConfig::scaled_to(1024)
        };
        let out = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let raw = emit_isa(&out, &cfg.hardware, b.name);

        let t0 = Instant::now();
        let grid = check_legality_mode(&raw, CheckMode::Grid);
        let grid_t = t0.elapsed();
        let scan = check_legality_mode(&raw, CheckMode::Exhaustive);
        assert_eq!(grid, scan, "{}: check modes disagree at 1024 atoms", b.name);
        grid.unwrap_or_else(|e| panic!("{}: 1024-atom stream illegal: {e}", b.name));
        assert!(
            grid_t < GRID_VERIFY_GUARD,
            "{}: grid-mode verification took {grid_t:?} (guard {GRID_VERIFY_GUARD:?}) — \
             checker complexity regressed",
            b.name
        );

        // The incremental -O2 harness must also stay tractable at this
        // size and keep the stream oracle-clean.
        let (opt, report) = optimize_with(&raw, OptLevel::Aggressive, VerifyStrategy::Incremental);
        assert!(
            !report.skipped_unverified,
            "{}: raw stream unverified",
            b.name
        );
        assert!(
            report.instructions_after <= report.instructions_before,
            "{}: optimizer grew the stream",
            b.name
        );
        check_legality_mode(&opt, CheckMode::Grid)
            .unwrap_or_else(|e| panic!("{}: optimized stream illegal: {e}", b.name));
    }
}
