//! The ISA-optimizer acceptance suite: every named benchmark of the
//! workspace, compiled by Atomique and the lowered baselines, optimized
//! at every `OptLevel`, must
//!
//! * still pass the full oracle (legality + replay + byte-stable
//!   codecs),
//! * keep the flattened observable gate sequence (exact below
//!   `Aggressive`, where no pass regroups pulses),
//! * never gain instructions, pulses or line travel at any level, and
//! * at `OptLevel::Aggressive`, *strictly* lose instructions and line
//!   travel on a majority of the movement (Atomique) streams — the
//!   transfer-based baseline lowerings carry no moves, so the optimizer
//!   is a verified identity there.

use atomique::{compile, emit_isa, AtomiqueConfig};
use raa_baselines::{
    compile_fixed, geyser_pulses, lower_fixed, lower_geyser, lower_tan, tan_iterp,
    FixedArchitecture,
};
use raa_benchmarks::{large_suite, small_suite, Benchmark};
use raa_circuit::NativeGateSet;
use raa_isa::{
    check_legality, codec, flat_gate_events, optimize, replay_verify, Instr, IsaProgram, IsaStats,
    OptLevel,
};
use raa_physics::HardwareParams;

fn full_suite() -> Vec<Benchmark> {
    let mut suite = large_suite();
    for b in small_suite() {
        if !suite.iter().any(|x| x.name == b.name) {
            suite.push(b);
        }
    }
    suite
}

/// All four backends' streams for one benchmark.
fn all_backends(b: &Benchmark) -> Vec<(&'static str, IsaProgram)> {
    let cfg = AtomiqueConfig::default();
    let params = HardwareParams::neutral_atom();

    let ours = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let atomique = emit_isa(&ours, &cfg.hardware, b.name);

    let tan = tan_iterp(&b.circuit, &params);
    let tan = lower_tan(&b.circuit, &tan, "tan-iterp", b.name).unwrap();

    let fixed = compile_fixed(&b.circuit, FixedArchitecture::FaaRectangular, 0).unwrap();
    let fixed = lower_fixed(&fixed, b.name).unwrap();

    let native = b.circuit.decompose_to(NativeGateSet::Cz);
    let geyser = geyser_pulses(&native);
    let geyser = lower_geyser(&native, &geyser, b.name).unwrap();

    vec![
        ("atomique", atomique),
        ("tan-iterp", tan),
        ("faa-rect", fixed),
        ("geyser", geyser),
    ]
}

fn gate_events(p: &IsaProgram) -> Vec<Instr> {
    p.instrs
        .iter()
        .filter(|i| {
            matches!(
                i,
                Instr::RydbergPulse { .. }
                    | Instr::RamanLayer { .. }
                    | Instr::Transfer { .. }
                    | Instr::Cool { .. }
            )
        })
        .cloned()
        .collect()
}

fn assert_codecs_stable(name: &str, backend: &str, program: &IsaProgram) {
    let json =
        codec::to_json(program).unwrap_or_else(|e| panic!("{name}/{backend}: json encode: {e}"));
    let decoded =
        codec::from_json(&json).unwrap_or_else(|e| panic!("{name}/{backend}: json decode: {e}"));
    assert_eq!(&decoded, program, "{name}/{backend}: json round-trip");
    assert_eq!(
        codec::to_json(&decoded).unwrap(),
        json,
        "{name}/{backend}: json re-encode"
    );
    let bytes = codec::to_bytes(program);
    let decoded = codec::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{name}/{backend}: binary decode: {e}"));
    assert_eq!(&decoded, program, "{name}/{backend}: binary round-trip");
    assert_eq!(
        codec::to_bytes(&decoded),
        bytes,
        "{name}/{backend}: binary re-encode"
    );
}

#[test]
fn optimizer_is_safe_and_effective_on_the_full_suite() {
    let mut movement_cases = 0usize;
    let mut strict_instr_wins = 0usize;
    let mut strict_travel_wins = 0usize;

    for b in full_suite() {
        for (backend, program) in all_backends(&b) {
            let before = IsaStats::of(&program);
            let trace = gate_events(&program);
            let flat_trace = flat_gate_events(&program.instrs);

            for level in [OptLevel::None, OptLevel::Basic, OptLevel::Aggressive] {
                let (out, report) = optimize(&program, level);
                assert!(
                    !report.skipped_unverified,
                    "{}/{backend}: input failed the oracle",
                    b.name
                );
                assert_eq!(
                    report.rejected_rewrites, 0,
                    "{}/{backend}@{level:?}: a pass produced an unsafe rewrite",
                    b.name
                );
                check_legality(&out)
                    .unwrap_or_else(|e| panic!("{}/{backend}@{level:?}: {e}", b.name));
                replay_verify(&out)
                    .unwrap_or_else(|e| panic!("{}/{backend}@{level:?}: {e}", b.name));
                assert_eq!(
                    flat_gate_events(&out.instrs),
                    flat_trace,
                    "{}/{backend}@{level:?}: flattened gate sequence changed",
                    b.name
                );
                if level != OptLevel::Aggressive {
                    assert_eq!(
                        gate_events(&out),
                        trace,
                        "{}/{backend}@{level:?}: gate sequence changed",
                        b.name
                    );
                }

                let after = IsaStats::of(&out);
                assert!(
                    after.instructions <= before.instructions,
                    "{}/{backend}@{level:?}: instructions grew",
                    b.name
                );
                assert!(
                    after.pulses <= before.pulses,
                    "{}/{backend}@{level:?}: pulse count grew",
                    b.name
                );
                assert!(
                    after.line_travel_tracks <= before.line_travel_tracks + 1e-9,
                    "{}/{backend}@{level:?}: line travel grew",
                    b.name
                );
                assert_codecs_stable(b.name, backend, &out);

                if level == OptLevel::Aggressive && before.moves > 0 {
                    movement_cases += 1;
                    if after.instructions < before.instructions {
                        strict_instr_wins += 1;
                    }
                    if after.line_travel_tracks < before.line_travel_tracks - 1e-9 {
                        strict_travel_wins += 1;
                    }
                }
            }
        }
    }

    // Aggressive must strictly win on a majority of movement streams.
    assert!(movement_cases > 0, "suite produced no movement streams");
    assert!(
        2 * strict_instr_wins > movement_cases,
        "instruction count strictly reduced on only {strict_instr_wins}/{movement_cases} movement cases"
    );
    assert!(
        2 * strict_travel_wins > movement_cases,
        "line travel strictly reduced on only {strict_travel_wins}/{movement_cases} movement cases"
    );
}

#[test]
fn compile_with_opt_level_matches_standalone_optimization() {
    // The `AtomiqueConfig::opt_level` knob must produce exactly the
    // stream `raa_isa::optimize` produces on the unoptimized lowering.
    let b = &small_suite()[0];
    let base = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        ..AtomiqueConfig::default()
    };
    let opt = AtomiqueConfig {
        opt_level: OptLevel::Aggressive,
        ..base.clone()
    };
    let plain = compile(&b.circuit, &base).unwrap().isa.unwrap();
    let wired = compile(&b.circuit, &opt).unwrap().isa.unwrap();
    let (standalone, _) = optimize(&plain, OptLevel::Aggressive);
    assert_eq!(wired, standalone);
}
