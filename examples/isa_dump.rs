//! Compile a small circuit and print its hardware instruction stream —
//! the serializable program an RAA control system would consume — plus
//! what the ISA optimizer saves on it.
//!
//! Run with `cargo run --release --example isa_dump [-- -O{0,1,2}]
//! [--layered] [--stage-timings] [--trace <path>] [--counters]`
//! (default `-O2`; `--layered` routes with the layer-batching strategy,
//! `--stage-timings` prints the per-stage compile wall-clock breakdown,
//! `--trace` writes the compile's span tree to `<path>` — Chrome
//! trace-event JSON loadable in Perfetto, or JSONL when the path ends
//! in `.jsonl` — and `--counters` prints the telemetry counter table;
//! see `docs/ISA.md` for the instruction set and
//! `docs/OBSERVABILITY.md` for the tracing surface).

use atomique::{compile, emit_isa, trace, AtomiqueConfig, OptLevel, RouterStrategy};
use raa_benchmarks::qaoa_regular;
use raa_isa::{check_legality, codec, disassemble, optimize, replay_verify, IsaStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut level = OptLevel::Aggressive;
    let mut strategy = RouterStrategy::Sequential;
    let mut stage_timings = false;
    let mut trace_path: Option<String> = None;
    let mut counters = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--layered" => strategy = RouterStrategy::Layered,
            "--stage-timings" => stage_timings = true,
            "--counters" => counters = true,
            "--trace" => match args.next() {
                Some(path) => trace_path = Some(path),
                None => return Err("--trace requires a file path".into()),
            },
            flag if flag.starts_with("-O") => match OptLevel::parse_flag(flag) {
                Some(l) => level = l,
                None => {
                    return Err(
                        format!("unknown optimization flag `{flag}` (use -O0, -O1 or -O2)").into(),
                    )
                }
            },
            other => return Err(format!("unknown argument `{other}`").into()),
        }
    }

    // A 10-qubit 3-regular QAOA instance.
    let circuit = qaoa_regular(10, 3, 7);
    let config = AtomiqueConfig {
        emit_isa: true,
        verify_isa: true,
        router_strategy: strategy,
        // Optimize inside compile too, so the trace and counters cover
        // the passes at the chosen level (the display re-run below is
        // separate and untraced).
        opt_level: level,
        // Detail telemetry only when someone asked to see it.
        trace: trace_path.is_some() || counters,
        ..AtomiqueConfig::default()
    };
    // verify_isa already ran the oracle inside compile; re-lower with a
    // display name (the stream attached by compile carries an empty one).
    let program = compile(&circuit, &config)?;
    assert!(program.isa.is_some(), "emit_isa attaches the stream");
    let raw = emit_isa(&program, &config.hardware, "qaoa-regu3-10");
    let (isa, report) = optimize(&raw, level);

    println!("{}", disassemble(&isa));

    let stats = IsaStats::of(&isa);
    println!("--- stream statistics ---");
    println!("instructions      : {}", stats.instructions);
    println!("row/col moves     : {}", stats.moves);
    println!("rydberg pulses    : {}", stats.pulses);
    println!("raman layers      : {}", stats.raman_layers);
    println!("transfers         : {}", stats.transfers);
    println!("two-qubit gates   : {}", stats.two_qubit_gates);
    println!("one-qubit gates   : {}", stats.one_qubit_gates);
    println!(
        "line travel       : {:.1} tracks ({:.2} mm)",
        stats.line_travel_tracks,
        stats.line_travel_um / 1000.0
    );
    println!("max parallel pulse: {}", stats.max_parallel_pulse);

    if level != OptLevel::None {
        println!("--- optimizer ({level:?}) ---");
        println!(
            "instructions      : {} -> {} ({} saved)",
            report.instructions_before,
            report.instructions_after,
            report.instructions_saved()
        );
        println!(
            "line travel       : {:.1} -> {:.1} tracks ({:.1} saved)",
            report.line_travel_before,
            report.line_travel_after,
            report.line_travel_saved()
        );
        println!(
            "passes            : {} pulses merged, {} coalesced, {} retractions cancelled, {} parks elided, {} dead moves",
            report.merged_pulses,
            report.coalesced_moves,
            report.cancelled_retractions,
            report.elided_parks,
            report.dead_moves
        );
    }

    if stage_timings {
        let t = program.timings;
        println!("--- stage timings (compile wall clock) ---");
        println!("transpile         : {:.4}s", t.transpile_s);
        println!("map               : {:.4}s", t.map_s);
        println!("route             : {:.4}s", t.route_s);
        println!("lower             : {:.4}s", t.lower_s);
        println!("opt               : {:.4}s", t.opt_s);
        println!("verify            : {:.4}s", t.verify_s);
        println!(
            "total             : {:.4}s (glue unattributed)",
            program.stats.compile_time_s
        );
    }

    if counters {
        println!("--- telemetry counters ---");
        for (name, value) in program.report.counters() {
            println!("{name:<28}: {value}");
        }
    }

    if let Some(path) = trace_path {
        let rendered = if path.ends_with(".jsonl") {
            trace::export::to_jsonl(&program.report.trace)
        } else {
            trace::export::to_chrome(&program.report.trace)
        };
        std::fs::write(&path, rendered)?;
        println!("trace written     : {path} (load in https://ui.perfetto.dev)");
    }

    let json = codec::to_json(&isa)?;
    let bytes = codec::to_bytes(&isa);
    println!("json stream       : {} bytes", json.len());
    println!("binary stream     : {} bytes", bytes.len());
    assert_eq!(codec::from_json(&json)?, isa);
    assert_eq!(codec::from_bytes(&bytes)?, isa);
    println!("codec round-trip  : lossless");

    check_legality(&isa)?;
    let report = replay_verify(&isa)?;
    println!(
        "oracle            : legal (C1/C2/C3) and faithful ({} 2Q + {} 1Q gates replayed)",
        report.two_qubit_gates, report.one_qubit_gates
    );
    Ok(())
}
