//! Explore how the machine shape affects a workload: array size and AOD
//! count sweeps, as a user would run before committing to a hardware
//! configuration (the paper's Fig. 20 methodology).
//!
//! Run with `cargo run --release --example architecture_explorer`.

use atomique::{compile, AtomiqueConfig};
use raa_arch::{ArrayDims, RaaConfig};
use raa_benchmarks::arbitrary_circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 48-qubit workload with ten two-qubit gates per qubit.
    let circuit = arbitrary_circuit(48, 10.0, 5.0, 1);
    println!(
        "workload: {} qubits, {} two-qubit gates\n",
        circuit.num_qubits(),
        circuit.two_qubit_count()
    );

    println!("-- square array size (two AODs) --");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>10}",
        "arrays", "2Q", "depth", "move (mm)", "fidelity"
    );
    for side in [5, 6, 8, 10, 12] {
        let hw = RaaConfig::square(side, 2)?;
        if hw.total_capacity() < circuit.num_qubits() {
            println!("{:>8} (too small)", format!("{side}x{side}"));
            continue;
        }
        let out = compile(&circuit, &AtomiqueConfig::for_hardware(hw))?;
        println!(
            "{:>8} {:>8} {:>10} {:>12.2} {:>10.4}",
            format!("{side}x{side}"),
            out.stats.two_qubit_gates,
            out.stats.depth,
            out.stats.total_move_distance_mm,
            out.total_fidelity()
        );
    }

    println!("\n-- number of AOD arrays (8x8 each) --");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>10}",
        "AODs", "2Q", "depth", "swaps", "fidelity"
    );
    for aods in 1..=4 {
        let hw = RaaConfig::new(ArrayDims::new(8, 8), vec![ArrayDims::new(8, 8); aods])?;
        let out = compile(&circuit, &AtomiqueConfig::for_hardware(hw))?;
        println!(
            "{:>8} {:>8} {:>10} {:>12} {:>10.4}",
            aods,
            out.stats.two_qubit_gates,
            out.stats.depth,
            out.stats.swaps_inserted,
            out.total_fidelity()
        );
    }
    println!("\nMore partitions cut more interaction edges: fewer SWAPs, fewer gates.");
    Ok(())
}
