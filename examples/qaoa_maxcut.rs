//! QAOA Max-Cut on a 5-regular graph — the workload class the paper's
//! introduction motivates — compiled for every architecture.
//!
//! Run with `cargo run --release --example qaoa_maxcut`.

use atomique::{compile, AtomiqueConfig};
use raa_baselines::{compile_fixed, FixedArchitecture};
use raa_benchmarks::qaoa_regular;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One QAOA layer on a 40-vertex 5-regular graph (the paper's
    // QAOA-regu5-40 benchmark): 100 ZZ interactions.
    let circuit = qaoa_regular(40, 5, 7);
    println!(
        "QAOA-regu5-40: {} qubits, {} ZZ terms\n",
        circuit.num_qubits(),
        circuit.two_qubit_count()
    );
    println!(
        "{:<20} {:>8} {:>8} {:>10}",
        "architecture", "2Q", "depth", "fidelity"
    );

    for arch in FixedArchitecture::ALL {
        let r = compile_fixed(&circuit, arch, 0)?;
        println!(
            "{:<20} {:>8} {:>8} {:>10.4}",
            arch.name(),
            r.two_qubit_gates,
            r.depth,
            r.total_fidelity()
        );
    }

    let program = compile(&circuit, &AtomiqueConfig::default())?;
    println!(
        "{:<20} {:>8} {:>8} {:>10.4}",
        "Atomique (RAA)",
        program.stats.two_qubit_gates,
        program.stats.depth,
        program.total_fidelity()
    );
    println!(
        "\nAtomique moved atoms {:.2} mm across {} stages; {} SWAPs were needed.",
        program.stats.total_move_distance_mm,
        program.stats.num_move_stages,
        program.stats.swaps_inserted
    );
    Ok(())
}
