//! Trotterized quantum simulation under different movement speeds —
//! reproducing the paper's Fig. 18(a) trade-off on a single workload.
//!
//! Run with `cargo run --release --example quantum_simulation`.

use atomique::{compile, AtomiqueConfig};
use raa_benchmarks::qsim_random;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ten random Pauli strings over 20 qubits, each qubit active with
    // probability 0.5 (the paper's QSim-rand-20).
    let circuit = qsim_random(20, 0.5, 10, 42);
    println!(
        "QSim-rand-20: {} two-qubit / {} one-qubit gates\n",
        circuit.two_qubit_count(),
        circuit.one_qubit_count()
    );

    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "t_move", "speed (m/s)", "heating", "loss", "deco", "fidelity"
    );
    for t_move_us in [100.0, 150.0, 200.0, 300.0, 500.0, 700.0, 1000.0] {
        let mut config = AtomiqueConfig::default();
        config.params = config.params.with_t_move(t_move_us * 1e-6);
        let program = compile(&circuit, &config)?;
        println!(
            "{:>8}us {:>12.3} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            t_move_us,
            config.params.avg_move_speed_m_s(),
            program.fidelity.move_heating,
            program.fidelity.move_loss,
            program.fidelity.move_decoherence,
            program.total_fidelity()
        );
    }
    println!("\nFast moves heat the atoms (and eventually lose them);");
    println!("slow moves decohere the register. The optimum sits near 300 us,");
    println!("matching the paper's Fig. 18(a).");
    Ok(())
}
