//! Quickstart: compile a GHZ-state circuit for a reconfigurable atom
//! array and inspect the movement schedule.
//!
//! Run with `cargo run --release --example quickstart`.

use atomique::{compile, AtomiqueConfig, StageKind};
use raa_benchmarks::ghz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-qubit GHZ state: H + a CX chain.
    let circuit = ghz(12);
    println!(
        "input: {} qubits, {} two-qubit gates",
        circuit.num_qubits(),
        circuit.two_qubit_count()
    );

    // The paper's default machine: 10×10 SLM plus two 10×10 AODs.
    let config = AtomiqueConfig::default();
    let program = compile(&circuit, &config)?;

    println!("\ncompiled program:");
    println!("  two-qubit gates : {}", program.stats.two_qubit_gates);
    println!("  depth (2Q stages): {}", program.stats.depth);
    println!("  SWAPs inserted  : {}", program.stats.swaps_inserted);
    println!("  movement stages : {}", program.stats.num_move_stages);
    println!(
        "  total move dist : {:.3} mm",
        program.stats.total_move_distance_mm
    );
    println!(
        "  execution time  : {:.2} ms",
        program.stats.execution_time_s * 1e3
    );
    println!("  est. fidelity   : {:.4}", program.total_fidelity());

    println!("\nfidelity breakdown (-log F):");
    for (source, v) in program.fidelity.neg_log_components() {
        println!("  {source:<18} {v:.5}");
    }

    println!("\nfirst stages of the schedule:");
    for (i, stage) in program.stages.iter().take(8).enumerate() {
        match stage.kind {
            StageKind::OneQubit => {
                println!(
                    "  {i}: Raman layer, {} one-qubit gates",
                    stage.one_qubit_gates.len()
                )
            }
            StageKind::Movement => println!(
                "  {i}: move {} rows/cols, Rydberg pulse fires {} gates",
                stage.moves.len(),
                stage.gate_pairs.len()
            ),
            StageKind::Reset => println!("  {i}: reset (AODs re-home)"),
            StageKind::TransferAssisted => println!("  {i}: transfer-assisted gate"),
            StageKind::Cooling => println!("  {i}: cooling swap for AOD{:?}", stage.cooled_aod),
        }
    }
    Ok(())
}
