//! The `raa-serve` command-line front.
//!
//! ```text
//! raa-serve serve [--addr 127.0.0.1:7417] [--workers N] [--queue N] [--cache N]
//!                 [--deadline-ms N] [--drain-ms N]
//! raa-serve batch [--opt 0|1|2] [--strategy sequential|layered] [--threads N]
//!                 [--workers N] [--out DIR] circuit.qasm [more.qasm ...]
//! ```
//!
//! `serve` binds the HTTP/JSON front and runs until SIGTERM/SIGINT,
//! then drains: the listener stops accepting first, in-flight requests
//! finish (bounded by `--drain-ms`, default 10 s), and the process
//! exits 0 on a clean drain. `batch` drives the same engine
//! in-process: it compiles each OpenQASM file and writes the verified
//! binary ISA stream next to it (or into `--out DIR`) as `<stem>.isa`.
//!
//! Both commands honor `RAA_FAULT_SPEC` (see `docs/ROBUSTNESS.md`): a
//! valid spec arms deterministic fault injection before any work runs;
//! a malformed one is a startup error, not a silent no-op.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use atomique::OptLevel;
use atomique::RouterStrategy;
use raa_circuit::qasm;
use raa_serve::engine::{Engine, Job, ServeConfig};
use raa_serve::http;

fn usage() -> ExitCode {
    eprintln!(
        "usage: raa-serve serve [--addr A] [--workers N] [--queue N] [--cache N] \
         [--deadline-ms N] [--drain-ms N]\n\
         \x20      raa-serve batch [--opt N] [--strategy S] [--threads N] [--workers N] \
         [--out DIR] FILE..."
    );
    ExitCode::from(2)
}

/// Set by the signal handler; polled by the serve loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs SIGTERM/SIGINT handlers that flip [`SHUTDOWN`]. Uses the
/// libc `signal(2)` std already links — storing to a static atomic is
/// async-signal-safe, and no new dependency is pulled in.
#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Parses `--flag value` into `out`; returns whether `arg` consumed
/// the flag.
fn flag_value<T: std::str::FromStr>(
    args: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
    arg: &str,
    name: &str,
    out: &mut T,
) -> Result<bool, String> {
    if arg != name {
        return Ok(false);
    }
    let value = args.next().ok_or_else(|| format!("{name} needs a value"))?;
    *out = value
        .parse()
        .map_err(|_| format!("bad value `{value}` for {name}"))?;
    Ok(true)
}

fn cmd_serve(args: Vec<String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7417".to_string();
    let mut cfg = ServeConfig::default();
    let mut deadline_ms = 0u64;
    let mut drain_ms = 10_000u64;
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if flag_value(&mut args, &arg, "--addr", &mut addr)?
            || flag_value(&mut args, &arg, "--workers", &mut cfg.workers)?
            || flag_value(&mut args, &arg, "--queue", &mut cfg.queue_capacity)?
            || flag_value(&mut args, &arg, "--cache", &mut cfg.cache_capacity)?
            || flag_value(&mut args, &arg, "--deadline-ms", &mut deadline_ms)?
            || flag_value(&mut args, &arg, "--drain-ms", &mut drain_ms)?
        {
            continue;
        }
        return Err(format!("unknown argument `{arg}`"));
    }
    if deadline_ms > 0 {
        cfg.default_deadline_ms = Some(deadline_ms);
    }
    install_signal_handlers();
    let engine = Arc::new(Engine::new(cfg));
    let server = http::serve(engine.clone(), &addr).map_err(|e| format!("bind {addr}: {e}"))?;
    println!("raa-serve listening on http://{}", server.addr());
    // Serve until SIGTERM/SIGINT, then drain: engine first (new
    // batches get 503), then the listener, then wait out in-flight
    // connections up to the drain deadline.
    while !SHUTDOWN.load(Ordering::Acquire) {
        std::thread::park_timeout(Duration::from_millis(50));
    }
    eprintln!("raa-serve: shutdown signal received, draining");
    engine.begin_drain();
    let drained = server.drain(Duration::from_millis(drain_ms));
    if drained {
        eprintln!("raa-serve: drained cleanly");
        Ok(())
    } else {
        Err("drain deadline elapsed with connections still in flight".into())
    }
}

fn cmd_batch(args: Vec<String>) -> Result<(), String> {
    let mut cfg = ServeConfig::default();
    let mut opt = 0usize;
    let mut strategy = "sequential".to_string();
    let mut threads = 1usize;
    let mut out_dir = String::new();
    let mut files: Vec<String> = Vec::new();
    let mut args = args.into_iter().peekable();
    while let Some(arg) = args.next() {
        if flag_value(&mut args, &arg, "--opt", &mut opt)?
            || flag_value(&mut args, &arg, "--strategy", &mut strategy)?
            || flag_value(&mut args, &arg, "--threads", &mut threads)?
            || flag_value(&mut args, &arg, "--workers", &mut cfg.workers)?
            || flag_value(&mut args, &arg, "--out", &mut out_dir)?
        {
            continue;
        }
        if arg.starts_with('-') {
            return Err(format!("unknown argument `{arg}`"));
        }
        files.push(arg);
    }
    if files.is_empty() {
        return Err("batch needs at least one QASM file".into());
    }
    cfg.base.opt_level = match opt {
        0 => OptLevel::None,
        1 => OptLevel::Basic,
        2 => OptLevel::Aggressive,
        other => return Err(format!("bad --opt {other} (expected 0, 1 or 2)")),
    };
    cfg.base.router_strategy = match strategy.as_str() {
        "sequential" => RouterStrategy::Sequential,
        "layered" => RouterStrategy::Layered,
        other => return Err(format!("bad --strategy {other}")),
    };
    cfg.base.threads =
        atomique::parse_threads(&threads.to_string()).map_err(|e| format!("bad --threads: {e}"))?;

    let mut jobs = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("read {file}: {e}"))?;
        let circuit = qasm::from_qasm(&text).map_err(|e| format!("parse {file}: {e}"))?;
        jobs.push(Job {
            name: file.clone(),
            circuit,
        });
    }

    let engine = Engine::new(cfg);
    let outcomes = engine
        .submit(engine.base(), &jobs)
        .map_err(|e| e.to_string())?;
    let mut failed = false;
    for outcome in &outcomes {
        match &outcome.result {
            Ok(result) => {
                let stem = std::path::Path::new(&outcome.name)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "out".into());
                let target = if out_dir.is_empty() {
                    std::path::Path::new(&outcome.name).with_extension("isa")
                } else {
                    std::path::Path::new(&out_dir).join(format!("{stem}.isa"))
                };
                std::fs::write(&target, &result.entry.isa_bytes)
                    .map_err(|e| format!("write {}: {e}", target.display()))?;
                println!(
                    "{}: {} bytes -> {} ({}, fidelity {:.4}, {:.2}s)",
                    outcome.name,
                    result.entry.isa_bytes.len(),
                    target.display(),
                    result.status.as_str(),
                    result.entry.fidelity,
                    result.entry.stats.compile_time_s,
                );
            }
            Err(e) => {
                eprintln!("{}: error: {e}", outcome.name);
                failed = true;
            }
        }
    }
    let stats = engine.stats();
    println!(
        "batch done: {} compiled, {} hits, {} coalesced",
        stats.compiles, stats.hits, stats.coalesced
    );
    if failed {
        Err("some jobs failed".into())
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    // Arm deterministic fault injection before any work runs; a
    // malformed spec must fail loudly, not silently serve unfaulted.
    match raa_fault::configure_from_env() {
        Ok(true) => eprintln!("raa-serve: RAA_FAULT_SPEC armed"),
        Ok(false) => {}
        Err(e) => {
            eprintln!("raa-serve: {e}");
            return ExitCode::from(2);
        }
    }
    let cmd = args.remove(0);
    let run = match cmd.as_str() {
        "serve" => cmd_serve(args),
        "batch" => cmd_batch(args),
        _ => return usage(),
    };
    match run {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("raa-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
