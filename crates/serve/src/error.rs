//! The service's error taxonomy. Every failure a client can observe is
//! one of these variants; [`ServeError::kind`] is the stable
//! machine-readable tag the JSON front puts in `error.kind`.

use raa_circuit::qasm::QasmError;
use raa_circuit::CircuitError;
use raa_isa::DecodeError;

/// Anything that can go wrong between accepting a request and handing
/// back verified ISA bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded job queue cannot admit the batch; the client should
    /// back off and retry (HTTP 429).
    QueueFull {
        /// Jobs in flight when the batch arrived.
        depth: usize,
        /// The configured queue bound.
        capacity: usize,
    },
    /// The request document is well-formed JSON but violates the API
    /// shape (missing fields, bad override values, …).
    BadRequest {
        /// What was wrong.
        message: String,
    },
    /// A job's `qasm` source failed to parse.
    Qasm(QasmError),
    /// A job's gate list was structurally valid but built an invalid
    /// circuit (e.g. a gate index past `num_qubits`).
    Circuit(CircuitError),
    /// The request body (or an embedded gate list) failed to decode;
    /// carries the byte offset via [`DecodeError`].
    Decode(DecodeError),
    /// The compiler itself rejected the job.
    Compile {
        /// The rendered [`atomique::CompileError`].
        message: String,
    },
}

impl ServeError {
    /// The stable machine-readable tag for this error class, as used in
    /// the JSON `error.kind` field and documented in `docs/SERVICE.md`.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::Qasm(_) => "qasm",
            ServeError::Circuit(_) => "circuit",
            ServeError::Decode(_) => "decode",
            ServeError::Compile { .. } => "compile",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { depth, capacity } => write!(
                f,
                "job queue full ({depth} in flight, capacity {capacity}); retry later"
            ),
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::Qasm(e) => write!(f, "qasm error: {e}"),
            ServeError::Circuit(e) => write!(f, "circuit error: {e}"),
            ServeError::Decode(e) => write!(f, "decode error: {e}"),
            ServeError::Compile { message } => write!(f, "compile error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QasmError> for ServeError {
    fn from(e: QasmError) -> Self {
        ServeError::Qasm(e)
    }
}

impl From<CircuitError> for ServeError {
    fn from(e: CircuitError) -> Self {
        ServeError::Circuit(e)
    }
}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> Self {
        ServeError::Decode(e)
    }
}
