//! The service's error taxonomy. Every failure a client can observe is
//! one of these variants; [`ServeError::kind`] is the stable
//! machine-readable tag the JSON front puts in `error.kind`.

use raa_circuit::qasm::QasmError;
use raa_circuit::CircuitError;
use raa_isa::DecodeError;

/// Anything that can go wrong between accepting a request and handing
/// back verified ISA bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded job queue cannot admit the batch; the client should
    /// back off and retry (HTTP 429).
    QueueFull {
        /// Jobs in flight when the batch arrived.
        depth: usize,
        /// The configured queue bound.
        capacity: usize,
    },
    /// The request document is well-formed JSON but violates the API
    /// shape (missing fields, bad override values, …).
    BadRequest {
        /// What was wrong.
        message: String,
    },
    /// A job's `qasm` source failed to parse.
    Qasm(QasmError),
    /// A job's gate list was structurally valid but built an invalid
    /// circuit (e.g. a gate index past `num_qubits`).
    Circuit(CircuitError),
    /// The request body (or an embedded gate list) failed to decode;
    /// carries the byte offset via [`DecodeError`].
    Decode(DecodeError),
    /// The compiler itself rejected the job.
    Compile {
        /// The rendered [`atomique::CompileError`].
        message: String,
    },
    /// The job blew its per-attempt compile deadline on the primary
    /// config and on every degradation-ladder rung (HTTP 504).
    DeadlineExceeded {
        /// The stage boundary where the final attempt overran.
        stage: String,
    },
    /// The circuit breaker is open after repeated compile failures; the
    /// engine is shedding load (HTTP 503 with `Retry-After`).
    BreakerOpen {
        /// How long the client should wait before retrying,
        /// milliseconds (the breaker's remaining cooldown).
        retry_after_ms: u64,
    },
    /// The engine is draining for shutdown and no longer admits new
    /// batches (HTTP 503); in-flight jobs still complete.
    Draining,
}

impl ServeError {
    /// The stable machine-readable tag for this error class, as used in
    /// the JSON `error.kind` field and documented in `docs/SERVICE.md`.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::Qasm(_) => "qasm",
            ServeError::Circuit(_) => "circuit",
            ServeError::Decode(_) => "decode",
            ServeError::Compile { .. } => "compile",
            ServeError::DeadlineExceeded { .. } => "deadline",
            ServeError::BreakerOpen { .. } => "breaker_open",
            ServeError::Draining => "draining",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { depth, capacity } => write!(
                f,
                "job queue full ({depth} in flight, capacity {capacity}); retry later"
            ),
            ServeError::BadRequest { message } => write!(f, "bad request: {message}"),
            ServeError::Qasm(e) => write!(f, "qasm error: {e}"),
            ServeError::Circuit(e) => write!(f, "circuit error: {e}"),
            ServeError::Decode(e) => write!(f, "decode error: {e}"),
            ServeError::Compile { message } => write!(f, "compile error: {message}"),
            ServeError::DeadlineExceeded { stage } => {
                write!(
                    f,
                    "compile deadline exceeded (last overrun at stage `{stage}`)"
                )
            }
            ServeError::BreakerOpen { retry_after_ms } => write!(
                f,
                "circuit breaker open after repeated failures; retry in {retry_after_ms} ms"
            ),
            ServeError::Draining => {
                write!(f, "service draining for shutdown; not accepting new work")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QasmError> for ServeError {
    fn from(e: QasmError) -> Self {
        ServeError::Qasm(e)
    }
}

impl From<CircuitError> for ServeError {
    fn from(e: CircuitError) -> Self {
        ServeError::Circuit(e)
    }
}

impl From<DecodeError> for ServeError {
    fn from(e: DecodeError) -> Self {
        ServeError::Decode(e)
    }
}
