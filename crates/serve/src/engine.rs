//! The batch-compilation engine: a bounded admission queue, a
//! single-flight compile cache keyed on circuit hash × config
//! fingerprint, and worker fan-out over [`raa_par::WorkPool`].
//!
//! The engine is transport-agnostic — the HTTP front
//! ([`crate::http`]) and the CLI both drive [`Engine::submit`]
//! directly, so every invariant (backpressure, single-flight, LRU
//! eviction, telemetry counters) is testable without a socket.
//!
//! # Resilience
//!
//! Every leader compile runs through a resilience ladder
//! (`docs/ROBUSTNESS.md`): a per-attempt wall-clock deadline enforced
//! at stage boundaries, bounded retry-with-backoff for transient
//! failures (panics and `raa-fault` injections), then a degradation
//! ladder that retries on progressively cheaper configs
//! (Layered→Sequential router, `-O2`→`-O1`→`-O0`, threads→1) and
//! labels the result degraded. Degraded results are served and shared
//! with coalesced followers but never cached, so later identical
//! requests retry the primary config. A circuit breaker sheds whole
//! batches after repeated terminal failures, and [`Engine::begin_drain`]
//! rejects new batches while in-flight ones finish.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use atomique::{AtomiqueConfig, CompileError, CompileLimits, CompileStats, StageTimings};
use raa_circuit::Circuit;
use raa_isa::codec;
use raa_par::WorkPool;
use raa_trace::Counter;

use crate::ServeError;

static HIT: Counter = Counter::new("serve.cache.hit");
static MISS: Counter = Counter::new("serve.cache.miss");
static COALESCED: Counter = Counter::new("serve.cache.coalesced");
static COMPILE: Counter = Counter::new("serve.compile");
static REJECT: Counter = Counter::new("serve.queue.reject");
static EVICT: Counter = Counter::new("serve.cache.evict");
static RETRY: Counter = Counter::new("serve.retry");
static DEGRADED: Counter = Counter::new("serve.degraded");
static DEADLINE: Counter = Counter::new("serve.deadline_exceeded");
static BREAKER_OPEN: Counter = Counter::new("serve.breaker.open");
static SHED: Counter = Counter::new("serve.breaker.shed");

/// Sizing knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads compiling jobs concurrently (the inter-job
    /// fan-out; each compile may additionally use
    /// [`AtomiqueConfig::threads`] internally).
    pub workers: usize,
    /// Maximum jobs admitted at once across all batches; a batch that
    /// would push the in-flight count past this bound is rejected
    /// whole with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum cached compile results; least-recently-used entries are
    /// evicted past this bound. `0` disables caching.
    pub cache_capacity: usize,
    /// Maximum accepted HTTP request-body size, bytes.
    pub max_body_bytes: usize,
    /// The compilation config jobs start from; per-request overrides
    /// are applied on top. `emit_isa` and `verify_isa` are forced on —
    /// the service only ever returns verified ISA streams.
    pub base: AtomiqueConfig,
    /// Extra attempts after a transient compile failure (a caught
    /// panic or an injected fault) before the degradation ladder is
    /// consulted. `0` disables retries.
    pub max_retries: u32,
    /// Backoff before the first retry, milliseconds; doubles per
    /// attempt.
    pub retry_backoff_ms: u64,
    /// Whether exhausted/timed-out compiles fall down the degradation
    /// ladder (cheaper router strategy, lower opt level, one thread)
    /// instead of failing outright.
    pub degrade: bool,
    /// Per-attempt compile deadline applied when a request does not
    /// carry its own `deadline_ms`. `None` means unlimited.
    pub default_deadline_ms: Option<u64>,
    /// Consecutive terminal leader failures that open the circuit
    /// breaker. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker sheds load before letting one probe
    /// batch through, milliseconds.
    pub breaker_cooldown_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            max_body_bytes: 16 << 20,
            base: AtomiqueConfig::default(),
            max_retries: 2,
            retry_backoff_ms: 10,
            degrade: true,
            default_deadline_ms: None,
            breaker_threshold: 8,
            breaker_cooldown_ms: 1_000,
        }
    }
}

/// How a job's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the compile cache without compiling.
    Hit,
    /// Compiled by this batch (the single-flight leader).
    Miss,
    /// Waited on an identical in-flight compile instead of repeating
    /// it.
    Coalesced,
}

impl CacheStatus {
    /// The wire name used in JSON responses (`"hit"` / `"miss"` /
    /// `"coalesced"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

/// One cached compile result: the verified ISA stream (binary-codec
/// bytes) plus the telemetry captured while producing it.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// `raa_isa::codec::to_bytes` of the verified stream.
    pub isa_bytes: Vec<u8>,
    /// Per-stage wall-clock breakdown of the original compile.
    pub timings: StageTimings,
    /// Estimated total fidelity.
    pub fidelity: f64,
    /// The compile's summary statistics.
    pub stats: CompileStats,
    /// Every telemetry counter the compile incremented (detail tracing
    /// is forced on for served compiles), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `None` for a primary-config result; `Some(label)` when the
    /// result came from a degradation-ladder rung, naming the
    /// cumulative config diff (e.g. `"strategy=sequential,opt=1"`).
    /// Degraded entries are served but never cached.
    pub degraded: Option<String>,
}

/// One named compilation job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Client-chosen label, echoed back in the response.
    pub name: String,
    /// The circuit to compile.
    pub circuit: Circuit,
}

/// A job's result: where it came from and the cached payload.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Hit / miss / coalesced.
    pub status: CacheStatus,
    /// The (possibly shared) compile result.
    pub entry: Arc<CacheEntry>,
}

/// One job's outcome within a batch. Per-job failures (compile errors)
/// land here; batch-level failures (queue full) fail
/// [`Engine::submit`] itself.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's `name`, echoed from the request.
    pub name: String,
    /// The result or the per-job error.
    pub result: Result<JobResult, ServeError>,
}

/// A monotonic snapshot of the engine's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Jobs served from cache.
    pub hits: u64,
    /// Jobs that led a compile.
    pub misses: u64,
    /// Jobs that waited on an identical in-flight compile.
    pub coalesced: u64,
    /// Compile attempts actually executed (first attempts plus retries
    /// plus ladder rungs; equals `misses` when nothing fails).
    pub compiles: u64,
    /// Jobs rejected by queue backpressure.
    pub rejected: u64,
    /// Cache entries evicted by the LRU bound.
    pub evictions: u64,
    /// High-water mark of concurrently admitted jobs.
    pub max_queue_depth: u64,
    /// Same-config retry attempts after transient failures.
    pub retries: u64,
    /// Jobs answered from a degradation-ladder rung.
    pub degraded: u64,
    /// Jobs that exhausted every rung within their deadline budget.
    pub deadline_exceeded: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Jobs shed while the breaker was open (or mid-probe).
    pub shed: u64,
    /// The breaker's current position.
    pub breaker_state: BreakerState,
    /// Whether the engine is draining for shutdown.
    pub draining: bool,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Jobs currently admitted.
    pub queue_depth: usize,
}

/// A snapshot of the circuit breaker's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: batches flow normally.
    #[default]
    Closed,
    /// Tripped: batches are shed until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe batch is in flight, everything else
    /// is still shed.
    HalfOpen,
}

impl BreakerState {
    /// The wire name used in `/v1/stats` (`"closed"` / `"open"` /
    /// `"half_open"`).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

type Key = (u64, u64);

/// The single-flight rendezvous for one cache key: the leader fills
/// `slot` and notifies; followers wait instead of recompiling.
struct Flight {
    slot: Mutex<Option<Result<Arc<CacheEntry>, ServeError>>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<Arc<CacheEntry>, ServeError>) {
        *self.slot.lock().expect("flight slot poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Arc<CacheEntry>, ServeError> {
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.ready.wait(slot).expect("flight slot poisoned");
        }
    }
}

struct State {
    cache: HashMap<Key, Arc<CacheEntry>>,
    /// Keys of `cache` in recency order: front = coldest, back =
    /// hottest.
    lru: Vec<Key>,
    in_flight: HashMap<Key, Arc<Flight>>,
}

#[derive(Default)]
struct Tallies {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    compiles: AtomicU64,
    rejected: AtomicU64,
    evictions: AtomicU64,
    max_depth: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    deadline_exceeded: AtomicU64,
    breaker_opens: AtomicU64,
    shed: AtomicU64,
}

/// The circuit breaker: counts consecutive terminal leader failures
/// and sheds whole batches once they pass the threshold. Classic
/// three-state machine — Closed (healthy), Open (shedding until the
/// cooldown elapses), HalfOpen (exactly one probe batch in flight;
/// its outcome closes or re-opens the breaker).
enum BreakerInner {
    Closed {
        consecutive: u32,
    },
    Open {
        since: Instant,
    },
    HalfOpen {
        /// Whether the single probe slot is taken.
        probing: bool,
    },
}

struct Breaker {
    inner: Mutex<BreakerInner>,
    threshold: u32,
    cooldown: Duration,
}

/// What the breaker decided about an arriving batch.
enum BreakerAdmit {
    /// Proceed normally.
    Allow,
    /// Shed: the breaker is open (or a probe is already in flight);
    /// retry after the given delay.
    Shed { retry_after_ms: u64 },
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            inner: Mutex::new(BreakerInner::Closed { consecutive: 0 }),
            threshold,
            cooldown,
        }
    }

    fn lock(&self) -> MutexGuard<'_, BreakerInner> {
        // The breaker must keep working even if a panic unwound through
        // a hold: every transition below restores a coherent state
        // before releasing, so recovering a poisoned lock is safe.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Gate for an arriving batch.
    fn admit(&self) -> BreakerAdmit {
        if self.threshold == 0 {
            return BreakerAdmit::Allow;
        }
        let mut inner = self.lock();
        match *inner {
            BreakerInner::Closed { .. } => BreakerAdmit::Allow,
            BreakerInner::Open { since } => {
                let elapsed = since.elapsed();
                if elapsed >= self.cooldown {
                    *inner = BreakerInner::HalfOpen { probing: true };
                    BreakerAdmit::Allow
                } else {
                    BreakerAdmit::Shed {
                        retry_after_ms: (self.cooldown - elapsed).as_millis().max(1) as u64,
                    }
                }
            }
            BreakerInner::HalfOpen { probing: false } => {
                *inner = BreakerInner::HalfOpen { probing: true };
                BreakerAdmit::Allow
            }
            BreakerInner::HalfOpen { probing: true } => BreakerAdmit::Shed {
                retry_after_ms: self.cooldown.as_millis().max(1) as u64,
            },
        }
    }

    /// Records one terminal leader success; closes a half-open breaker.
    fn record_success(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.lock();
        match *inner {
            BreakerInner::Closed {
                ref mut consecutive,
            } => *consecutive = 0,
            BreakerInner::HalfOpen { .. } => *inner = BreakerInner::Closed { consecutive: 0 },
            BreakerInner::Open { .. } => {}
        }
    }

    /// Records one terminal leader failure. Returns `true` when this
    /// transition tripped the breaker open.
    fn record_failure(&self) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let mut inner = self.lock();
        match *inner {
            BreakerInner::Closed {
                ref mut consecutive,
            } => {
                *consecutive += 1;
                if *consecutive >= self.threshold {
                    *inner = BreakerInner::Open {
                        since: Instant::now(),
                    };
                    return true;
                }
                false
            }
            BreakerInner::HalfOpen { .. } => {
                *inner = BreakerInner::Open {
                    since: Instant::now(),
                };
                true
            }
            BreakerInner::Open { .. } => false,
        }
    }

    /// Releases the probe slot when a probe batch ends with no leader
    /// outcomes at all (pure hits / coalesced followers): no evidence
    /// either way, so the next batch probes again.
    fn release_probe(&self) {
        if self.threshold == 0 {
            return;
        }
        let mut inner = self.lock();
        if let BreakerInner::HalfOpen { ref mut probing } = *inner {
            *probing = false;
        }
    }

    fn state(&self) -> BreakerState {
        if self.threshold == 0 {
            return BreakerState::Closed;
        }
        match *self.lock() {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::Open { .. } => BreakerState::Open,
            BreakerInner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }
}

/// Decrements the admission count when a batch leaves the engine,
/// whatever path it took out.
struct AdmitGuard<'a> {
    depth: &'a AtomicUsize,
    n: usize,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.depth.fetch_sub(self.n, Ordering::AcqRel);
    }
}

/// Unwind protection for the window between registering lead flights
/// and publishing their results: if [`Engine::submit`] panics in that
/// window (a worker-pool bug, a poisoned publish), every still-
/// registered lead flight gets an error published and is removed from
/// `in_flight`, so followers — and every future identical job — fail
/// fast instead of blocking forever on an abandoned flight.
struct LeadGuard<'a> {
    engine: &'a Engine,
    keys: Vec<Key>,
    armed: bool,
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Recover the state even if the panic poisoned the lock —
        // in_flight removal must happen regardless.
        let mut st = self
            .engine
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for key in &self.keys {
            if let Some(flight) = st.in_flight.remove(key) {
                flight.publish(Err(ServeError::Compile {
                    message: "compile abandoned: the submitting batch panicked".into(),
                }));
            }
        }
    }
}

/// What [`Engine::submit`] decided to do with one job, in batch order.
enum Plan {
    Ready(Arc<CacheEntry>),
    Lead(Arc<Flight>),
    Follow(Arc<Flight>),
}

/// The batch-compilation engine. Cheap to share behind an [`Arc`];
/// every method takes `&self`.
pub struct Engine {
    base: AtomiqueConfig,
    queue_capacity: usize,
    cache_capacity: usize,
    pool: WorkPool,
    state: Mutex<State>,
    depth: AtomicUsize,
    tallies: Tallies,
    max_body_bytes: usize,
    max_retries: u32,
    retry_backoff: Duration,
    degrade: bool,
    default_deadline_ms: Option<u64>,
    breaker: Breaker,
    draining: AtomicBool,
}

impl Engine {
    /// Builds an engine. The base config's `emit_isa`, `verify_isa`
    /// and `trace` flags are forced on (the service only returns
    /// verified streams, with per-request telemetry).
    pub fn new(config: ServeConfig) -> Engine {
        Engine {
            base: force_serving_flags(config.base),
            queue_capacity: config.queue_capacity.max(1),
            cache_capacity: config.cache_capacity,
            pool: WorkPool::new(config.workers),
            state: Mutex::new(State {
                cache: HashMap::new(),
                lru: Vec::new(),
                in_flight: HashMap::new(),
            }),
            depth: AtomicUsize::new(0),
            tallies: Tallies::default(),
            max_body_bytes: config.max_body_bytes,
            max_retries: config.max_retries,
            retry_backoff: Duration::from_millis(config.retry_backoff_ms),
            degrade: config.degrade,
            default_deadline_ms: config.default_deadline_ms,
            breaker: Breaker::new(
                config.breaker_threshold,
                Duration::from_millis(config.breaker_cooldown_ms.max(1)),
            ),
            draining: AtomicBool::new(false),
        }
    }

    /// Stops admitting new batches; in-flight jobs run to completion.
    /// [`Engine::submit`] fails with [`ServeError::Draining`] from this
    /// point on. Irreversible for the engine's lifetime (drains exist
    /// only on the way to shutdown).
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// Whether [`Engine::begin_drain`] has been called.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// The engine state, recovering from lock poisoning: every section
    /// that holds this lock restores the cache/LRU/in-flight invariants
    /// before any operation that could panic (fault points are placed
    /// outside it), so a poisoned lock only means a panic unwound
    /// *past* a release point — continuing is safe, and wedging every
    /// future request on `PoisonError` would trade a survived fault for
    /// a total outage.
    fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The effective base config (with the serving flags forced on);
    /// per-request overrides are applied on top of this.
    pub fn base(&self) -> &AtomiqueConfig {
        &self.base
    }

    /// The HTTP request-body cap, bytes.
    pub fn max_body_bytes(&self) -> usize {
        self.max_body_bytes
    }

    /// Compiles a batch of jobs under `config` (usually
    /// [`Engine::base`] with request overrides applied).
    ///
    /// Jobs whose `(circuit, config)` pair is cached are served
    /// without compiling; identical uncached jobs — within this batch
    /// or racing across batches — compile exactly once (single
    /// flight), with every duplicate waiting on the leader. Results
    /// come back in batch order.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] if admitting the whole batch would
    /// exceed the queue bound — no job in the batch runs;
    /// [`ServeError::Draining`] after [`Engine::begin_drain`];
    /// [`ServeError::BreakerOpen`] while the circuit breaker sheds
    /// load. Per-job compile failures are reported inside the returned
    /// outcomes (and are never cached).
    pub fn submit(
        &self,
        config: &AtomiqueConfig,
        jobs: &[Job],
    ) -> Result<Vec<JobOutcome>, ServeError> {
        self.submit_with(config, jobs, None)
    }

    /// [`Engine::submit`] with an explicit per-attempt compile deadline
    /// (milliseconds); `None` falls back to the engine's configured
    /// default. Each compile attempt — the primary and every
    /// retry/ladder rung — gets a fresh budget of `deadline_ms`,
    /// checked at stage boundaries.
    ///
    /// # Errors
    ///
    /// As [`Engine::submit`]; jobs that overrun every rung report
    /// [`ServeError::DeadlineExceeded`] in their outcome.
    pub fn submit_with(
        &self,
        config: &AtomiqueConfig,
        jobs: &[Job],
        deadline_ms: Option<u64>,
    ) -> Result<Vec<JobOutcome>, ServeError> {
        let n = jobs.len();
        if self.draining() {
            return Err(ServeError::Draining);
        }
        let probe = match self.breaker.admit() {
            BreakerAdmit::Allow => matches!(self.breaker.state(), BreakerState::HalfOpen),
            BreakerAdmit::Shed { retry_after_ms } => {
                SHED.add(n as u64);
                self.tallies.shed.fetch_add(n as u64, Ordering::Relaxed);
                return Err(ServeError::BreakerOpen { retry_after_ms });
            }
        };
        let deadline_ms = deadline_ms.or(self.default_deadline_ms);
        let _guard = match self.admit(n) {
            Ok(guard) => guard,
            Err(e) => {
                // A probe batch bounced by the queue is no evidence
                // about compile health — free the slot for the next one.
                if probe {
                    self.breaker.release_probe();
                }
                return Err(e);
            }
        };

        let cfg = force_serving_flags(config.clone());
        let fp = cfg.fingerprint();

        // Classify each job under one lock pass. A duplicate inside
        // the batch sees the leader's flight already in `in_flight`
        // and becomes a follower, exactly like a cross-batch race.
        let mut plans: Vec<Plan> = Vec::with_capacity(n);
        let mut leads: Vec<(usize, Key)> = Vec::new();
        {
            let mut st = self.state();
            for (i, job) in jobs.iter().enumerate() {
                let key = (job.circuit.stable_hash(), fp);
                if let Some(entry) = st.cache.get(&key).cloned() {
                    touch(&mut st.lru, key);
                    HIT.incr();
                    self.tallies.hits.fetch_add(1, Ordering::Relaxed);
                    plans.push(Plan::Ready(entry));
                } else if let Some(flight) = st.in_flight.get(&key).cloned() {
                    COALESCED.incr();
                    self.tallies.coalesced.fetch_add(1, Ordering::Relaxed);
                    plans.push(Plan::Follow(flight));
                } else {
                    let flight = Arc::new(Flight::new());
                    st.in_flight.insert(key, flight.clone());
                    MISS.incr();
                    self.tallies.misses.fetch_add(1, Ordering::Relaxed);
                    leads.push((i, key));
                    plans.push(Plan::Lead(flight));
                }
            }
        }

        // Compile the leaders, fanned out over the worker pool.
        // `WorkPool::map` links workers into this thread's trace
        // session, so `serve.compile` (and the compiler's own
        // counters) land with the submitter.
        let mut lead_guard = LeadGuard {
            engine: self,
            keys: leads.iter().map(|&(_, key)| key).collect(),
            armed: true,
        };
        let results = self.pool.map("par.serve", &leads, |_, &(i, _)| {
            self.compile_resilient(&jobs[i].circuit, &cfg, deadline_ms)
        });

        // Feed the breaker from terminal leader outcomes (followers and
        // hits carry no new evidence about compile health).
        for result in &results {
            match result {
                Ok(_) => self.breaker.record_success(),
                Err(_) => {
                    if self.breaker.record_failure() {
                        BREAKER_OPEN.incr();
                        self.tallies.breaker_opens.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        if probe && leads.is_empty() {
            self.breaker.release_probe();
        }

        // The publish seam: a panic here (fault-injected or real) lands
        // *before* the state lock, so LeadGuard can still recover and
        // fail the flights fast instead of wedging followers.
        match raa_fault::evaluate("serve.publish") {
            raa_fault::Action::None | raa_fault::Action::Deadline => {}
            raa_fault::Action::Delay(d) => std::thread::sleep(d),
            raa_fault::Action::Error | raa_fault::Action::Panic => {
                panic!("injected fault at serve.publish")
            }
        }

        // Publish: fill caches, resolve flights, wake followers.
        // Degraded results are shared with this key's followers but
        // never cached — a later identical request should retry the
        // primary config.
        {
            let mut st = self.state();
            for (&(_, key), result) in leads.iter().zip(results) {
                if let Ok(entry) = &result {
                    if self.cache_capacity > 0 && entry.degraded.is_none() {
                        st.cache.insert(key, entry.clone());
                        st.lru.push(key);
                        while st.cache.len() > self.cache_capacity {
                            let coldest = st.lru.remove(0);
                            st.cache.remove(&coldest);
                            EVICT.incr();
                            self.tallies.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let flight = st
                    .in_flight
                    .remove(&key)
                    .expect("single-flight entry vanished");
                flight.publish(result);
            }
        }
        lead_guard.armed = false;

        Ok(jobs
            .iter()
            .zip(plans)
            .map(|(job, plan)| {
                let result = match plan {
                    Plan::Ready(entry) => Ok(JobResult {
                        status: CacheStatus::Hit,
                        entry,
                    }),
                    Plan::Lead(flight) => flight.wait().map(|entry| JobResult {
                        status: CacheStatus::Miss,
                        entry,
                    }),
                    Plan::Follow(flight) => flight.wait().map(|entry| JobResult {
                        status: CacheStatus::Coalesced,
                        entry,
                    }),
                };
                JobOutcome {
                    name: job.name.clone(),
                    result,
                }
            })
            .collect())
    }

    /// A point-in-time snapshot of the lifetime counters.
    pub fn stats(&self) -> EngineStats {
        let cache_entries = self.state().cache.len();
        EngineStats {
            hits: self.tallies.hits.load(Ordering::Relaxed),
            misses: self.tallies.misses.load(Ordering::Relaxed),
            coalesced: self.tallies.coalesced.load(Ordering::Relaxed),
            compiles: self.tallies.compiles.load(Ordering::Relaxed),
            rejected: self.tallies.rejected.load(Ordering::Relaxed),
            evictions: self.tallies.evictions.load(Ordering::Relaxed),
            max_queue_depth: self.tallies.max_depth.load(Ordering::Relaxed),
            retries: self.tallies.retries.load(Ordering::Relaxed),
            degraded: self.tallies.degraded.load(Ordering::Relaxed),
            deadline_exceeded: self.tallies.deadline_exceeded.load(Ordering::Relaxed),
            breaker_opens: self.tallies.breaker_opens.load(Ordering::Relaxed),
            shed: self.tallies.shed.load(Ordering::Relaxed),
            breaker_state: self.breaker.state(),
            draining: self.draining(),
            cache_entries,
            queue_depth: self.depth.load(Ordering::Acquire),
        }
    }

    /// Admits `n` jobs or rejects the whole batch.
    fn admit(&self, n: usize) -> Result<AdmitGuard<'_>, ServeError> {
        let mut cur = self.depth.load(Ordering::Relaxed);
        loop {
            if cur + n > self.queue_capacity {
                REJECT.add(n as u64);
                self.tallies.rejected.fetch_add(n as u64, Ordering::Relaxed);
                return Err(ServeError::QueueFull {
                    depth: cur,
                    capacity: self.queue_capacity,
                });
            }
            match self.depth.compare_exchange_weak(
                cur,
                cur + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.tallies
            .max_depth
            .fetch_max((cur + n) as u64, Ordering::Relaxed);
        Ok(AdmitGuard {
            depth: &self.depth,
            n,
        })
    }

    /// One leader job, end to end: the primary config with bounded
    /// retries for transient failures, then (when enabled) the
    /// degradation ladder. Every attempt gets a fresh `deadline_ms`
    /// budget — the ladder exists precisely so a config that cannot
    /// finish in budget can be answered by a cheaper one that can.
    fn compile_resilient(
        &self,
        circuit: &Circuit,
        cfg: &AtomiqueConfig,
        deadline_ms: Option<u64>,
    ) -> Result<Arc<CacheEntry>, ServeError> {
        let mut last = match self.compile_retrying(circuit, cfg, deadline_ms) {
            Ok(entry) => return Ok(entry),
            Err(Failure::Permanent(e)) => return Err(e),
            Err(f) => f,
        };
        if self.degrade {
            for (label, rung) in degradation_ladder(cfg) {
                match self.compile_once(circuit, &rung, deadline_ms) {
                    Ok(entry) => {
                        DEGRADED.incr();
                        self.tallies.degraded.fetch_add(1, Ordering::Relaxed);
                        let mut entry = Arc::try_unwrap(entry).unwrap_or_else(|arc| (*arc).clone());
                        entry.degraded = Some(label);
                        return Ok(Arc::new(entry));
                    }
                    // A permanent error on a rung (e.g. capacity) will
                    // not improve further down: fail now.
                    Err(Failure::Permanent(e)) => return Err(e),
                    Err(f) => last = f,
                }
            }
        }
        match last {
            Failure::Deadline { stage } => {
                DEADLINE.incr();
                self.tallies
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::DeadlineExceeded { stage })
            }
            Failure::Transient(e) | Failure::Permanent(e) => Err(e),
        }
    }

    /// The primary config with up to `max_retries` extra attempts after
    /// transient failures, doubling the backoff each time. Deadline
    /// overruns are not retried on the same config — the same budget
    /// would blow the same way — and fall through to the ladder.
    fn compile_retrying(
        &self,
        circuit: &Circuit,
        cfg: &AtomiqueConfig,
        deadline_ms: Option<u64>,
    ) -> Result<Arc<CacheEntry>, Failure> {
        let mut backoff = self.retry_backoff;
        for attempt in 0..=self.max_retries {
            match self.compile_once(circuit, cfg, deadline_ms) {
                Ok(entry) => return Ok(entry),
                Err(Failure::Transient(_)) if attempt < self.max_retries => {
                    RETRY.incr();
                    self.tallies.retries.fetch_add(1, Ordering::Relaxed);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        backoff *= 2;
                    }
                }
                Err(f) => return Err(f),
            }
        }
        unreachable!("retry loop returns on its final attempt")
    }

    /// One compile attempt under one deadline budget, classified.
    fn compile_once(
        &self,
        circuit: &Circuit,
        cfg: &AtomiqueConfig,
        deadline_ms: Option<u64>,
    ) -> Result<Arc<CacheEntry>, Failure> {
        COMPILE.incr();
        self.tallies.compiles.fetch_add(1, Ordering::Relaxed);
        let limits = CompileLimits {
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
        };
        // A panic — adversarial circuit or injected fault — must become
        // a per-job error, not unwind through `WorkPool::map` and
        // `submit`: an escaped panic would skip the publish step and
        // leave this key's flight wedged in `in_flight` forever.
        let out = catch_unwind(AssertUnwindSafe(|| {
            // The leader seam: `RAA_FAULT_SPEC` kills, delays or fails
            // leader compiles here, inside the unwind barrier.
            match raa_fault::evaluate("serve.compile") {
                raa_fault::Action::None => {}
                raa_fault::Action::Delay(d) => std::thread::sleep(d),
                raa_fault::Action::Error => {
                    return Err(CompileError::Injected {
                        point: "serve.compile",
                    })
                }
                raa_fault::Action::Panic => panic!("injected fault at serve.compile"),
                raa_fault::Action::Deadline => {
                    return Err(CompileError::Deadline { stage: "serve" })
                }
            }
            atomique::compile_with_limits(circuit, cfg, limits)
        }))
        .map_err(|payload| {
            Failure::Transient(ServeError::Compile {
                message: format!("compiler panicked: {}", panic_message(payload.as_ref())),
            })
        })?
        .map_err(classify)?;
        let isa = out.isa.as_ref().ok_or_else(|| {
            Failure::Permanent(ServeError::Compile {
                message: "compiler did not attach an ISA stream".into(),
            })
        })?;
        Ok(Arc::new(CacheEntry {
            isa_bytes: codec::to_bytes(isa),
            timings: out.timings,
            fidelity: out.total_fidelity(),
            stats: out.stats,
            counters: out.report.counters().to_vec(),
            degraded: None,
        }))
    }
}

/// How one compile attempt failed, for the retry/ladder policy.
enum Failure {
    /// Worth retrying on the same config (caught panic, injected
    /// fault).
    Transient(ServeError),
    /// The attempt overran its deadline budget; retrying the same
    /// config is pointless but a cheaper rung may fit.
    Deadline {
        /// Stage boundary where the overrun was observed.
        stage: String,
    },
    /// Deterministic rejection (capacity, routing, verification):
    /// retries and cheaper configs cannot help.
    Permanent(ServeError),
}

fn classify(e: CompileError) -> Failure {
    match e {
        CompileError::Injected { .. } => Failure::Transient(ServeError::Compile {
            message: e.to_string(),
        }),
        CompileError::Deadline { stage } => Failure::Deadline {
            stage: stage.to_string(),
        },
        _ => Failure::Permanent(ServeError::Compile {
            message: e.to_string(),
        }),
    }
}

/// The degradation ladder for `cfg`: cumulative downgrades, cheapest
/// last. Each rung's label names the *full* diff from the primary
/// config, so a `degraded` response is self-describing.
fn degradation_ladder(cfg: &AtomiqueConfig) -> Vec<(String, AtomiqueConfig)> {
    use atomique::RouterStrategy;
    let mut rungs = Vec::new();
    let mut cur = cfg.clone();
    if cur.router_strategy == RouterStrategy::Layered {
        cur.router_strategy = RouterStrategy::Sequential;
        rungs.push((diff_label(cfg, &cur), cur.clone()));
    }
    while cur.opt_level != raa_isa::OptLevel::None {
        cur.opt_level = match cur.opt_level {
            raa_isa::OptLevel::Aggressive => raa_isa::OptLevel::Basic,
            _ => raa_isa::OptLevel::None,
        };
        rungs.push((diff_label(cfg, &cur), cur.clone()));
    }
    if cur.threads > 1 {
        cur.threads = 1;
        rungs.push((diff_label(cfg, &cur), cur.clone()));
    }
    rungs
}

/// The config fields a ladder rung changed, as `key=value` pairs.
fn diff_label(base: &AtomiqueConfig, cur: &AtomiqueConfig) -> String {
    let mut parts: Vec<String> = Vec::new();
    if cur.router_strategy != base.router_strategy {
        parts.push("strategy=sequential".into());
    }
    if cur.opt_level != base.opt_level {
        parts.push(format!(
            "opt={}",
            match cur.opt_level {
                raa_isa::OptLevel::None => 0,
                raa_isa::OptLevel::Basic => 1,
                raa_isa::OptLevel::Aggressive => 2,
            }
        ));
    }
    if cur.threads != base.threads {
        parts.push(format!("threads={}", cur.threads));
    }
    parts.join(",")
}

/// Extracts the human-readable message from a caught panic payload
/// (`panic!` produces `&str` or `String`; anything else gets a
/// placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// The invariants the service imposes on every compile: the stream is
/// attached, independently verified, and detail-traced (per-request
/// counters).
fn force_serving_flags(mut cfg: AtomiqueConfig) -> AtomiqueConfig {
    cfg.emit_isa = true;
    cfg.verify_isa = true;
    cfg.trace = true;
    cfg
}

/// Moves `key` to the hot end of the recency order.
fn touch(lru: &mut Vec<Key>, key: Key) {
    if let Some(pos) = lru.iter().position(|&k| k == key) {
        lru.remove(pos);
    }
    lru.push(key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::{Gate, Qubit};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(Qubit(0)));
        for i in 0..n - 1 {
            c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
        }
        c
    }

    fn job(name: &str, circuit: Circuit) -> Job {
        Job {
            name: name.into(),
            circuit,
        }
    }

    #[test]
    fn hit_after_miss_returns_identical_bytes_without_recompiling() {
        let engine = Engine::new(ServeConfig::default());
        let cfg = engine.base().clone();
        let jobs = [job("ghz", ghz(4))];
        let cold = engine.submit(&cfg, &jobs).unwrap();
        let warm = engine.submit(&cfg, &jobs).unwrap();
        let cold = cold[0].result.as_ref().unwrap();
        let warm = warm[0].result.as_ref().unwrap();
        assert_eq!(cold.status, CacheStatus::Miss);
        assert_eq!(warm.status, CacheStatus::Hit);
        assert_eq!(cold.entry.isa_bytes, warm.entry.isa_bytes);
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses, stats.compiles), (1, 1, 1));
        assert_eq!(stats.cache_entries, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn batches_beyond_the_queue_bound_are_rejected_whole() {
        let engine = Engine::new(ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let cfg = engine.base().clone();
        let jobs = [job("a", ghz(3)), job("b", ghz(4)), job("c", ghz(5))];
        match engine.submit(&cfg, &jobs) {
            Err(ServeError::QueueFull { depth, capacity }) => {
                assert_eq!((depth, capacity), (0, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.compiles, 0);
        // A batch that fits still goes through afterwards.
        assert!(engine.submit(&cfg, &jobs[..2]).is_ok());
        assert_eq!(engine.stats().queue_depth, 0);
    }

    #[test]
    fn compile_errors_propagate_and_are_never_cached() {
        let engine = Engine::new(ServeConfig::default());
        let cfg = engine.base().clone();
        // A circuit far larger than the default machine fails the
        // capacity check inside `compile`.
        let huge = Circuit::new(100_000);
        let out = engine.submit(&cfg, &[job("too-big", huge)]).unwrap();
        let err = out[0].result.as_ref().unwrap_err();
        assert_eq!(err.kind(), "compile");
        assert_eq!(engine.stats().cache_entries, 0);
        // The failure was not cached: submitting again compiles again.
        let before = engine.stats().compiles;
        let huge = Circuit::new(100_000);
        let _ = engine.submit(&cfg, &[job("too-big", huge)]).unwrap();
        assert_eq!(engine.stats().compiles, before + 1);
    }

    #[test]
    fn abandoned_lead_flights_fail_fast_instead_of_wedging() {
        // Simulates `submit` unwinding between flight registration and
        // publication: dropping an armed LeadGuard must publish an
        // error to the flight and clear `in_flight`, so followers (and
        // future identical jobs) never block forever.
        let engine = Engine::new(ServeConfig::default());
        let key = (1u64, 2u64);
        let flight = Arc::new(Flight::new());
        engine
            .state
            .lock()
            .unwrap()
            .in_flight
            .insert(key, flight.clone());
        drop(LeadGuard {
            engine: &engine,
            keys: vec![key],
            armed: true,
        });
        match flight.wait() {
            Err(ServeError::Compile { message }) => assert!(message.contains("abandoned")),
            other => panic!("expected published compile error, got {other:?}"),
        }
        assert!(engine.state.lock().unwrap().in_flight.is_empty());
        // A disarmed guard (the normal path) touches nothing.
        let flight = Arc::new(Flight::new());
        engine
            .state
            .lock()
            .unwrap()
            .in_flight
            .insert(key, flight.clone());
        drop(LeadGuard {
            engine: &engine,
            keys: vec![key],
            armed: false,
        });
        assert!(engine.state.lock().unwrap().in_flight.contains_key(&key));
    }

    #[test]
    fn panic_messages_are_extracted_from_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(owned.as_ref()), "kaboom");
        let other: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(other.as_ref()), "non-string panic payload");
    }

    #[test]
    fn breaker_opens_sheds_and_recovers_via_probe() {
        let engine = Engine::new(ServeConfig {
            breaker_threshold: 2,
            breaker_cooldown_ms: 50,
            max_retries: 0,
            degrade: false,
            ..ServeConfig::default()
        });
        let cfg = engine.base().clone();
        // Two consecutive terminal failures (capacity errors are
        // permanent) trip the breaker.
        for _ in 0..2 {
            let out = engine
                .submit(&cfg, &[job("too-big", Circuit::new(100_000))])
                .unwrap();
            assert!(out[0].result.is_err());
        }
        let stats = engine.stats();
        assert_eq!(stats.breaker_opens, 1);
        assert_eq!(stats.breaker_state, BreakerState::Open);
        // While open, whole batches are shed with a retry hint.
        match engine.submit(&cfg, &[job("ghz", ghz(3))]) {
            Err(ServeError::BreakerOpen { retry_after_ms }) => assert!(retry_after_ms >= 1),
            other => panic!("expected BreakerOpen, got {other:?}"),
        }
        assert_eq!(engine.stats().shed, 1);
        // After the cooldown one probe goes through; success closes.
        std::thread::sleep(std::time::Duration::from_millis(60));
        let out = engine.submit(&cfg, &[job("ghz", ghz(3))]).unwrap();
        assert!(out[0].result.is_ok());
        assert_eq!(engine.stats().breaker_state, BreakerState::Closed);
    }

    #[test]
    fn draining_rejects_new_batches() {
        let engine = Engine::new(ServeConfig::default());
        let cfg = engine.base().clone();
        engine.begin_drain();
        assert!(matches!(
            engine.submit(&cfg, &[job("late", ghz(3))]),
            Err(ServeError::Draining)
        ));
        assert!(engine.stats().draining);
    }

    #[test]
    fn exhausted_deadline_is_reported_after_the_ladder() {
        // A deadline of 0 ms expires at every stage boundary of every
        // rung, deterministically: the default config has no cheaper
        // rungs (sequential, -O0, one thread), so exactly one attempt
        // runs and the job reports `deadline`.
        let engine = Engine::new(ServeConfig::default());
        let cfg = engine.base().clone();
        let out = engine
            .submit_with(&cfg, &[job("slow", ghz(4))], Some(0))
            .unwrap();
        match out[0].result.as_ref() {
            Err(ServeError::DeadlineExceeded { stage }) => assert!(!stage.is_empty()),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.cache_entries, 0);
    }

    #[test]
    fn ladder_rungs_are_cumulative_with_self_describing_labels() {
        use atomique::RouterStrategy;
        let cfg = AtomiqueConfig {
            router_strategy: RouterStrategy::Layered,
            opt_level: raa_isa::OptLevel::Aggressive,
            threads: 4,
            ..AtomiqueConfig::default()
        };
        let rungs = degradation_ladder(&cfg);
        let labels: Vec<&str> = rungs.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(
            labels,
            [
                "strategy=sequential",
                "strategy=sequential,opt=1",
                "strategy=sequential,opt=0",
                "strategy=sequential,opt=0,threads=1",
            ]
        );
        let last = &rungs.last().unwrap().1;
        assert_eq!(last.router_strategy, RouterStrategy::Sequential);
        assert_eq!(last.opt_level, raa_isa::OptLevel::None);
        assert_eq!(last.threads, 1);
        // Nothing to shed for an already-minimal config.
        assert!(degradation_ladder(&AtomiqueConfig::default()).is_empty());
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let engine = Engine::new(ServeConfig {
            cache_capacity: 2,
            ..ServeConfig::default()
        });
        let cfg = engine.base().clone();
        for (name, n) in [("a", 3), ("b", 4), ("a", 3), ("c", 5)] {
            engine.submit(&cfg, &[job(name, ghz(n))]).unwrap();
        }
        // a, b cached; touching a made b the coldest; c evicted b.
        let stats = engine.stats();
        assert_eq!(stats.cache_entries, 2);
        assert_eq!(stats.evictions, 1);
        let out = engine.submit(&cfg, &[job("a", ghz(3))]).unwrap();
        assert_eq!(out[0].result.as_ref().unwrap().status, CacheStatus::Hit);
        let out = engine.submit(&cfg, &[job("b", ghz(4))]).unwrap();
        assert_eq!(out[0].result.as_ref().unwrap().status, CacheStatus::Miss);
    }
}
