//! The batch-compilation engine: a bounded admission queue, a
//! single-flight compile cache keyed on circuit hash × config
//! fingerprint, and worker fan-out over [`raa_par::WorkPool`].
//!
//! The engine is transport-agnostic — the HTTP front
//! ([`crate::http`]) and the CLI both drive [`Engine::submit`]
//! directly, so every invariant (backpressure, single-flight, LRU
//! eviction, telemetry counters) is testable without a socket.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use atomique::{AtomiqueConfig, CompileStats, StageTimings};
use raa_circuit::Circuit;
use raa_isa::codec;
use raa_par::WorkPool;
use raa_trace::Counter;

use crate::ServeError;

static HIT: Counter = Counter::new("serve.cache.hit");
static MISS: Counter = Counter::new("serve.cache.miss");
static COALESCED: Counter = Counter::new("serve.cache.coalesced");
static COMPILE: Counter = Counter::new("serve.compile");
static REJECT: Counter = Counter::new("serve.queue.reject");
static EVICT: Counter = Counter::new("serve.cache.evict");

/// Sizing knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads compiling jobs concurrently (the inter-job
    /// fan-out; each compile may additionally use
    /// [`AtomiqueConfig::threads`] internally).
    pub workers: usize,
    /// Maximum jobs admitted at once across all batches; a batch that
    /// would push the in-flight count past this bound is rejected
    /// whole with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Maximum cached compile results; least-recently-used entries are
    /// evicted past this bound. `0` disables caching.
    pub cache_capacity: usize,
    /// Maximum accepted HTTP request-body size, bytes.
    pub max_body_bytes: usize,
    /// The compilation config jobs start from; per-request overrides
    /// are applied on top. `emit_isa` and `verify_isa` are forced on —
    /// the service only ever returns verified ISA streams.
    pub base: AtomiqueConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            max_body_bytes: 16 << 20,
            base: AtomiqueConfig::default(),
        }
    }
}

/// How a job's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the compile cache without compiling.
    Hit,
    /// Compiled by this batch (the single-flight leader).
    Miss,
    /// Waited on an identical in-flight compile instead of repeating
    /// it.
    Coalesced,
}

impl CacheStatus {
    /// The wire name used in JSON responses (`"hit"` / `"miss"` /
    /// `"coalesced"`).
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

/// One cached compile result: the verified ISA stream (binary-codec
/// bytes) plus the telemetry captured while producing it.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// `raa_isa::codec::to_bytes` of the verified stream.
    pub isa_bytes: Vec<u8>,
    /// Per-stage wall-clock breakdown of the original compile.
    pub timings: StageTimings,
    /// Estimated total fidelity.
    pub fidelity: f64,
    /// The compile's summary statistics.
    pub stats: CompileStats,
    /// Every telemetry counter the compile incremented (detail tracing
    /// is forced on for served compiles), sorted by name.
    pub counters: Vec<(String, u64)>,
}

/// One named compilation job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Client-chosen label, echoed back in the response.
    pub name: String,
    /// The circuit to compile.
    pub circuit: Circuit,
}

/// A job's result: where it came from and the cached payload.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Hit / miss / coalesced.
    pub status: CacheStatus,
    /// The (possibly shared) compile result.
    pub entry: Arc<CacheEntry>,
}

/// One job's outcome within a batch. Per-job failures (compile errors)
/// land here; batch-level failures (queue full) fail
/// [`Engine::submit`] itself.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's `name`, echoed from the request.
    pub name: String,
    /// The result or the per-job error.
    pub result: Result<JobResult, ServeError>,
}

/// A monotonic snapshot of the engine's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Jobs served from cache.
    pub hits: u64,
    /// Jobs that led a compile.
    pub misses: u64,
    /// Jobs that waited on an identical in-flight compile.
    pub coalesced: u64,
    /// Compiles actually executed (= `misses`, counted at execution).
    pub compiles: u64,
    /// Jobs rejected by queue backpressure.
    pub rejected: u64,
    /// Cache entries evicted by the LRU bound.
    pub evictions: u64,
    /// High-water mark of concurrently admitted jobs.
    pub max_queue_depth: u64,
    /// Entries currently cached.
    pub cache_entries: usize,
    /// Jobs currently admitted.
    pub queue_depth: usize,
}

type Key = (u64, u64);

/// The single-flight rendezvous for one cache key: the leader fills
/// `slot` and notifies; followers wait instead of recompiling.
struct Flight {
    slot: Mutex<Option<Result<Arc<CacheEntry>, ServeError>>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<Arc<CacheEntry>, ServeError>) {
        *self.slot.lock().expect("flight slot poisoned") = Some(result);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Arc<CacheEntry>, ServeError> {
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return result.clone();
            }
            slot = self.ready.wait(slot).expect("flight slot poisoned");
        }
    }
}

struct State {
    cache: HashMap<Key, Arc<CacheEntry>>,
    /// Keys of `cache` in recency order: front = coldest, back =
    /// hottest.
    lru: Vec<Key>,
    in_flight: HashMap<Key, Arc<Flight>>,
}

#[derive(Default)]
struct Tallies {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    compiles: AtomicU64,
    rejected: AtomicU64,
    evictions: AtomicU64,
    max_depth: AtomicU64,
}

/// Decrements the admission count when a batch leaves the engine,
/// whatever path it took out.
struct AdmitGuard<'a> {
    depth: &'a AtomicUsize,
    n: usize,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        self.depth.fetch_sub(self.n, Ordering::AcqRel);
    }
}

/// Unwind protection for the window between registering lead flights
/// and publishing their results: if [`Engine::submit`] panics in that
/// window (a worker-pool bug, a poisoned publish), every still-
/// registered lead flight gets an error published and is removed from
/// `in_flight`, so followers — and every future identical job — fail
/// fast instead of blocking forever on an abandoned flight.
struct LeadGuard<'a> {
    engine: &'a Engine,
    keys: Vec<Key>,
    armed: bool,
}

impl Drop for LeadGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // Recover the state even if the panic poisoned the lock —
        // in_flight removal must happen regardless.
        let mut st = self
            .engine
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        for key in &self.keys {
            if let Some(flight) = st.in_flight.remove(key) {
                flight.publish(Err(ServeError::Compile {
                    message: "compile abandoned: the submitting batch panicked".into(),
                }));
            }
        }
    }
}

/// What [`Engine::submit`] decided to do with one job, in batch order.
enum Plan {
    Ready(Arc<CacheEntry>),
    Lead(Arc<Flight>),
    Follow(Arc<Flight>),
}

/// The batch-compilation engine. Cheap to share behind an [`Arc`];
/// every method takes `&self`.
pub struct Engine {
    base: AtomiqueConfig,
    queue_capacity: usize,
    cache_capacity: usize,
    pool: WorkPool,
    state: Mutex<State>,
    depth: AtomicUsize,
    tallies: Tallies,
    max_body_bytes: usize,
}

impl Engine {
    /// Builds an engine. The base config's `emit_isa`, `verify_isa`
    /// and `trace` flags are forced on (the service only returns
    /// verified streams, with per-request telemetry).
    pub fn new(config: ServeConfig) -> Engine {
        Engine {
            base: force_serving_flags(config.base),
            queue_capacity: config.queue_capacity.max(1),
            cache_capacity: config.cache_capacity,
            pool: WorkPool::new(config.workers),
            state: Mutex::new(State {
                cache: HashMap::new(),
                lru: Vec::new(),
                in_flight: HashMap::new(),
            }),
            depth: AtomicUsize::new(0),
            tallies: Tallies::default(),
            max_body_bytes: config.max_body_bytes,
        }
    }

    /// The effective base config (with the serving flags forced on);
    /// per-request overrides are applied on top of this.
    pub fn base(&self) -> &AtomiqueConfig {
        &self.base
    }

    /// The HTTP request-body cap, bytes.
    pub fn max_body_bytes(&self) -> usize {
        self.max_body_bytes
    }

    /// Compiles a batch of jobs under `config` (usually
    /// [`Engine::base`] with request overrides applied).
    ///
    /// Jobs whose `(circuit, config)` pair is cached are served
    /// without compiling; identical uncached jobs — within this batch
    /// or racing across batches — compile exactly once (single
    /// flight), with every duplicate waiting on the leader. Results
    /// come back in batch order.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] if admitting the whole batch would
    /// exceed the queue bound — no job in the batch runs. Per-job
    /// compile failures are reported inside the returned outcomes (and
    /// are never cached).
    pub fn submit(
        &self,
        config: &AtomiqueConfig,
        jobs: &[Job],
    ) -> Result<Vec<JobOutcome>, ServeError> {
        let n = jobs.len();
        let _guard = self.admit(n)?;

        let cfg = force_serving_flags(config.clone());
        let fp = cfg.fingerprint();

        // Classify each job under one lock pass. A duplicate inside
        // the batch sees the leader's flight already in `in_flight`
        // and becomes a follower, exactly like a cross-batch race.
        let mut plans: Vec<Plan> = Vec::with_capacity(n);
        let mut leads: Vec<(usize, Key)> = Vec::new();
        {
            let mut st = self.state.lock().expect("engine state poisoned");
            for (i, job) in jobs.iter().enumerate() {
                let key = (job.circuit.stable_hash(), fp);
                if let Some(entry) = st.cache.get(&key).cloned() {
                    touch(&mut st.lru, key);
                    HIT.incr();
                    self.tallies.hits.fetch_add(1, Ordering::Relaxed);
                    plans.push(Plan::Ready(entry));
                } else if let Some(flight) = st.in_flight.get(&key).cloned() {
                    COALESCED.incr();
                    self.tallies.coalesced.fetch_add(1, Ordering::Relaxed);
                    plans.push(Plan::Follow(flight));
                } else {
                    let flight = Arc::new(Flight::new());
                    st.in_flight.insert(key, flight.clone());
                    MISS.incr();
                    self.tallies.misses.fetch_add(1, Ordering::Relaxed);
                    leads.push((i, key));
                    plans.push(Plan::Lead(flight));
                }
            }
        }

        // Compile the leaders, fanned out over the worker pool.
        // `WorkPool::map` links workers into this thread's trace
        // session, so `serve.compile` (and the compiler's own
        // counters) land with the submitter.
        let mut lead_guard = LeadGuard {
            engine: self,
            keys: leads.iter().map(|&(_, key)| key).collect(),
            armed: true,
        };
        let results = self.pool.map("par.serve", &leads, |_, &(i, _)| {
            self.compile_one(&jobs[i].circuit, &cfg)
        });

        // Publish: fill caches, resolve flights, wake followers.
        {
            let mut st = self.state.lock().expect("engine state poisoned");
            for (&(_, key), result) in leads.iter().zip(results) {
                if let Ok(entry) = &result {
                    if self.cache_capacity > 0 {
                        st.cache.insert(key, entry.clone());
                        st.lru.push(key);
                        while st.cache.len() > self.cache_capacity {
                            let coldest = st.lru.remove(0);
                            st.cache.remove(&coldest);
                            EVICT.incr();
                            self.tallies.evictions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let flight = st
                    .in_flight
                    .remove(&key)
                    .expect("single-flight entry vanished");
                flight.publish(result);
            }
        }
        lead_guard.armed = false;

        Ok(jobs
            .iter()
            .zip(plans)
            .map(|(job, plan)| {
                let result = match plan {
                    Plan::Ready(entry) => Ok(JobResult {
                        status: CacheStatus::Hit,
                        entry,
                    }),
                    Plan::Lead(flight) => flight.wait().map(|entry| JobResult {
                        status: CacheStatus::Miss,
                        entry,
                    }),
                    Plan::Follow(flight) => flight.wait().map(|entry| JobResult {
                        status: CacheStatus::Coalesced,
                        entry,
                    }),
                };
                JobOutcome {
                    name: job.name.clone(),
                    result,
                }
            })
            .collect())
    }

    /// A point-in-time snapshot of the lifetime counters.
    pub fn stats(&self) -> EngineStats {
        let (cache_entries, _) = {
            let st = self.state.lock().expect("engine state poisoned");
            (st.cache.len(), ())
        };
        EngineStats {
            hits: self.tallies.hits.load(Ordering::Relaxed),
            misses: self.tallies.misses.load(Ordering::Relaxed),
            coalesced: self.tallies.coalesced.load(Ordering::Relaxed),
            compiles: self.tallies.compiles.load(Ordering::Relaxed),
            rejected: self.tallies.rejected.load(Ordering::Relaxed),
            evictions: self.tallies.evictions.load(Ordering::Relaxed),
            max_queue_depth: self.tallies.max_depth.load(Ordering::Relaxed),
            cache_entries,
            queue_depth: self.depth.load(Ordering::Acquire),
        }
    }

    /// Admits `n` jobs or rejects the whole batch.
    fn admit(&self, n: usize) -> Result<AdmitGuard<'_>, ServeError> {
        let mut cur = self.depth.load(Ordering::Relaxed);
        loop {
            if cur + n > self.queue_capacity {
                REJECT.add(n as u64);
                self.tallies.rejected.fetch_add(n as u64, Ordering::Relaxed);
                return Err(ServeError::QueueFull {
                    depth: cur,
                    capacity: self.queue_capacity,
                });
            }
            match self.depth.compare_exchange_weak(
                cur,
                cur + n,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.tallies
            .max_depth
            .fetch_max((cur + n) as u64, Ordering::Relaxed);
        Ok(AdmitGuard {
            depth: &self.depth,
            n,
        })
    }

    fn compile_one(
        &self,
        circuit: &Circuit,
        cfg: &AtomiqueConfig,
    ) -> Result<Arc<CacheEntry>, ServeError> {
        COMPILE.incr();
        self.tallies.compiles.fetch_add(1, Ordering::Relaxed);
        // A panic on an adversarial circuit must become a per-job error,
        // not unwind through `WorkPool::map` and `submit` — an escaped
        // panic would skip the publish step and leave this key's flight
        // wedged in `in_flight` forever.
        let out = catch_unwind(AssertUnwindSafe(|| atomique::compile(circuit, cfg)))
            .map_err(|payload| ServeError::Compile {
                message: format!("compiler panicked: {}", panic_message(payload.as_ref())),
            })?
            .map_err(|e| ServeError::Compile {
                message: e.to_string(),
            })?;
        let isa = out.isa.as_ref().ok_or_else(|| ServeError::Compile {
            message: "compiler did not attach an ISA stream".into(),
        })?;
        Ok(Arc::new(CacheEntry {
            isa_bytes: codec::to_bytes(isa),
            timings: out.timings,
            fidelity: out.total_fidelity(),
            stats: out.stats,
            counters: out.report.counters().to_vec(),
        }))
    }
}

/// Extracts the human-readable message from a caught panic payload
/// (`panic!` produces `&str` or `String`; anything else gets a
/// placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// The invariants the service imposes on every compile: the stream is
/// attached, independently verified, and detail-traced (per-request
/// counters).
fn force_serving_flags(mut cfg: AtomiqueConfig) -> AtomiqueConfig {
    cfg.emit_isa = true;
    cfg.verify_isa = true;
    cfg.trace = true;
    cfg
}

/// Moves `key` to the hot end of the recency order.
fn touch(lru: &mut Vec<Key>, key: Key) {
    if let Some(pos) = lru.iter().position(|&k| k == key) {
        lru.remove(pos);
    }
    lru.push(key);
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::{Gate, Qubit};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(Qubit(0)));
        for i in 0..n - 1 {
            c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
        }
        c
    }

    fn job(name: &str, circuit: Circuit) -> Job {
        Job {
            name: name.into(),
            circuit,
        }
    }

    #[test]
    fn hit_after_miss_returns_identical_bytes_without_recompiling() {
        let engine = Engine::new(ServeConfig::default());
        let cfg = engine.base().clone();
        let jobs = [job("ghz", ghz(4))];
        let cold = engine.submit(&cfg, &jobs).unwrap();
        let warm = engine.submit(&cfg, &jobs).unwrap();
        let cold = cold[0].result.as_ref().unwrap();
        let warm = warm[0].result.as_ref().unwrap();
        assert_eq!(cold.status, CacheStatus::Miss);
        assert_eq!(warm.status, CacheStatus::Hit);
        assert_eq!(cold.entry.isa_bytes, warm.entry.isa_bytes);
        let stats = engine.stats();
        assert_eq!((stats.hits, stats.misses, stats.compiles), (1, 1, 1));
        assert_eq!(stats.cache_entries, 1);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn batches_beyond_the_queue_bound_are_rejected_whole() {
        let engine = Engine::new(ServeConfig {
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let cfg = engine.base().clone();
        let jobs = [job("a", ghz(3)), job("b", ghz(4)), job("c", ghz(5))];
        match engine.submit(&cfg, &jobs) {
            Err(ServeError::QueueFull { depth, capacity }) => {
                assert_eq!((depth, capacity), (0, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let stats = engine.stats();
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.compiles, 0);
        // A batch that fits still goes through afterwards.
        assert!(engine.submit(&cfg, &jobs[..2]).is_ok());
        assert_eq!(engine.stats().queue_depth, 0);
    }

    #[test]
    fn compile_errors_propagate_and_are_never_cached() {
        let engine = Engine::new(ServeConfig::default());
        let cfg = engine.base().clone();
        // A circuit far larger than the default machine fails the
        // capacity check inside `compile`.
        let huge = Circuit::new(100_000);
        let out = engine.submit(&cfg, &[job("too-big", huge)]).unwrap();
        let err = out[0].result.as_ref().unwrap_err();
        assert_eq!(err.kind(), "compile");
        assert_eq!(engine.stats().cache_entries, 0);
        // The failure was not cached: submitting again compiles again.
        let before = engine.stats().compiles;
        let huge = Circuit::new(100_000);
        let _ = engine.submit(&cfg, &[job("too-big", huge)]).unwrap();
        assert_eq!(engine.stats().compiles, before + 1);
    }

    #[test]
    fn abandoned_lead_flights_fail_fast_instead_of_wedging() {
        // Simulates `submit` unwinding between flight registration and
        // publication: dropping an armed LeadGuard must publish an
        // error to the flight and clear `in_flight`, so followers (and
        // future identical jobs) never block forever.
        let engine = Engine::new(ServeConfig::default());
        let key = (1u64, 2u64);
        let flight = Arc::new(Flight::new());
        engine
            .state
            .lock()
            .unwrap()
            .in_flight
            .insert(key, flight.clone());
        drop(LeadGuard {
            engine: &engine,
            keys: vec![key],
            armed: true,
        });
        match flight.wait() {
            Err(ServeError::Compile { message }) => assert!(message.contains("abandoned")),
            other => panic!("expected published compile error, got {other:?}"),
        }
        assert!(engine.state.lock().unwrap().in_flight.is_empty());
        // A disarmed guard (the normal path) touches nothing.
        let flight = Arc::new(Flight::new());
        engine
            .state
            .lock()
            .unwrap()
            .in_flight
            .insert(key, flight.clone());
        drop(LeadGuard {
            engine: &engine,
            keys: vec![key],
            armed: false,
        });
        assert!(engine.state.lock().unwrap().in_flight.contains_key(&key));
    }

    #[test]
    fn panic_messages_are_extracted_from_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(owned.as_ref()), "kaboom");
        let other: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(other.as_ref()), "non-string panic payload");
    }

    #[test]
    fn lru_eviction_respects_capacity_and_recency() {
        let engine = Engine::new(ServeConfig {
            cache_capacity: 2,
            ..ServeConfig::default()
        });
        let cfg = engine.base().clone();
        for (name, n) in [("a", 3), ("b", 4), ("a", 3), ("c", 5)] {
            engine.submit(&cfg, &[job(name, ghz(n))]).unwrap();
        }
        // a, b cached; touching a made b the coldest; c evicted b.
        let stats = engine.stats();
        assert_eq!(stats.cache_entries, 2);
        assert_eq!(stats.evictions, 1);
        let out = engine.submit(&cfg, &[job("a", ghz(3))]).unwrap();
        assert_eq!(out[0].result.as_ref().unwrap().status, CacheStatus::Hit);
        let out = engine.submit(&cfg, &[job("b", ghz(4))]).unwrap();
        assert_eq!(out[0].result.as_ref().unwrap().status, CacheStatus::Miss);
    }
}
