//! The JSON API: request parsing, per-request config overrides, and
//! response rendering. Transport-agnostic — [`crate::http`] moves the
//! bytes, this module gives them meaning.
//!
//! A request is one JSON object:
//!
//! ```json
//! {
//!   "config": {"opt_level": 2, "strategy": "layered", "threads": 4},
//!   "jobs": [
//!     {"name": "bell", "qasm": "OPENQASM 2.0; ..."},
//!     {"name": "ghz", "circuit": {"num_qubits": 3,
//!                                 "gates": [["h", 0], ["cx", 0, 1], ["cx", 1, 2]]}}
//!   ]
//! }
//! ```
//!
//! Gate arrays use the exact per-gate encoding of the ISA JSON codec
//! ([`raa_isa::codec::gate_from_json`]). The response carries one
//! result per job, in order, each either a payload (base64 ISA bytes,
//! stats, timings, counters, cache status) or an `{kind, message}`
//! error.

use std::sync::Arc;

use atomique::{AtomiqueConfig, OptLevel, ProximityIndex, RouterStrategy};
use raa_circuit::{qasm, Circuit};
use raa_isa::json::{self, Value};
use raa_isa::{codec, DecodeError};

use crate::engine::{Engine, EngineStats, Job, JobOutcome, JobResult};
use crate::{b64, ServeError};

/// Per-request knobs layered over the engine's base config. Every
/// field is optional; an absent field keeps the base value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Overrides {
    /// ISA optimization level (JSON `opt_level`: 0, 1 or 2).
    pub opt_level: Option<OptLevel>,
    /// Router strategy (JSON `strategy`: `"sequential"` / `"layered"`).
    pub strategy: Option<RouterStrategy>,
    /// Intra-compile worker threads (JSON `threads`: 1..=MAX_THREADS).
    pub threads: Option<usize>,
    /// Proximity index (JSON `proximity`: `"grid"` / `"exhaustive"`).
    pub proximity: Option<ProximityIndex>,
}

impl Overrides {
    /// Parses the request's `config` object.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on unknown values or out-of-range
    /// thread counts (validated by [`atomique::parse_threads`]).
    pub fn parse(v: &Value) -> Result<Overrides, ServeError> {
        let mut o = Overrides::default();
        if let Some(level) = v.opt_field("opt_level").map_err(shape)? {
            o.opt_level = Some(match level.uint(2).map_err(shape)? {
                0 => OptLevel::None,
                1 => OptLevel::Basic,
                _ => OptLevel::Aggressive,
            });
        }
        if let Some(strategy) = v.opt_field("strategy").map_err(shape)? {
            o.strategy = Some(match strategy.str().map_err(shape)? {
                "sequential" => RouterStrategy::Sequential,
                "layered" => RouterStrategy::Layered,
                other => {
                    return Err(bad(format!(
                        "unknown strategy `{other}` (expected `sequential` or `layered`)"
                    )))
                }
            });
        }
        if let Some(threads) = v.opt_field("threads").map_err(shape)? {
            let raw = threads.uint(u64::MAX).map_err(shape)?;
            o.threads = Some(
                atomique::parse_threads(&raw.to_string())
                    .map_err(|e| bad(format!("bad threads override: {e}")))?,
            );
        }
        if let Some(proximity) = v.opt_field("proximity").map_err(shape)? {
            o.proximity = Some(match proximity.str().map_err(shape)? {
                "grid" => ProximityIndex::Grid,
                "exhaustive" => ProximityIndex::Exhaustive,
                other => {
                    return Err(bad(format!(
                        "unknown proximity `{other}` (expected `grid` or `exhaustive`)"
                    )))
                }
            });
        }
        Ok(o)
    }

    /// The base config with these overrides applied.
    pub fn apply(&self, base: &AtomiqueConfig) -> AtomiqueConfig {
        let mut cfg = base.clone();
        if let Some(level) = self.opt_level {
            cfg.opt_level = level;
        }
        if let Some(strategy) = self.strategy {
            cfg.router_strategy = strategy;
        }
        if let Some(threads) = self.threads {
            cfg.threads = threads;
        }
        if let Some(proximity) = self.proximity {
            cfg.proximity_index = proximity;
        }
        cfg
    }
}

/// One job as parsed from the request: the name always parses or the
/// whole request is rejected; the circuit parses per-job, so one bad
/// job does not take down its batch siblings.
#[derive(Debug, Clone)]
pub struct ParsedJob {
    /// The client's label for this job.
    pub name: String,
    /// The parsed circuit, or why it failed.
    pub circuit: Result<Circuit, ServeError>,
}

/// A parsed `/v1/compile` request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The `config` override block (defaults when absent).
    pub overrides: Overrides,
    /// Per-attempt compile deadline, milliseconds (JSON `deadline_ms`);
    /// `None` uses the engine default.
    pub deadline_ms: Option<u64>,
    /// The jobs, in request order.
    pub jobs: Vec<ParsedJob>,
}

/// Parses a request body.
///
/// # Errors
///
/// [`ServeError::Decode`] on malformed JSON, [`ServeError::
/// BadRequest`] when the document shape or the `config` block is
/// wrong. Job-level circuit problems do **not** fail the request;
/// they surface per job in [`ParsedJob::circuit`].
pub fn parse_request(text: &str) -> Result<Request, ServeError> {
    let root = json::parse(text)?;
    let overrides = match root.opt_field("config").map_err(shape)? {
        Some(config) => Overrides::parse(config)?,
        None => Overrides::default(),
    };
    let deadline_ms = match root.opt_field("deadline_ms").map_err(shape)? {
        Some(v) => {
            let ms = v.uint(u64::MAX).map_err(shape)?;
            if ms == 0 {
                return Err(bad("deadline_ms must be positive"));
            }
            Some(ms)
        }
        None => None,
    };
    let mut jobs = Vec::new();
    for job in root.field("jobs").map_err(shape)?.arr().map_err(shape)? {
        let name = job
            .field("name")
            .and_then(Value::str)
            .map_err(shape)?
            .to_string();
        jobs.push(ParsedJob {
            name,
            circuit: parse_circuit_source(job),
        });
    }
    Ok(Request {
        overrides,
        deadline_ms,
        jobs,
    })
}

/// Extracts a job's circuit from its `qasm` or `circuit` field.
fn parse_circuit_source(job: &Value) -> Result<Circuit, ServeError> {
    let qasm_src = job.opt_field("qasm").map_err(shape)?;
    let circuit_obj = job.opt_field("circuit").map_err(shape)?;
    match (qasm_src, circuit_obj) {
        (Some(_), Some(_)) => Err(bad("job has both `qasm` and `circuit`")),
        (None, None) => Err(bad("job needs a `qasm` or `circuit` field")),
        (Some(src), None) => Ok(qasm::from_qasm(src.str().map_err(shape)?)?),
        (None, Some(obj)) => {
            let n = obj.field("num_qubits")?.uint(u32::MAX as u64)? as usize;
            let mut circuit = Circuit::new(n);
            for gate in obj.field("gates")?.arr()? {
                circuit.try_push(codec::gate_from_json(gate)?)?;
            }
            Ok(circuit)
        }
    }
}

/// Parses, compiles and renders one request end to end: the engine
/// half of the HTTP handler, shared with the CLI's batch mode.
///
/// # Errors
///
/// Batch-level failures only ([`ServeError::QueueFull`], malformed
/// request); per-job failures are rendered inside the `Ok` body.
pub fn run(engine: &Engine, body: &str) -> Result<String, ServeError> {
    let request = parse_request(body)?;
    let cfg = request.overrides.apply(engine.base());

    // Compile the parseable jobs; merge parse failures back in order.
    let mut good: Vec<Job> = Vec::new();
    let mut slots: Vec<Result<usize, ServeError>> = Vec::new();
    for parsed in &request.jobs {
        match &parsed.circuit {
            Ok(circuit) => {
                slots.push(Ok(good.len()));
                good.push(Job {
                    name: parsed.name.clone(),
                    circuit: circuit.clone(),
                });
            }
            Err(e) => slots.push(Err(e.clone())),
        }
    }
    let compiled = engine.submit_with(&cfg, &good, request.deadline_ms)?;
    let outcomes: Vec<JobOutcome> = request
        .jobs
        .iter()
        .zip(slots)
        .map(|(parsed, slot)| match slot {
            Ok(i) => compiled[i].clone(),
            Err(e) => JobOutcome {
                name: parsed.name.clone(),
                result: Err(e),
            },
        })
        .collect();
    Ok(render_response(&outcomes))
}

// ---------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------

/// Escapes a string for embedding in a JSON document (with quotes).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (non-finite values become 0,
/// which JSON cannot represent and the pipeline never produces).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders one job payload.
fn render_result(out: &mut String, result: &JobResult) {
    let e: &Arc<_> = &result.entry;
    out.push_str(&format!(
        "\"cache\":{},\"isa_b64\":{},\"fidelity\":{}",
        quote(result.status.as_str()),
        quote(&b64::encode(&e.isa_bytes)),
        num(e.fidelity),
    ));
    match &e.degraded {
        Some(label) => out.push_str(&format!(
            ",\"degraded\":true,\"degraded_config\":{}",
            quote(label)
        )),
        None => out.push_str(",\"degraded\":false"),
    }
    let t = &e.timings;
    out.push_str(&format!(
        ",\"timings\":{{\"transpile_s\":{},\"map_s\":{},\"route_s\":{},\"lower_s\":{},\"opt_s\":{},\"verify_s\":{},\"sum_s\":{}}}",
        num(t.transpile_s), num(t.map_s), num(t.route_s),
        num(t.lower_s), num(t.opt_s), num(t.verify_s), num(t.sum_s()),
    ));
    let s = &e.stats;
    out.push_str(&format!(
        ",\"stats\":{{\"num_qubits\":{},\"two_qubit_gates\":{},\"one_qubit_gates\":{},\
         \"depth\":{},\"swaps_inserted\":{},\"additional_cnots\":{},\"execution_time_s\":{},\
         \"total_move_distance_mm\":{},\"num_move_stages\":{},\"cooling_events\":{},\
         \"overlap_rejections\":{},\"transfers\":{},\"compile_time_s\":{}}}",
        s.num_qubits,
        s.two_qubit_gates,
        s.one_qubit_gates,
        s.depth,
        s.swaps_inserted,
        s.additional_cnots,
        num(s.execution_time_s),
        num(s.total_move_distance_mm),
        s.num_move_stages,
        s.cooling_events,
        s.overlap_rejections,
        s.transfers,
        num(s.compile_time_s),
    ));
    out.push_str(",\"counters\":{");
    for (i, (name, value)) in e.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", quote(name), value));
    }
    out.push('}');
}

/// Renders the `/v1/compile` response body.
pub fn render_response(outcomes: &[JobOutcome]) -> String {
    let mut out = String::from("{\"results\":[");
    for (i, outcome) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"name\":{},", quote(&outcome.name)));
        match &outcome.result {
            Ok(result) => {
                out.push_str("\"ok\":true,");
                render_result(&mut out, result);
            }
            Err(e) => {
                out.push_str(&format!("\"ok\":false,\"error\":{}", render_error_obj(e)));
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a batch-level error body (`{"error": {...}}`).
pub fn render_error(e: &ServeError) -> String {
    format!("{{\"error\":{}}}", render_error_obj(e))
}

fn render_error_obj(e: &ServeError) -> String {
    format!(
        "{{\"kind\":{},\"message\":{}}}",
        quote(e.kind()),
        quote(&e.to_string())
    )
}

/// Renders the `/v1/stats` body.
pub fn render_stats(s: &EngineStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"coalesced\":{},\"compiles\":{},\"rejected\":{},\
         \"evictions\":{},\"max_queue_depth\":{},\"retries\":{},\"degraded\":{},\
         \"deadline_exceeded\":{},\"breaker_opens\":{},\"shed\":{},\"breaker_state\":{},\
         \"draining\":{},\"cache_entries\":{},\"queue_depth\":{}}}",
        s.hits,
        s.misses,
        s.coalesced,
        s.compiles,
        s.rejected,
        s.evictions,
        s.max_queue_depth,
        s.retries,
        s.degraded,
        s.deadline_exceeded,
        s.breaker_opens,
        s.shed,
        quote(s.breaker_state.as_str()),
        s.draining,
        s.cache_entries,
        s.queue_depth
    )
}

/// Renders a circuit as the request-side JSON `circuit` object —
/// the inverse of the request parser's gate-list branch, used
/// by clients (and the end-to-end tests) to build request bodies.
///
/// # Errors
///
/// [`ServeError::BadRequest`] if a gate angle is non-finite (JSON
/// cannot carry it).
pub fn circuit_to_json(circuit: &Circuit) -> Result<String, ServeError> {
    let mut out = format!("{{\"num_qubits\":{},\"gates\":[", circuit.num_qubits());
    for (i, gate) in circuit.gates().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&codec::gate_to_json(gate).map_err(|e| bad(e.to_string()))?);
    }
    out.push_str("]}");
    Ok(out)
}

fn bad(message: impl Into<String>) -> ServeError {
    ServeError::BadRequest {
        message: message.into(),
    }
}

/// Downgrades a JSON *shape* problem (well-formed document, wrong
/// structure) to a `bad_request`; true decode problems (syntax,
/// truncation — they carry offsets) stay [`ServeError::Decode`].
fn shape(e: DecodeError) -> ServeError {
    match e {
        DecodeError::Structure { message } => bad(message),
        other => ServeError::Decode(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::{Gate, Qubit};

    #[test]
    fn parses_a_full_request() {
        let body = r#"{
            "config": {"opt_level": 2, "strategy": "layered", "threads": 4, "proximity": "grid"},
            "jobs": [
                {"name": "gates", "circuit": {"num_qubits": 2, "gates": [["h", 0], ["cz", 0, 1]]}},
                {"name": "broken", "qasm": "not qasm"}
            ]
        }"#;
        let req = parse_request(body).unwrap();
        assert_eq!(req.overrides.opt_level, Some(OptLevel::Aggressive));
        assert_eq!(req.overrides.strategy, Some(RouterStrategy::Layered));
        assert_eq!(req.overrides.threads, Some(4));
        assert_eq!(req.jobs.len(), 2);
        let c = req.jobs[0].circuit.as_ref().unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.gates().len(), 2);
        assert_eq!(req.jobs[1].circuit.as_ref().unwrap_err().kind(), "qasm");
    }

    #[test]
    fn bad_overrides_are_bad_requests() {
        for (body, want) in [
            (r#"{"config": {"threads": 0}, "jobs": []}"#, "bad_request"),
            (
                r#"{"config": {"strategy": "x"}, "jobs": []}"#,
                "bad_request",
            ),
            (r#"{"config": {"opt_level": 7}, "jobs": []}"#, "bad_request"),
            (r#"{"jobs": 3}"#, "bad_request"),
            (r#"{}"#, "bad_request"),
            (r#"{"jobs": ["#, "decode"),
        ] {
            let err = parse_request(body).unwrap_err();
            assert_eq!(err.kind(), want, "body {body}");
        }
    }

    #[test]
    fn job_level_problems_do_not_fail_the_request() {
        let body = r#"{"jobs": [
            {"name": "both", "qasm": "x", "circuit": {"num_qubits": 1, "gates": []}},
            {"name": "neither"},
            {"name": "oob", "circuit": {"num_qubits": 1, "gates": [["h", 5]]}}
        ]}"#;
        let req = parse_request(body).unwrap();
        assert_eq!(
            req.jobs[0].circuit.as_ref().unwrap_err().kind(),
            "bad_request"
        );
        assert_eq!(
            req.jobs[1].circuit.as_ref().unwrap_err().kind(),
            "bad_request"
        );
        assert_eq!(req.jobs[2].circuit.as_ref().unwrap_err().kind(), "circuit");
    }

    #[test]
    fn circuit_json_round_trips_through_the_request_parser() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::rz(Qubit(1), 0.25));
        c.push(Gate::cx(Qubit(0), Qubit(2)));
        let body = format!(
            "{{\"jobs\":[{{\"name\":\"rt\",\"circuit\":{}}}]}}",
            circuit_to_json(&c).unwrap()
        );
        let req = parse_request(&body).unwrap();
        let parsed = req.jobs[0].circuit.as_ref().unwrap();
        assert_eq!(parsed.stable_hash(), c.stable_hash());
    }
}
