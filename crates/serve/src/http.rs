//! A deliberately small blocking HTTP/1.1 front over the engine —
//! `std::net` only, one thread per connection, `Connection: close`.
//! It exists to put the batch engine on a socket, not to be a web
//! server: no TLS, no keep-alive, no chunked bodies.
//!
//! Routes:
//!
//! | method | path          | body                                   |
//! |--------|---------------|----------------------------------------|
//! | GET    | `/v1/health`  | `{"ok":true}`                          |
//! | GET    | `/v1/stats`   | engine counter snapshot                |
//! | POST   | `/v1/compile` | batch request → per-job results        |
//!
//! Error statuses: 400 (malformed body), 404, 405, 413 (body over
//! [`Engine::max_body_bytes`]), 429 (queue full), 500, 503 (breaker
//! open — with `Retry-After` — or draining), 504 (deadline exceeded).
//!
//! Each connection thread is an unwind barrier: a panic while handling
//! a request (fault-injected via the `serve.http` point, or real) is
//! answered with a 500 instead of silently dropping the socket, and
//! never takes the server down. [`ServerHandle::drain`] supports
//! graceful shutdown: stop accepting first, then wait out in-flight
//! connections up to a deadline.

use std::io::{BufRead, BufReader, Read, Take, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::Engine;
use crate::{api, ServeError};

/// Total header-block size cap, bytes. Enforced with `Read::take`, so
/// a client sending one endless header line cannot buffer more than
/// this before being rejected.
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Per-socket read/write timeout. Connections that stall mid-request
/// (or never send one) error out instead of pinning their thread
/// forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// A running server: the bound address plus the accept-loop handle.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl ServerHandle {
    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections currently being handled.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Stops the accept loop and joins it. In-flight connection
    /// threads finish on their own.
    pub fn stop(mut self) {
        self.shutdown();
    }

    /// Graceful shutdown: stops accepting new connections *first*,
    /// then waits until every in-flight connection finishes or
    /// `deadline` elapses. Returns `true` when the server drained
    /// fully (no connections were abandoned).
    pub fn drain(mut self, deadline: Duration) -> bool {
        self.shutdown();
        let until = Instant::now() + deadline;
        loop {
            if self.active.load(Ordering::Acquire) == 0 {
                return true;
            }
            if Instant::now() >= until {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.accept_thread.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = thread.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves `engine` until the
/// handle is stopped or dropped.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve(engine: Arc<Engine>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let accept_stop = stop.clone();
    let accept_active = active.clone();
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let engine = engine.clone();
            // Counted before the spawn so a drain that starts right
            // after accept still sees this connection as in flight.
            let guard = ConnGuard::enter(accept_active.clone());
            std::thread::spawn(move || {
                let _guard = guard;
                dispatch(&engine, stream);
            });
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        active,
    })
}

/// Holds one slot in the active-connection count; releases on drop —
/// including when the connection thread unwinds.
struct ConnGuard {
    active: Arc<AtomicUsize>,
}

impl ConnGuard {
    fn enter(active: Arc<AtomicUsize>) -> ConnGuard {
        active.fetch_add(1, Ordering::AcqRel);
        ConnGuard { active }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The per-connection unwind barrier: a panic inside
/// [`handle_connection`] becomes a best-effort 500 on a clone of the
/// stream instead of a silently dropped socket.
fn dispatch(engine: &Engine, stream: TcpStream) {
    let fallback = stream.try_clone().ok();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = handle_connection(engine, stream);
    }));
    if outcome.is_err() {
        if let Some(stream) = fallback {
            let _ = respond(
                stream,
                500,
                "{\"error\":{\"kind\":\"internal\",\"message\":\"request handler panicked\"}}",
            );
        }
    }
}

/// One parsed request head.
struct RequestHead {
    method: String,
    path: String,
    content_length: Option<usize>,
}

/// Reads the request line + headers; returns `None` on malformed or
/// oversized heads (the connection is answered with 400 upstream).
///
/// The reader's `take` limit bounds how much a hostile client can make
/// us buffer: once the limit is exhausted, lines come back without a
/// trailing newline and the head is rejected — including a single
/// endless line that never contains `\n` at all.
fn read_head(reader: &mut Take<BufReader<TcpStream>>) -> Option<RequestHead> {
    let line = read_head_line(reader)?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = None;
    loop {
        let header = read_head_line(reader)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            }
        }
    }
    Some(RequestHead {
        method,
        path,
        content_length,
    })
}

/// Reads one `\n`-terminated head line within the reader's byte
/// budget; `None` on I/O error (including timeout) or when the budget
/// ran out before a newline arrived.
fn read_head_line(reader: &mut Take<BufReader<TcpStream>>) -> Option<String> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    if !line.ends_with('\n') {
        return None;
    }
    Some(line)
}

fn handle_connection(engine: &Engine, stream: TcpStream) -> std::io::Result<()> {
    // The HTTP seam: `RAA_FAULT_SPEC` can stall a connection (delay)
    // or kill its handler (panic/error → caught by `dispatch` → 500).
    match raa_fault::evaluate("serve.http") {
        raa_fault::Action::None | raa_fault::Action::Deadline => {}
        raa_fault::Action::Delay(d) => std::thread::sleep(d),
        raa_fault::Action::Error | raa_fault::Action::Panic => {
            panic!("injected fault at serve.http")
        }
    }
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut head_reader = BufReader::new(stream).take(MAX_HEADER_BYTES as u64);
    let head = read_head(&mut head_reader);
    let mut reader = head_reader.into_inner();
    let Some(head) = head else {
        return respond(
            reader.into_inner(),
            400,
            "{\"error\":{\"kind\":\"bad_request\",\"message\":\"malformed request head\"}}",
        );
    };

    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/v1/health") => respond(reader.into_inner(), 200, "{\"ok\":true}"),
        ("GET", "/v1/stats") => {
            let body = api::render_stats(&engine.stats());
            respond(reader.into_inner(), 200, &body)
        }
        ("POST", "/v1/compile") => {
            let Some(len) = head.content_length else {
                return respond(
                    reader.into_inner(),
                    411,
                    "{\"error\":{\"kind\":\"bad_request\",\"message\":\"Content-Length required\"}}",
                );
            };
            if len > engine.max_body_bytes() {
                return respond(
                    reader.into_inner(),
                    413,
                    "{\"error\":{\"kind\":\"bad_request\",\"message\":\"request body too large\"}}",
                );
            }
            let mut body = vec![0u8; len];
            if reader.read_exact(&mut body).is_err() {
                return respond(
                    reader.into_inner(),
                    400,
                    "{\"error\":{\"kind\":\"bad_request\",\"message\":\"truncated body\"}}",
                );
            }
            let Ok(body) = String::from_utf8(body) else {
                return respond(
                    reader.into_inner(),
                    400,
                    "{\"error\":{\"kind\":\"bad_request\",\"message\":\"body is not UTF-8\"}}",
                );
            };
            match api::run(engine, &body) {
                Ok(rendered) => respond(reader.into_inner(), 200, &rendered),
                Err(e) => respond_with(
                    reader.into_inner(),
                    status_of(&e),
                    &extra_headers(&e),
                    &api::render_error(&e),
                ),
            }
        }
        // Known path, wrong method → 405; unknown path → 404.
        (_, "/v1/health" | "/v1/stats" | "/v1/compile") => respond(
            reader.into_inner(),
            405,
            "{\"error\":{\"kind\":\"bad_request\",\"message\":\"method not allowed\"}}",
        ),
        _ => respond(
            reader.into_inner(),
            404,
            "{\"error\":{\"kind\":\"bad_request\",\"message\":\"no such endpoint\"}}",
        ),
    }
}

/// The HTTP status for a batch-level failure.
fn status_of(e: &ServeError) -> u16 {
    match e {
        ServeError::QueueFull { .. } => 429,
        ServeError::BadRequest { .. } | ServeError::Qasm(_) | ServeError::Circuit(_) => 400,
        ServeError::Decode(_) => 400,
        ServeError::Compile { .. } => 500,
        ServeError::DeadlineExceeded { .. } => 504,
        ServeError::BreakerOpen { .. } | ServeError::Draining => 503,
    }
}

/// Extra response headers a failure carries (each line `\r\n`-
/// terminated): an open breaker tells the client when to come back.
fn extra_headers(e: &ServeError) -> String {
    match e {
        ServeError::BreakerOpen { retry_after_ms } => {
            format!("Retry-After: {}\r\n", retry_after_ms.div_ceil(1000).max(1))
        }
        _ => String::new(),
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

fn respond(stream: TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    respond_with(stream, status, "", body)
}

fn respond_with(
    mut stream: TcpStream,
    status: u16,
    extra_headers: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;

    /// A minimal blocking HTTP client for tests and the CLI.
    pub(crate) fn roundtrip(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> (u16, String) {
        crate::request(addr, method, path, body).expect("http roundtrip failed")
    }

    #[test]
    fn health_stats_and_error_statuses() {
        let engine = Arc::new(Engine::new(ServeConfig::default()));
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let addr = server.addr();

        assert_eq!(
            roundtrip(addr, "GET", "/v1/health", None),
            (200, "{\"ok\":true}".into())
        );
        let (status, stats) = roundtrip(addr, "GET", "/v1/stats", None);
        assert_eq!(status, 200);
        assert!(stats.contains("\"compiles\":0"), "{stats}");

        // Unknown paths are 404 whatever the method; known paths with
        // the wrong method are 405.
        let (status, _) = roundtrip(addr, "GET", "/v1/nope", None);
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, "DELETE", "/v1/nope", None);
        assert_eq!(status, 404);
        for (method, path) in [
            ("DELETE", "/v1/compile"),
            ("GET", "/v1/compile"),
            ("POST", "/v1/health"),
            ("POST", "/v1/stats"),
        ] {
            let (status, _) = roundtrip(addr, method, path, None);
            assert_eq!(status, 405, "{method} {path}");
        }
        let (status, body) = roundtrip(addr, "POST", "/v1/compile", Some("{not json"));
        assert_eq!(status, 400);
        assert!(body.contains("\"kind\":\"decode\""), "{body}");

        server.stop();
    }

    #[test]
    fn endless_header_lines_are_bounded_and_rejected() {
        let engine = Arc::new(Engine::new(ServeConfig::default()));
        let server = serve(engine, "127.0.0.1:0").unwrap();

        // One request line with no newline, exactly the header budget:
        // the server must reject with 400 after buffering at most
        // MAX_HEADER_BYTES, not wait for (or buffer) an endless line.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(&vec![b'x'; MAX_HEADER_BYTES]).unwrap();
        stream.flush().unwrap();
        let mut status_line = String::new();
        BufReader::new(stream).read_line(&mut status_line).unwrap();
        assert!(status_line.contains("400"), "{status_line:?}");

        server.stop();
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let engine = Arc::new(Engine::new(ServeConfig {
            max_body_bytes: 64,
            ..ServeConfig::default()
        }));
        let server = serve(engine, "127.0.0.1:0").unwrap();
        let big = "x".repeat(65);
        let (status, _) = roundtrip(server.addr(), "POST", "/v1/compile", Some(&big));
        assert_eq!(status, 413);
    }
}
