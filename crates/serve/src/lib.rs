//! **raa-serve** — the batch-compilation service for the Atomique
//! (ISCA 2024) reproduction.
//!
//! The compiler itself ([`atomique::compile`]) is a pure function; in
//! practice it is driven over many circuits and many configurations —
//! design-space sweeps, CI suites, notebook sessions — with heavy
//! repetition. This crate packages it as a long-lived engine:
//!
//! * [`engine::Engine`] — a bounded admission queue (backpressure is
//!   an explicit [`ServeError::QueueFull`] rejection, not an unbounded
//!   pile-up), worker fan-out over [`raa_par::WorkPool`], and a
//!   single-flight LRU compile cache keyed on
//!   `(Circuit::stable_hash, AtomiqueConfig::fingerprint)` — identical
//!   concurrent submissions compile exactly once.
//! * [`api`] — the JSON request/response layer (QASM or gate-list
//!   jobs in; base64 binary-codec ISA bytes, stats, per-stage timings
//!   and telemetry counters out).
//! * [`http`] — a dependency-free blocking HTTP/1.1 front
//!   (`std::net` only), plus the `raa-serve` CLI binary.
//!
//! Every served stream is the *verified* ISA: the engine forces
//! `emit_isa` + `verify_isa` on, so bytes only leave the service after
//! the independent legality/replay oracle has passed them. Telemetry
//! rides `raa-trace`: `serve.cache.hit` / `serve.cache.miss` /
//! `serve.cache.coalesced` / `serve.compile` / `serve.queue.reject` /
//! `serve.cache.evict`.
//!
//! ```
//! use raa_serve::engine::{Engine, Job, ServeConfig};
//! use raa_circuit::{Circuit, Gate, Qubit};
//!
//! let engine = Engine::new(ServeConfig::default());
//! let mut bell = Circuit::new(2);
//! bell.push(Gate::h(Qubit(0)));
//! bell.push(Gate::cx(Qubit(0), Qubit(1)));
//! let jobs = [Job { name: "bell".into(), circuit: bell }];
//! let out = engine.submit(engine.base(), &jobs)?;
//! let result = out[0].result.as_ref().unwrap();
//! assert!(result.entry.isa_bytes.starts_with(b"RAA-ISA\0"));
//! # Ok::<(), raa_serve::ServeError>(())
//! ```

#![deny(missing_docs)]

pub mod api;
pub mod b64;
pub mod engine;
mod error;
pub mod http;

pub use error::ServeError;

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A minimal blocking HTTP/1.1 client request against a served
/// engine: returns `(status, body)`. Shared by the CLI, the tests and
/// the bench harness — it speaks exactly the dialect [`http`] serves
/// (`Connection: close`, explicit `Content-Length`).
///
/// # Errors
///
/// Propagates socket failures; a response without a parsable status
/// line or `Content-Length` is reported as
/// [`std::io::ErrorKind::InvalidData`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let len = content_length.ok_or_else(|| bad("missing Content-Length"))?;
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf)?;
    let text = String::from_utf8(buf).map_err(|_| bad("non-UTF-8 body"))?;
    Ok((status, text))
}
