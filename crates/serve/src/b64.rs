//! Standard (RFC 4648) base64, used to carry binary ISA streams inside
//! JSON response bodies. Dependency-free like the rest of the
//! workspace; padding is always emitted and always required.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as padded standard base64.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let word = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(word >> 18) as usize & 63] as char);
        out.push(ALPHABET[(word >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(word >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[word as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// The byte offset at which a base64 document stopped making sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidBase64 {
    /// Offset of the offending character (or `text.len()` for bad
    /// overall length).
    pub offset: usize,
}

impl std::fmt::Display for InvalidBase64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid base64 at byte {}", self.offset)
    }
}

impl std::error::Error for InvalidBase64 {}

fn sextet(c: u8, offset: usize) -> Result<u32, InvalidBase64> {
    match c {
        b'A'..=b'Z' => Ok((c - b'A') as u32),
        b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
        b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(InvalidBase64 { offset }),
    }
}

/// Decodes padded standard base64.
///
/// # Errors
///
/// [`InvalidBase64`] (with the byte offset) on characters outside the
/// alphabet, misplaced padding, or a length that is not a multiple of
/// four.
pub fn decode(text: &str) -> Result<Vec<u8>, InvalidBase64> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(InvalidBase64 {
            offset: bytes.len(),
        });
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (group, chunk) in bytes.chunks(4).enumerate() {
        let base = group * 4;
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        // Padding may only be the final one or two characters of the
        // final group.
        if pad > 2 || (pad > 0 && base + 4 != bytes.len()) {
            return Err(InvalidBase64 { offset: base });
        }
        if chunk[..4 - pad].contains(&b'=') {
            return Err(InvalidBase64 { offset: base });
        }
        let mut word = 0u32;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if i >= 4 - pad {
                0
            } else {
                sextet(c, base + i)?
            };
            word = (word << 6) | v;
        }
        out.push((word >> 16) as u8);
        if pad < 2 {
            out.push((word >> 8) as u8);
        }
        if pad < 1 {
            out.push(word as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_length_mod_three() {
        for len in 0..48usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let text = encode(&data);
            assert_eq!(text.len() % 4, 0);
            assert_eq!(decode(&text).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(decode("Zg=").unwrap_err(), InvalidBase64 { offset: 3 });
        assert_eq!(decode("Z!==").unwrap_err(), InvalidBase64 { offset: 1 });
        assert_eq!(decode("====").unwrap_err(), InvalidBase64 { offset: 0 });
        assert_eq!(decode("Zg==Zg==").unwrap_err(), InvalidBase64 { offset: 0 });
        assert!(decode("Zm9v").is_ok());
    }
}
