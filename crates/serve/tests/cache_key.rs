//! Cache-key soundness for the batch-compilation engine.
//!
//! The cache key is `(Circuit::stable_hash, AtomiqueConfig::
//! fingerprint)`; these tests pin the two properties that make it
//! sound: *no staleness* (every distinct compilation axis lands in a
//! distinct entry, each matching its own direct compile) and *single
//! flight* (identical concurrent submissions compile exactly once —
//! proven through the `serve.compile` telemetry counter, not just
//! engine bookkeeping).

use std::sync::{Arc, Barrier};

use atomique::{trace, AtomiqueConfig, OptLevel, RouterStrategy};
use raa_circuit::{Circuit, Gate, Qubit};
use raa_isa::codec;
use raa_serve::engine::{CacheStatus, Engine, Job, ServeConfig};

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(Qubit(0)));
    for i in 0..n - 1 {
        c.push(Gate::cx(Qubit(i as u32), Qubit(i as u32 + 1)));
    }
    c
}

fn job(name: &str, circuit: &Circuit) -> Job {
    Job {
        name: name.into(),
        circuit: circuit.clone(),
    }
}

/// Compiles directly (no cache) under the same forced serving flags
/// the engine applies, returning the verified ISA bytes.
fn direct_bytes(circuit: &Circuit, cfg: &AtomiqueConfig) -> Vec<u8> {
    let mut cfg = cfg.clone();
    cfg.emit_isa = true;
    cfg.verify_isa = true;
    cfg.trace = true;
    let out = atomique::compile(circuit, &cfg).expect("direct compile failed");
    codec::to_bytes(out.isa.as_ref().expect("isa attached"))
}

/// Distinct configs must never alias: a cache warmed at one opt level
/// serves the *other* level from a different entry, and each entry is
/// bit-identical to its own direct compile.
#[test]
fn distinct_opt_levels_never_serve_stale_entries() {
    let engine = Engine::new(ServeConfig::default());
    let circuit = ghz(5);

    let mut o0 = engine.base().clone();
    o0.opt_level = OptLevel::None;
    let mut o2 = engine.base().clone();
    o2.opt_level = OptLevel::Aggressive;

    let cold0 = engine.submit(&o0, &[job("g", &circuit)]).unwrap();
    let cold2 = engine.submit(&o2, &[job("g", &circuit)]).unwrap();
    let warm0 = engine.submit(&o0, &[job("g", &circuit)]).unwrap();
    let warm2 = engine.submit(&o2, &[job("g", &circuit)]).unwrap();

    // Both configs compiled (no aliasing), both rehits hit.
    assert_eq!(cold0[0].result.as_ref().unwrap().status, CacheStatus::Miss);
    assert_eq!(cold2[0].result.as_ref().unwrap().status, CacheStatus::Miss);
    assert_eq!(warm0[0].result.as_ref().unwrap().status, CacheStatus::Hit);
    assert_eq!(warm2[0].result.as_ref().unwrap().status, CacheStatus::Hit);

    // Each entry matches its own direct compile — never the other's.
    let b0 = &warm0[0].result.as_ref().unwrap().entry.isa_bytes;
    let b2 = &warm2[0].result.as_ref().unwrap().entry.isa_bytes;
    assert_eq!(*b0, direct_bytes(&circuit, &o0));
    assert_eq!(*b2, direct_bytes(&circuit, &o2));
    assert_eq!(engine.stats().compiles, 2);
}

/// Every compilation axis the API exposes as an override produces its
/// own cache entry: warming one axis value never hits on another.
#[test]
fn every_override_axis_gets_its_own_entry() {
    let engine = Engine::new(ServeConfig::default());
    let circuit = ghz(4);
    let base = engine.base().clone();

    let mut layered = base.clone();
    layered.router_strategy = RouterStrategy::Layered;
    let mut threaded = base.clone();
    threaded.threads = 4;
    let mut aggressive = base.clone();
    aggressive.opt_level = OptLevel::Aggressive;

    for cfg in [&base, &layered, &threaded, &aggressive] {
        let out = engine.submit(cfg, &[job("g", &circuit)]).unwrap();
        assert_eq!(out[0].result.as_ref().unwrap().status, CacheStatus::Miss);
    }
    assert_eq!(engine.stats().compiles, 4);
    assert_eq!(engine.stats().cache_entries, 4);

    // threads=1 vs threads=4 are distinct entries by fingerprint, yet
    // bit-identical by the parallel-determinism guarantee — the cache
    // distinguishes them without ever being *wrong* about either.
    let warm1 = engine.submit(&base, &[job("g", &circuit)]).unwrap();
    let warm4 = engine.submit(&threaded, &[job("g", &circuit)]).unwrap();
    let r1 = warm1[0].result.as_ref().unwrap();
    let r4 = warm4[0].result.as_ref().unwrap();
    assert_eq!(r1.status, CacheStatus::Hit);
    assert_eq!(r4.status, CacheStatus::Hit);
    assert_eq!(r1.entry.isa_bytes, r4.entry.isa_bytes);
}

/// Eight identical jobs in one batch over four workers: exactly one
/// compile happens, asserted through the `serve.compile` raa-trace
/// counter recorded in the submitter's session (WorkPool::map links
/// worker telemetry back into it).
#[test]
fn identical_jobs_within_a_batch_compile_once() {
    let engine = Engine::new(ServeConfig {
        workers: 4,
        ..ServeConfig::default()
    });
    let circuit = ghz(4);
    let jobs: Vec<Job> = (0..8).map(|i| job(&format!("j{i}"), &circuit)).collect();

    trace::begin(trace::Level::Detail);
    let out = engine.submit(engine.base(), &jobs).unwrap();
    let report = trace::end();

    assert_eq!(report.counter("serve.compile"), 1);
    assert_eq!(report.counter("serve.cache.miss"), 1);
    assert_eq!(report.counter("serve.cache.coalesced"), 7);

    let statuses: Vec<CacheStatus> = out
        .iter()
        .map(|o| o.result.as_ref().unwrap().status)
        .collect();
    assert_eq!(statuses[0], CacheStatus::Miss);
    assert!(statuses[1..].iter().all(|&s| s == CacheStatus::Coalesced));

    // All eight results share the same bytes.
    let first = &out[0].result.as_ref().unwrap().entry.isa_bytes;
    for o in &out[1..] {
        assert_eq!(&o.result.as_ref().unwrap().entry.isa_bytes, first);
    }
}

/// Identical submissions racing from different threads coalesce into
/// one compile: the engine's single-flight map makes the loser wait
/// on the winner instead of duplicating the work.
#[test]
fn racing_identical_submissions_compile_once() {
    let engine = Arc::new(Engine::new(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }));
    let circuit = ghz(5);
    let barrier = Arc::new(Barrier::new(2));

    let threads: Vec<_> = (0..2)
        .map(|i| {
            let engine = engine.clone();
            let circuit = circuit.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                let out = engine
                    .submit(engine.base(), &[job(&format!("t{i}"), &circuit)])
                    .unwrap();
                out[0].result.as_ref().unwrap().clone()
            })
        })
        .collect();
    let results: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();

    assert_eq!(engine.stats().compiles, 1, "single flight was violated");
    assert_eq!(results[0].entry.isa_bytes, results[1].entry.isa_bytes);
    // One thread led; the other either coalesced onto the in-flight
    // compile or arrived after publication and hit the cache.
    let leaders = results
        .iter()
        .filter(|r| r.status == CacheStatus::Miss)
        .count();
    assert_eq!(leaders, 1);
}
