//! Graceful-shutdown regression: SIGTERM against the real `raa-serve`
//! binary while a slow compile is in flight. The server must stop
//! accepting, let the in-flight request finish (bounded by
//! `--drain-ms`), answer it with a full 200, and exit 0.
//!
//! The slow compile is arranged deterministically: the child is
//! started with `RAA_FAULT_SPEC` delaying the first leader compile,
//! so no timing luck is involved in "a request is mid-compile when
//! the signal lands".

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::time::Duration;

use raa_circuit::qasm;
use raa_circuit::{Circuit, Gate, Qubit};
use raa_serve::request;

/// Sends `sig` to `pid` via the libc `kill(2)` std already links —
/// hermetic (no dependency on a `kill` binary being on PATH).
fn send_signal(pid: u32, sig: i32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let rc = unsafe { kill(pid as i32, sig) };
    assert_eq!(rc, 0, "kill({pid}, {sig}) failed");
}

#[test]
fn sigterm_drains_the_in_flight_request_before_exiting() {
    const SIGTERM: i32 = 15;

    let mut child = Command::new(env!("CARGO_BIN_EXE_raa-serve"))
        .args(["serve", "--addr", "127.0.0.1:0", "--drain-ms", "8000"])
        .env("RAA_FAULT_SPEC", "serve.compile:delay=700ms@1;seed=1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn raa-serve");

    // First stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr: SocketAddr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable listen line: {line:?}"));

    // Fire the slow request (first leader compile sleeps 700 ms).
    let in_flight = std::thread::spawn(move || {
        let mut ghz = Circuit::new(3);
        ghz.push(Gate::h(Qubit(0)));
        ghz.push(Gate::cx(Qubit(0), Qubit(1)));
        ghz.push(Gate::cx(Qubit(1), Qubit(2)));
        let text = qasm::to_qasm(&ghz);
        let body = format!("{{\"jobs\":[{{\"name\":\"slow\",\"qasm\":{text:?}}}]}}");
        request(addr, "POST", "/v1/compile", Some(&body)).expect("in-flight request answered")
    });

    // Let it connect and enter the compile, then signal mid-flight.
    std::thread::sleep(Duration::from_millis(200));
    send_signal(child.id(), SIGTERM);

    // Drain contract: the in-flight request still completes fully…
    let (status, text) = in_flight.join().expect("request thread");
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"ok\":true"), "{text}");

    // …and the process exits cleanly once drained.
    let status = child.wait().expect("child wait");
    assert!(status.success(), "raa-serve exited {status}");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut stderr)
        .expect("read stderr");
    assert!(stderr.contains("drained cleanly"), "stderr: {stderr}");
}
