//! Solver-based RAA compilers: Tan-Solver and Tan-IterP (paper Fig. 14).
//!
//! OLSQ-DPQA (Tan et al.) compiles reconfigurable-array circuits with an
//! SMT solver (optimal, exponential time) or with an "iterative peeling"
//! relaxation (greedy). Both freely re-grab atoms between the SLM and the
//! AOD, which Atomique's paper criticizes for its transfer-induced atom
//! loss.
//!
//! Substitution (DESIGN.md §3): instead of Z3 we run an exhaustive
//! branch-and-bound over stage schedules with the same objective
//! (minimum stage count) and a wall-clock timeout — reproducing both
//! relevant behaviours: near-optimal schedules on small circuits and
//! exponential compile-time blow-up (the paper's 1000× speed-up claim).
//!
//! A *stage* executes any set of qubit-disjoint frontier gates (DPQA can
//! realize such sets by re-grabbing atoms); each gate whose movable atom
//! was not already in an AOD trap costs a pick-up transfer, and every
//! trapped atom is eventually dropped back (one more transfer).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use raa_circuit::{Circuit, DagSchedule, GateIdx, Layering};
use raa_physics::{
    gate_phase_fidelity, transfer_fidelity, FidelityBreakdown, GatePhaseStats, HardwareParams,
    MovementLedger,
};

/// Result of a solver-based compilation.
#[derive(Debug, Clone)]
pub struct TanResult {
    /// Number of movement/gate stages.
    pub stages: usize,
    /// Two-qubit gates executed.
    pub two_qubit_gates: usize,
    /// One-qubit gates executed.
    pub one_qubit_gates: usize,
    /// SLM↔AOD transfers performed.
    pub transfers: usize,
    /// Fidelity estimate (includes transfer loss).
    pub fidelity: FidelityBreakdown,
    /// Wall-clock compile time, seconds.
    pub compile_time_s: f64,
    /// Whether the solver hit its timeout (greedy fallback reported).
    pub timed_out: bool,
    /// The stage schedule: per stage, the executed two-qubit gate
    /// indices of the input circuit. Consumed by the ISA lowering
    /// ([`crate::lower_tan`]).
    pub schedule: Vec<Vec<GateIdx>>,
}

impl TanResult {
    /// Total estimated fidelity.
    pub fn total_fidelity(&self) -> f64 {
        self.fidelity.total()
    }
}

/// The greedy iterative-peeling compiler (Tan-IterP).
pub fn tan_iterp(circuit: &Circuit, params: &HardwareParams) -> TanResult {
    let start = Instant::now();
    let schedule = greedy_schedule(circuit);
    let mut r = evaluate(circuit, &schedule, params);
    r.compile_time_s = start.elapsed().as_secs_f64();
    r
}

/// The exhaustive optimal compiler (Tan-Solver) with a wall-clock timeout.
///
/// Searches branch-and-bound for the minimum-stage schedule; on timeout
/// the best schedule found so far is evaluated and `timed_out` is set.
pub fn tan_solver(circuit: &Circuit, params: &HardwareParams, timeout: Duration) -> TanResult {
    let start = Instant::now();
    let deadline = start + timeout;
    let greedy = greedy_schedule(circuit);
    let mut best = greedy.clone();
    let mut timed_out = false;

    let twoq: Vec<(GateIdx, u32, u32)> = two_qubit_skeleton(circuit);
    if !twoq.is_empty() {
        // OLSQ-style iterative deepening: for increasing stage budgets K,
        // exhaustively decide whether a K-stage schedule exists. Proving
        // unsatisfiability of K−1 before accepting K is what makes real
        // SMT-based compilation exponential; the same happens here.
        let root = DagSchedule::new(circuit);
        let mut searcher = Searcher {
            circuit,
            twoq: &twoq,
            budget: 0,
            found: None,
            deadline,
            timed_out: &mut timed_out,
            nodes: 0,
        };
        let lb = searcher.lower_bound(&root);
        for k in lb..=greedy.len() {
            searcher.budget = k;
            searcher.found = None;
            searcher.dfs(root.clone(), Vec::new());
            if *searcher.timed_out {
                break;
            }
            if let Some(schedule) = searcher.found.take() {
                best = schedule;
                break;
            }
        }
        // Second solver phase (as in OLSQ-DPQA): among all minimum-stage
        // schedules, exhaustively minimize the transfer count. This is the
        // genuinely exponential part for non-trivial circuits.
        if !timed_out {
            let mut refiner = Refiner {
                circuit,
                budget: best.len(),
                best_transfers: count_transfers(circuit, &best),
                best: &mut best,
                deadline,
                timed_out: &mut timed_out,
                nodes: 0,
            };
            refiner.dfs(root, Vec::new());
        }
    }

    let mut r = evaluate(circuit, &best, params);
    r.compile_time_s = start.elapsed().as_secs_f64();
    r.timed_out = timed_out;
    r
}

/// A schedule: per stage, the executed two-qubit gate indices.
type Schedule = Vec<Vec<GateIdx>>;

fn two_qubit_skeleton(circuit: &Circuit) -> Vec<(GateIdx, u32, u32)> {
    circuit
        .gates()
        .iter()
        .enumerate()
        .filter_map(|(i, g)| g.pair().map(|(a, b)| (i, a.0, b.0)))
        .collect()
}

/// DPQA grid side used to place qubits for the movement-compatibility
/// check (Tan et al. use 16×16 arrays).
const TAN_GRID: i32 = 16;

/// Static grid position of a qubit in the DPQA layout.
fn tan_pos(q: u32) -> (i32, i32) {
    (q as i32 % TAN_GRID, q as i32 / TAN_GRID)
}

/// The mover/target geometry of a gate: the higher-indexed qubit rides the
/// AOD toward its partner.
fn gate_geometry(circuit: &Circuit, g: GateIdx) -> ((i32, i32), (i32, i32)) {
    let (a, b) = circuit.gates()[g].pair().expect("2Q gate");
    let mover = a.0.max(b.0);
    let anchor = a.0.min(b.0);
    (tan_pos(mover), tan_pos(anchor))
}

/// Whether two gates can share a DPQA stage: their movers' source and
/// target coordinates must not cross in either axis (the AOD row/column
/// order-preservation constraint of the DPQA formulation).
fn stage_compatible(circuit: &Circuit, g1: GateIdx, g2: GateIdx) -> bool {
    let (s1, t1) = gate_geometry(circuit, g1);
    let (s2, t2) = gate_geometry(circuit, g2);
    // Per axis: the relative order of the two movers must be the same
    // before and after the move (equal stays equal, less stays less).
    let ok = |s_a: i32, s_b: i32, t_a: i32, t_b: i32| (s_a - s_b).signum() == (t_a - t_b).signum();
    ok(s1.0, s2.0, t1.0, t2.0) && ok(s1.1, s2.1, t1.1, t2.1)
}

/// Greedy maximal frontier peeling under qubit-disjointness and the
/// movement-compatibility constraint (Tan-IterP).
fn greedy_schedule(circuit: &Circuit) -> Schedule {
    let mut sched = DagSchedule::new(circuit);
    let mut out = Vec::new();
    while !sched.is_done() {
        // Drain one-qubit gates (they do not occupy stages).
        drain_one_qubit(circuit, &mut sched);
        if sched.is_done() {
            break;
        }
        let mut used: HashSet<u32> = HashSet::new();
        let mut stage: Vec<GateIdx> = Vec::new();
        for g in sched.front().to_vec() {
            let (a, b) = circuit.gates()[g].pair().expect("front is 2Q after drain");
            if !used.contains(&a.0)
                && !used.contains(&b.0)
                && stage.iter().all(|&h| stage_compatible(circuit, g, h))
            {
                used.insert(a.0);
                used.insert(b.0);
                stage.push(g);
            }
        }
        sched.execute_all(&stage);
        out.push(stage);
    }
    out
}

fn drain_one_qubit(circuit: &Circuit, sched: &mut DagSchedule) {
    loop {
        let ones: Vec<GateIdx> = sched
            .front()
            .iter()
            .copied()
            .filter(|&g| circuit.gates()[g].is_one_qubit())
            .collect();
        if ones.is_empty() {
            return;
        }
        sched.execute_all(&ones);
    }
}

struct Searcher<'a> {
    circuit: &'a Circuit,
    twoq: &'a [(GateIdx, u32, u32)],
    /// Current stage budget K of the iterative-deepening pass.
    budget: usize,
    /// A schedule within budget, if one was found.
    found: Option<Schedule>,
    deadline: Instant,
    timed_out: &'a mut bool,
    nodes: usize,
}

impl Searcher<'_> {
    /// Lower bound on remaining stages: the busiest qubit's remaining gate
    /// count (one gate per qubit per stage).
    fn lower_bound(&self, sched: &DagSchedule) -> usize {
        let mut per_qubit = std::collections::HashMap::new();
        for &(g, a, b) in self.twoq {
            if !sched.is_executed(g) {
                *per_qubit.entry(a).or_insert(0usize) += 1;
                *per_qubit.entry(b).or_insert(0usize) += 1;
            }
        }
        per_qubit.values().copied().max().unwrap_or(0)
    }

    fn dfs(&mut self, mut sched: DagSchedule, stages: Schedule) {
        if self.found.is_some() || *self.timed_out {
            return;
        }
        self.nodes += 1;
        if self.nodes.is_multiple_of(256) && Instant::now() >= self.deadline {
            *self.timed_out = true;
            return;
        }
        drain_one_qubit(self.circuit, &mut sched);
        if sched.is_done() {
            self.found = Some(stages);
            return;
        }
        // Infeasible within the budget K?
        if stages.len() + self.lower_bound(&sched) > self.budget {
            return;
        }
        // Enumerate maximal qubit-disjoint subsets of the frontier (capped).
        let front: Vec<GateIdx> = sched
            .front()
            .iter()
            .copied()
            .filter(|&g| self.circuit.gates()[g].is_two_qubit())
            .collect();
        let subsets = maximal_disjoint_subsets(self.circuit, &front, 24);
        for subset in subsets {
            if self.found.is_some() || *self.timed_out {
                return;
            }
            let mut next = sched.clone();
            next.execute_all(&subset);
            let mut st = stages.clone();
            st.push(subset);
            self.dfs(next, st);
        }
    }
}

/// Phase-2 searcher: exhaustively enumerates minimum-stage schedules and
/// keeps the one with the fewest transfers.
struct Refiner<'a> {
    circuit: &'a Circuit,
    budget: usize,
    best_transfers: usize,
    best: &'a mut Schedule,
    deadline: Instant,
    timed_out: &'a mut bool,
    nodes: usize,
}

impl Refiner<'_> {
    fn dfs(&mut self, mut sched: DagSchedule, stages: Schedule) {
        if *self.timed_out {
            return;
        }
        self.nodes += 1;
        if self.nodes.is_multiple_of(256) && Instant::now() >= self.deadline {
            *self.timed_out = true;
            return;
        }
        drain_one_qubit(self.circuit, &mut sched);
        if sched.is_done() {
            let t = count_transfers(self.circuit, &stages);
            if t < self.best_transfers {
                self.best_transfers = t;
                *self.best = stages;
            }
            return;
        }
        if stages.len() >= self.budget {
            return;
        }
        let front: Vec<GateIdx> = sched
            .front()
            .iter()
            .copied()
            .filter(|&g| self.circuit.gates()[g].is_two_qubit())
            .collect();
        for subset in maximal_disjoint_subsets(self.circuit, &front, 24) {
            if *self.timed_out {
                return;
            }
            let mut next = sched.clone();
            next.execute_all(&subset);
            let mut st = stages.clone();
            st.push(subset);
            self.dfs(next, st);
        }
    }
}

/// Transfer count of a schedule under the pick-up/drop model of
/// [`evaluate`].
fn count_transfers(circuit: &Circuit, schedule: &Schedule) -> usize {
    let mut in_aod: HashSet<u32> = HashSet::new();
    let mut transfers = 0usize;
    for stage in schedule {
        for &g in stage {
            let (a, b) = circuit.gates()[g].pair().expect("2Q");
            if !in_aod.contains(&a.0) && !in_aod.contains(&b.0) {
                transfers += 1;
                in_aod.insert(a.0);
            }
        }
    }
    transfers + in_aod.len()
}

/// Enumerates maximal stage-compatible subsets of `front`, at most `cap`.
fn maximal_disjoint_subsets(circuit: &Circuit, front: &[GateIdx], cap: usize) -> Vec<Vec<GateIdx>> {
    let mut out = Vec::new();
    let mut chosen = Vec::new();
    let mut used = HashSet::new();
    enumerate(circuit, front, 0, &mut chosen, &mut used, &mut out, cap);
    if out.is_empty() && !front.is_empty() {
        // Degenerate safety: a single gate is always a valid stage.
        out.push(vec![front[0]]);
    }
    out
}

fn enumerate(
    circuit: &Circuit,
    front: &[GateIdx],
    i: usize,
    chosen: &mut Vec<GateIdx>,
    used: &mut HashSet<u32>,
    out: &mut Vec<Vec<GateIdx>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    if i == front.len() {
        if !chosen.is_empty() {
            out.push(chosen.clone());
        }
        return;
    }
    let g = front[i];
    let (a, b) = circuit.gates()[g].pair().expect("2Q front");
    let fits = !used.contains(&a.0)
        && !used.contains(&b.0)
        && chosen.iter().all(|&h| stage_compatible(circuit, g, h));
    if fits {
        chosen.push(g);
        used.insert(a.0);
        used.insert(b.0);
        enumerate(circuit, front, i + 1, chosen, used, out, cap);
        chosen.pop();
        used.remove(&a.0);
        used.remove(&b.0);
        // Excluding a fitting gate is only useful if it conflicts with a
        // later front gate (qubit overlap or movement incompatibility).
        let conflicts_later = front[i + 1..]
            .iter()
            .any(|&h| !stage_compatible(circuit, g, h));
        if conflicts_later {
            enumerate(circuit, front, i + 1, chosen, used, out, cap);
        }
    } else {
        enumerate(circuit, front, i + 1, chosen, used, out, cap);
    }
}

/// Evaluates a schedule with the paper's fidelity model, including the
/// transfer accounting the Tan compilers incur.
fn evaluate(circuit: &Circuit, schedule: &Schedule, params: &HardwareParams) -> TanResult {
    let two_q: usize = schedule.iter().map(|s| s.len()).sum();
    let one_q = circuit.one_qubit_count();

    // Transfer accounting: each gate's movable atom must be in an AOD
    // trap; picking up costs one transfer, and every picked-up atom is
    // dropped at the end (one more). The atom with more future gates
    // stays trapped across stages.
    let mut in_aod: HashSet<u32> = HashSet::new();
    let mut transfers = 0usize;
    let mut ledger = MovementLedger::new(params);
    let hop = params.atom_distance_um * 1e-6;
    for stage in schedule {
        let mut moved: Vec<(u32, f64)> = Vec::new();
        for &g in stage {
            let (a, b) = circuit.gates()[g].pair().expect("schedule holds 2Q gates");
            let mover = if in_aod.contains(&a.0) {
                a.0
            } else if in_aod.contains(&b.0) {
                b.0
            } else {
                transfers += 1; // pick-up
                in_aod.insert(a.0);
                a.0
            };
            moved.push((mover, hop));
        }
        ledger.record_move(&moved, params.t_move_s, circuit.num_qubits());
        for &(mover, _) in &moved {
            ledger.record_two_qubit_gate(&[mover]);
        }
        // Cooling, as for any atom-array machine.
        let hot: Vec<u32> = in_aod.iter().copied().collect();
        if ledger.needs_cooling(hot.iter().copied()) {
            ledger.cool_array(&hot);
        }
    }
    transfers += in_aod.len(); // final drops

    let one_q_layers = {
        let l = Layering::new(circuit);
        (l.depth() as usize).saturating_sub(l.two_qubit_depth() as usize)
    };
    let phase = GatePhaseStats {
        num_qubits: circuit.num_qubits(),
        one_qubit_gates: one_q,
        two_qubit_gates: two_q,
        one_qubit_time_s: one_q_layers as f64 * params.one_qubit_time_s,
        two_qubit_time_s: schedule.len() as f64 * params.two_qubit_time_s,
    };
    let (f1, f2) = gate_phase_fidelity(params, &phase);
    let transfer = transfer_fidelity(
        params,
        transfers,
        transfers as f64 * params.t_transfer_s,
        circuit.num_qubits(),
    );
    let fidelity = FidelityBreakdown {
        one_qubit: f1,
        two_qubit: f2,
        transfer,
        move_heating: ledger.f_heating(),
        move_cooling: ledger.f_cooling(),
        move_loss: ledger.f_loss(),
        move_decoherence: ledger.f_decoherence(),
    };
    TanResult {
        stages: schedule.len(),
        two_qubit_gates: two_q,
        one_qubit_gates: one_q,
        transfers,
        fidelity,
        compile_time_s: 0.0,
        timed_out: false,
        schedule: schedule.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::{Gate, Qubit};

    fn params() -> HardwareParams {
        HardwareParams::neutral_atom()
    }

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..n - 1 {
            c.push(Gate::cz(Qubit(i as u32), Qubit(i as u32 + 1)));
        }
        c
    }

    #[test]
    fn iterp_parallelizes_disjoint_gates() {
        let mut c = Circuit::new(6);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(2), Qubit(3)));
        c.push(Gate::cz(Qubit(4), Qubit(5)));
        let r = tan_iterp(&c, &params());
        assert_eq!(r.stages, 1);
        assert_eq!(r.two_qubit_gates, 3);
        assert!(r.transfers >= 3);
    }

    #[test]
    fn solver_matches_or_beats_greedy() {
        // Interleaved chain: greedy peeling can be suboptimal; the solver
        // must never be worse.
        let c = chain(8);
        let g = tan_iterp(&c, &params());
        let s = tan_solver(&c, &params(), Duration::from_secs(5));
        assert!(
            s.stages <= g.stages,
            "solver {} > greedy {}",
            s.stages,
            g.stages
        );
        assert!(!s.timed_out);
        assert_eq!(s.two_qubit_gates, g.two_qubit_gates);
    }

    #[test]
    fn solver_is_slower_than_greedy() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = Circuit::new(10);
        for _ in 0..30 {
            let a = rng.random_range(0..10u32);
            let mut b = rng.random_range(0..10u32);
            while b == a {
                b = rng.random_range(0..10u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let g = tan_iterp(&c, &params());
        let s = tan_solver(&c, &params(), Duration::from_millis(500));
        assert!(s.compile_time_s >= g.compile_time_s);
    }

    #[test]
    fn solver_timeout_reports_flag() {
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = Circuit::new(20);
        for _ in 0..120 {
            let a = rng.random_range(0..20u32);
            let mut b = rng.random_range(0..20u32);
            while b == a {
                b = rng.random_range(0..20u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let s = tan_solver(&c, &params(), Duration::from_millis(50));
        assert!(s.timed_out);
        // Still returns a valid (greedy-or-better) schedule.
        assert_eq!(s.two_qubit_gates, 120);
    }

    #[test]
    fn transfers_drive_fidelity_below_gate_only() {
        let c = chain(10);
        let r = tan_iterp(&c, &params());
        assert!(r.transfers > 0);
        assert!(r.fidelity.transfer < 1.0);
        let f = r.total_fidelity();
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn one_qubit_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::h(Qubit(2)));
        let r = tan_iterp(&c, &params());
        assert_eq!(r.one_qubit_gates, 2);
        assert_eq!(r.stages, 1);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(4);
        let r = tan_solver(&c, &params(), Duration::from_secs(1));
        assert_eq!(r.stages, 0);
        assert!((r.total_fidelity() - 1.0).abs() < 1e-12);
    }
}
