//! Geyser comparison (paper Table III): multi-qubit pulse counting.
//!
//! Geyser (Patel et al., ISCA 2022) resynthesizes circuits into
//! three-qubit blocks and executes each block as native multi-qubit
//! pulses; an *n*-qubit gate needs `2n − 1` pulses. The paper compares
//! total pulse counts: Geyser's blocked circuit versus Atomique's compiled
//! circuit (3 pulses per two-qubit gate, 1 per one-qubit gate).
//!
//! The original Geyser uses dual-annealing resynthesis; this reproduction
//! blocks greedily over the circuit DAG (documented substitution,
//! DESIGN.md §3) — the pulse-count *shape* is what Table III consumes.

use std::collections::HashSet;

use raa_circuit::{Circuit, DagSchedule, GateIdx};

/// Result of Geyser-style blocking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeyserResult {
    /// Number of three-qubit blocks formed.
    pub blocks: usize,
    /// Total pulses: `5` per three-qubit block (2·3 − 1), fewer for
    /// blocks that touch fewer qubits.
    pub pulses: usize,
    /// Per block, the two-qubit gate indices absorbed, in execution
    /// order. Consumed by the ISA lowering ([`crate::lower_geyser`]).
    pub schedule: Vec<Vec<GateIdx>>,
}

/// Two-qubit gates one block may absorb. Geyser's dual-annealing blocks
/// pack roughly two entangling gates each (the paper's HHL-7 point:
/// 486 pulses ≈ 97 blocks for 196 two-qubit gates); packing more would
/// overstate the original system.
const BLOCK_2Q_CAP: usize = 2;

/// Greedily partitions `circuit` into blocks acting on ≤ 3 qubits and
/// counts the pulses of the blocked circuit.
///
/// Blocks are grown over the dependency frontier: a block absorbs
/// frontier gates that overlap its support, keeping the support ≤ 3
/// qubits and the entangling content within the two-gate block cap
/// (`BLOCK_2Q_CAP`).
pub fn geyser_pulses(circuit: &Circuit) -> GeyserResult {
    let mut sched = DagSchedule::new(circuit);
    let mut blocks = 0usize;
    let mut pulses = 0usize;
    let mut schedule: Vec<Vec<GateIdx>> = Vec::new();

    while !sched.is_done() {
        // Seed a new block with the first frontier gate.
        let front: Vec<GateIdx> = sched.front().to_vec();
        let seed = front[0];
        let mut support: HashSet<u32> =
            circuit.gates()[seed].qubits().iter().map(|q| q.0).collect();
        let mut two_q = usize::from(circuit.gates()[seed].is_two_qubit());
        let mut block_two_q: Vec<GateIdx> = Vec::new();
        if circuit.gates()[seed].is_two_qubit() {
            block_two_q.push(seed);
        }
        sched.execute(seed);
        // Absorb overlapping frontier gates while support ≤ 3 qubits and
        // the entangling budget lasts.
        loop {
            let mut absorbed = false;
            let front: Vec<GateIdx> = sched.front().to_vec();
            for g in front {
                let gate = circuit.gates()[g];
                let qs: Vec<u32> = gate.qubits().iter().map(|q| q.0).collect();
                if !qs.iter().any(|q| support.contains(q)) {
                    continue; // blocks grow connected, as Geyser's do
                }
                if gate.is_two_qubit() && two_q >= BLOCK_2Q_CAP {
                    continue;
                }
                let new: HashSet<u32> = support
                    .union(&qs.iter().copied().collect())
                    .copied()
                    .collect();
                if new.len() <= 3 {
                    support = new;
                    two_q += usize::from(gate.is_two_qubit());
                    if gate.is_two_qubit() {
                        block_two_q.push(g);
                    }
                    sched.execute(g);
                    absorbed = true;
                }
            }
            if !absorbed {
                break;
            }
        }
        blocks += 1;
        pulses += 2 * support.len() - 1;
        schedule.push(block_two_q);
    }
    GeyserResult {
        blocks,
        pulses,
        schedule,
    }
}

/// Atomique-side pulse count for Table III: three pulses per two-qubit
/// gate (2·2 − 1). One-qubit Raman pulses are not counted, matching the
/// paper's Table III accounting (its Atomique entries are exactly three
/// times the Fig. 13 two-qubit gate counts).
pub fn atomique_pulses(two_qubit_gates: usize) -> usize {
    3 * two_qubit_gates
}

/// Geyser pulse count over the circuit as *routed* for the triangular
/// fixed atom array Geyser targets: blocking happens after SWAP insertion,
/// as in the original system.
///
/// # Errors
///
/// Propagates routing failures for circuits larger than the device.
pub fn geyser_pulses_routed(circuit: &Circuit) -> Result<GeyserResult, raa_sabre::SabreError> {
    let side = ((circuit.num_qubits() as f64).sqrt().ceil() as usize).max(10);
    let graph = raa_arch::CouplingGraph::triangular(side, side);
    let native = circuit.decompose_to(raa_circuit::NativeGateSet::Cz);
    let routed = raa_sabre::layout_and_route(&native, &graph, &raa_sabre::LayoutConfig::default())?;
    let physical = routed.circuit.decompose_to(raa_circuit::NativeGateSet::Cz);
    Ok(geyser_pulses(&physical))
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::{Gate, Qubit};

    #[test]
    fn single_gate_is_one_block() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        let r = geyser_pulses(&c);
        assert_eq!(r.blocks, 1);
        assert_eq!(r.pulses, 3); // 2-qubit block: 2·2−1
    }

    #[test]
    fn three_qubit_chain_fits_one_block() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        c.push(Gate::h(Qubit(0)));
        let r = geyser_pulses(&c);
        assert_eq!(r.blocks, 1);
        assert_eq!(r.pulses, 5); // 3-qubit block: 2·3−1
    }

    #[test]
    fn entangling_budget_closes_blocks() {
        // Four CZs on one pair: cap of two per block → two blocks.
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.push(Gate::cz(Qubit(0), Qubit(1)));
        }
        let r = geyser_pulses(&c);
        assert_eq!(r.blocks, 2);
    }

    #[test]
    fn four_qubit_interaction_needs_two_blocks() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(2), Qubit(3)));
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        let r = geyser_pulses(&c);
        assert!(r.blocks >= 2);
    }

    #[test]
    fn blocking_covers_all_gates() {
        // Dense circuit: every gate lands in some block (no loss).
        use rand::{rngs::StdRng, RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = Circuit::new(8);
        for _ in 0..50 {
            let a = rng.random_range(0..8u32);
            let mut b = rng.random_range(0..8u32);
            while b == a {
                b = rng.random_range(0..8u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let r = geyser_pulses(&c);
        assert!(r.blocks > 0);
        // Worst case: each gate its own 2-qubit block.
        assert!(r.blocks <= 50);
        assert!(r.pulses >= r.blocks * 3);
    }

    #[test]
    fn atomique_pulse_formula() {
        assert_eq!(atomique_pulses(10), 30);
        assert_eq!(atomique_pulses(0), 0);
    }

    #[test]
    fn routed_blocking_counts_swap_overhead() {
        // A non-local circuit needs SWAPs on the triangular FAA, which the
        // routed pulse count must reflect.
        let mut c = Circuit::new(16);
        for i in 0..8u32 {
            c.push(Gate::cz(Qubit(i), Qubit(15 - i)));
        }
        let logical = geyser_pulses(&c);
        let routed = geyser_pulses_routed(&c).unwrap();
        assert!(routed.pulses >= logical.pulses);
    }
}
