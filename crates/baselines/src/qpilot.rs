//! Q-Pilot comparison (paper Fig. 19): flying-ancilla compilation for
//! QAOA and QSim workloads.
//!
//! Q-Pilot (Wang et al., DAC 2024) keeps program qubits stationary in the
//! SLM and routes *flying ancillas* between them: every ZZ interaction is
//! mediated by an ancilla (two CZ pulses), and every CX-style interaction
//! costs three ancilla-mediated pulses. Because ancillas are plentiful and
//! independent, gates schedule as an edge colouring of the interaction
//! graph — lower depth than Atomique, but roughly 2–3× the two-qubit gate
//! count, which costs fidelity (the paper's observed trade-off).

use std::collections::HashMap;
use std::time::Instant;

use raa_circuit::{Circuit, Layering, TwoQubitKind};
use raa_physics::{
    gate_phase_fidelity, FidelityBreakdown, GatePhaseStats, HardwareParams, MovementLedger,
};

/// Result of a Q-Pilot compilation.
#[derive(Debug, Clone)]
pub struct QPilotResult {
    /// Two-qubit gates after ancilla mediation.
    pub two_qubit_gates: usize,
    /// One-qubit gates.
    pub one_qubit_gates: usize,
    /// Depth in parallel two-qubit layers.
    pub depth: usize,
    /// Fidelity estimate.
    pub fidelity: FidelityBreakdown,
    /// Wall-clock compile time, seconds.
    pub compile_time_s: f64,
}

impl QPilotResult {
    /// Total estimated fidelity.
    pub fn total_fidelity(&self) -> f64 {
        self.fidelity.total()
    }
}

/// Compiles `circuit` in the Q-Pilot style.
///
/// Interaction terms are scheduled by greedy edge colouring of the
/// two-qubit interaction multigraph; each colour class becomes one
/// flying-ancilla wave (one movement stage, two CZ pulses per ZZ term,
/// three per CX/CZ term).
pub fn qpilot(circuit: &Circuit, params: &HardwareParams) -> QPilotResult {
    let start = Instant::now();
    let n = circuit.num_qubits();

    // Greedy edge colouring over gates in program order: a gate takes the
    // smallest colour not yet used by either endpoint, but never below the
    // colour of a previous gate on the same qubit (dependency order).
    let mut qubit_last_color: HashMap<u32, usize> = HashMap::new();
    let mut color_of_gate: Vec<(usize, usize)> = Vec::new(); // (color, pulses)
    let mut num_colors = 0usize;
    for g in circuit.gates() {
        let Some((a, b)) = g.pair() else { continue };
        let floor = qubit_last_color
            .get(&a.0)
            .copied()
            .unwrap_or(0)
            .max(qubit_last_color.get(&b.0).copied().unwrap_or(0));
        let color = floor; // next free slot after both endpoints' last use
        qubit_last_color.insert(a.0, color + 1);
        qubit_last_color.insert(b.0, color + 1);
        num_colors = num_colors.max(color + 1);
        let pulses = match g {
            raa_circuit::Gate::TwoQ {
                kind: TwoQubitKind::Zz(_),
                ..
            } => 2,
            _ => 3,
        };
        color_of_gate.push((color, pulses));
    }

    // Ancilla preparation: one CZ per program qubit that interacts at all.
    let active_qubits = qubit_last_color.len();
    let two_q: usize = color_of_gate.iter().map(|&(_, p)| p).sum::<usize>() + active_qubits;
    let one_q = circuit.one_qubit_count();
    // Each colour class is one ancilla wave = 1 movement + 2 pulse layers.
    let depth = 2 * num_colors;

    // Movement overhead: every wave flies ancillas one hop on average.
    let mut ledger = MovementLedger::new(params);
    let hop = params.atom_distance_um * 1e-6;
    let mut per_color: HashMap<usize, usize> = HashMap::new();
    for &(c, _) in &color_of_gate {
        *per_color.entry(c).or_insert(0) += 1;
    }
    for (color, count) in per_color {
        let moved: Vec<(u32, f64)> = (0..count as u32)
            .map(|i| (color as u32 * 10_000 + i, hop))
            .collect();
        ledger.record_move(&moved, params.t_move_s, n);
        for &(a, _) in &moved {
            ledger.record_two_qubit_gate(&[a]);
        }
    }

    let one_q_layers = {
        let l = Layering::new(circuit);
        (l.depth() as usize).saturating_sub(l.two_qubit_depth() as usize)
    };
    let phase = GatePhaseStats {
        num_qubits: n,
        one_qubit_gates: one_q,
        two_qubit_gates: two_q,
        one_qubit_time_s: one_q_layers as f64 * params.one_qubit_time_s,
        two_qubit_time_s: depth as f64 * params.two_qubit_time_s,
    };
    let (f1, f2) = gate_phase_fidelity(params, &phase);
    let fidelity = FidelityBreakdown {
        one_qubit: f1,
        two_qubit: f2,
        transfer: 1.0,
        move_heating: ledger.f_heating(),
        move_cooling: ledger.f_cooling(),
        move_loss: ledger.f_loss(),
        move_decoherence: ledger.f_decoherence(),
    };
    QPilotResult {
        two_qubit_gates: two_q,
        one_qubit_gates: one_q,
        depth,
        fidelity,
        compile_time_s: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::{Gate, Qubit};

    #[test]
    fn zz_terms_cost_two_pulses_plus_prep() {
        let mut c = Circuit::new(4);
        c.push(Gate::zz(Qubit(0), Qubit(1), 0.3));
        c.push(Gate::zz(Qubit(2), Qubit(3), 0.3));
        let r = qpilot(&c, &HardwareParams::neutral_atom());
        // 2 terms × 2 pulses + 4 active-qubit preps.
        assert_eq!(r.two_qubit_gates, 2 * 2 + 4);
        // Disjoint terms share one colour → depth 2.
        assert_eq!(r.depth, 2);
    }

    #[test]
    fn conflicting_terms_take_more_colors() {
        let mut c = Circuit::new(3);
        c.push(Gate::zz(Qubit(0), Qubit(1), 0.3));
        c.push(Gate::zz(Qubit(1), Qubit(2), 0.3));
        let r = qpilot(&c, &HardwareParams::neutral_atom());
        assert_eq!(r.depth, 4); // two colours × 2
    }

    #[test]
    fn more_gates_than_atomique_for_qaoa() {
        // The characteristic Fig. 19 trade-off: about twice the native ZZ
        // count once preps are included.
        let mut c = Circuit::new(10);
        for a in 0..10u32 {
            for b in a + 1..10u32 {
                if (a + b) % 3 == 0 {
                    c.push(Gate::zz(Qubit(a), Qubit(b), 0.3));
                }
            }
        }
        let terms = c.two_qubit_count();
        let r = qpilot(&c, &HardwareParams::neutral_atom());
        assert!(r.two_qubit_gates >= 2 * terms);
        assert!(r.two_qubit_gates <= 3 * terms + 10);
    }

    #[test]
    fn fidelity_in_bounds() {
        let mut c = Circuit::new(6);
        for i in 0..5u32 {
            c.push(Gate::zz(Qubit(i), Qubit(i + 1), 0.2));
        }
        let r = qpilot(&c, &HardwareParams::neutral_atom());
        let f = r.total_fidelity();
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn empty_circuit() {
        let r = qpilot(&Circuit::new(3), &HardwareParams::neutral_atom());
        assert_eq!(r.two_qubit_gates, 0);
        assert_eq!(r.depth, 0);
    }
}
