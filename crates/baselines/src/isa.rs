//! ISA lowerings of the baseline compilers.
//!
//! Every baseline produces an *abstract* schedule — there is no
//! atom-movement geometry to serialize — so all three lowerings go
//! through [`raa_isa::lower_gate_schedule`], which realizes each
//! scheduled two-qubit gate as a transfer-assisted gate (the re-grab
//! mechanism the DPQA compiler family actually uses) and each ready
//! one-qubit gate as a Raman layer. The resulting streams are verified
//! by the *same* oracle as Atomique's movement streams
//! (`raa_isa::check_legality` + `raa_isa::replay_verify`), so all
//! backends share one notion of correctness — and optimized by the same
//! pipeline (`raa_isa::optimize`). Transfer-based streams carry no
//! moves or parks, so the optimizer is typically an (verified) identity
//! on them; it exists on this path so every backend's numbers go
//! through identical machinery.

use raa_circuit::{Circuit, GateIdx, Layering};
use raa_isa::{lower_gate_schedule, IsaProgram, LowerError, ProgramHeader};

use crate::fixed::FixedCompileResult;
use crate::geyser::GeyserResult;
use crate::tan::TanResult;

/// Lowers a Tan-IterP / Tan-Solver result to an instruction stream.
///
/// `circuit` must be the circuit the Tan compiler ran on.
///
/// # Errors
///
/// [`LowerError`] if the recorded schedule is not a valid execution
/// order of `circuit` (which would indicate a Tan scheduling bug — the
/// point of the shared oracle).
pub fn lower_tan(
    circuit: &Circuit,
    result: &TanResult,
    backend: &str,
    name: &str,
) -> Result<IsaProgram, LowerError> {
    lower_gate_schedule(circuit, &result.schedule, ProgramHeader::new(backend, name))
}

/// Lowers a fixed-topology (SABRE-routed) result to an instruction
/// stream.
///
/// The stages are the routed physical circuit's ASAP two-qubit layers.
///
/// # Errors
///
/// [`LowerError`] if the layering is not a valid execution order (which
/// would indicate a layering bug).
pub fn lower_fixed(result: &FixedCompileResult, name: &str) -> Result<IsaProgram, LowerError> {
    let physical = &result.circuit;
    let layering = Layering::new(physical);
    let depth = layering.two_qubit_depth() as usize;
    let mut stages: Vec<Vec<GateIdx>> = vec![Vec::new(); depth];
    for (g, gate) in physical.gates().iter().enumerate() {
        if gate.is_two_qubit() {
            let layer = layering.two_qubit_layer(g) as usize;
            stages[layer - 1].push(g);
        }
    }
    lower_gate_schedule(
        physical,
        &stages,
        ProgramHeader::new(format!("fixed:{}", result.architecture.name()), name),
    )
}

/// Lowers a Geyser blocking result to an instruction stream.
///
/// `circuit` must be the circuit [`crate::geyser_pulses`] blocked. Each
/// block's two-qubit content executes in the block's absorption order.
///
/// # Errors
///
/// [`LowerError`] if the recorded block schedule is not a valid
/// execution order of `circuit`.
pub fn lower_geyser(
    circuit: &Circuit,
    result: &GeyserResult,
    name: &str,
) -> Result<IsaProgram, LowerError> {
    lower_gate_schedule(
        circuit,
        &result.schedule,
        ProgramHeader::new("geyser", name),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_fixed, geyser_pulses, tan_iterp, FixedArchitecture};
    use raa_circuit::{Gate, Qubit};
    use raa_isa::{check_legality, replay_verify, IsaStats};
    use raa_physics::HardwareParams;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            if rng.random::<f64>() < 0.3 {
                c.push(Gate::rz(Qubit(a), 0.4));
            } else {
                c.push(Gate::cz(Qubit(a), Qubit(b)));
            }
        }
        c
    }

    #[test]
    fn tan_lowering_passes_the_oracle() {
        let c = random_circuit(12, 50, 1);
        let r = tan_iterp(&c, &HardwareParams::neutral_atom());
        let isa = lower_tan(&c, &r, "tan-iterp", "rand-12").unwrap();
        check_legality(&isa).unwrap();
        let report = replay_verify(&isa).unwrap();
        assert_eq!(report.two_qubit_gates, r.two_qubit_gates);
        assert_eq!(report.one_qubit_gates, r.one_qubit_gates);
        assert_eq!(IsaStats::of(&isa).transfers, r.two_qubit_gates);
    }

    #[test]
    fn fixed_lowerings_pass_the_oracle() {
        let c = random_circuit(9, 30, 2);
        for arch in FixedArchitecture::ALL {
            let r = compile_fixed(&c, arch, 0).unwrap();
            let isa = lower_fixed(&r, "rand-9").unwrap();
            check_legality(&isa).unwrap();
            let report = replay_verify(&isa).unwrap();
            assert_eq!(report.two_qubit_gates, r.two_qubit_gates, "{}", arch.name());
            assert!(isa.header.backend.starts_with("fixed:"));
        }
    }

    #[test]
    fn geyser_lowering_passes_the_oracle() {
        let c = random_circuit(10, 40, 3);
        let r = geyser_pulses(&c);
        let isa = lower_geyser(&c, &r, "rand-10").unwrap();
        check_legality(&isa).unwrap();
        let report = replay_verify(&isa).unwrap();
        assert_eq!(report.two_qubit_gates, c.two_qubit_count());
        assert_eq!(report.one_qubit_gates, c.one_qubit_count());
    }

    #[test]
    fn optimizer_never_inflates_baseline_streams() {
        use raa_isa::{optimize, OptLevel};
        let c = random_circuit(10, 40, 5);
        let tan = tan_iterp(&c, &HardwareParams::neutral_atom());
        let fixed = compile_fixed(&c, FixedArchitecture::FaaRectangular, 0).unwrap();
        let geyser = geyser_pulses(&c);
        for isa in [
            lower_tan(&c, &tan, "tan-iterp", "rand-10").unwrap(),
            lower_fixed(&fixed, "rand-10").unwrap(),
            lower_geyser(&c, &geyser, "rand-10").unwrap(),
        ] {
            for level in [OptLevel::Basic, OptLevel::Aggressive] {
                let (out, report) = optimize(&isa, level);
                assert!(!report.skipped_unverified);
                assert!(out.instrs.len() <= isa.instrs.len());
                // Transfer-based lowerings are already minimal: the
                // optimizer is an identity on them.
                assert_eq!(out, isa);
                check_legality(&out).unwrap();
                replay_verify(&out).unwrap();
            }
        }
    }

    #[test]
    fn corrupted_schedule_is_rejected_by_the_oracle() {
        let c = random_circuit(8, 25, 4);
        let mut r = tan_iterp(&c, &HardwareParams::neutral_atom());
        // Drop one scheduled gate: the lowering itself must notice the
        // incomplete schedule.
        let stage = r.schedule.iter_mut().find(|s| !s.is_empty()).unwrap();
        stage.pop();
        assert!(lower_tan(&c, &r, "tan-iterp", "corrupt").is_err());
    }
}
