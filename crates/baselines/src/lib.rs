//! Baseline architectures and compilers the Atomique paper evaluates
//! against.
//!
//! * [`compile_fixed`] — the four fixed-topology baselines of Fig. 13
//!   (IBM superconducting heavy-hex, FAA-Rectangular, FAA-Triangular,
//!   Baker long-range FAA), all routed with SABRE;
//! * [`tan_solver`] / [`tan_iterp`] — the solver-based RAA compilers of
//!   Fig. 14 (OLSQ-DPQA), reproduced as exhaustive branch-and-bound with
//!   timeout and greedy peeling respectively;
//! * [`geyser_pulses`] — Geyser's 3-qubit-block pulse counting
//!   (Table III);
//! * [`qpilot`] — the flying-ancilla compiler of Fig. 19.
//!
//! Substitutions relative to the original artifacts are documented in
//! `DESIGN.md` §3.

#![warn(missing_docs)]

mod fixed;
mod geyser;
mod isa;
mod qpilot;
mod tan;

pub use fixed::{
    compile_fixed, compile_fixed_with, coupling_for, FixedArchitecture, FixedCompileResult,
};
pub use geyser::{atomique_pulses, geyser_pulses, geyser_pulses_routed, GeyserResult};
pub use isa::{lower_fixed, lower_geyser, lower_tan};
pub use qpilot::{qpilot, QPilotResult};
pub use tan::{tan_iterp, tan_solver, TanResult};
