//! Fixed-topology baseline architectures (paper Sec. V-A "Baselines"):
//! IBM superconducting (heavy-hex), FAA-Rectangular, FAA-Triangular, and
//! Baker's long-range FAA. All are compiled with SABRE ("Qiskit
//! Optimization Level 3 with SABRE" in the paper) and evaluated with the
//! Sec. V-A fidelity model.

use std::time::Instant;

use raa_arch::CouplingGraph;
use raa_circuit::{optimize, Circuit, Layering, NativeGateSet};
use raa_physics::{fixed_architecture_fidelity, FidelityBreakdown, HardwareParams};
use raa_sabre::{layout_and_route, LayoutConfig, SabreError};

/// The four fixed-coupling baselines of Fig. 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixedArchitecture {
    /// IBM heavy-hex superconducting machine (CX native).
    Superconducting,
    /// Fixed atom array, nearest-neighbour rectangular grid (CZ native).
    FaaRectangular,
    /// Fixed atom array, triangular lattice (CZ native).
    FaaTriangular,
    /// Baker et al. long-range FAA: interactions up to four Rydberg radii,
    /// with an illumination-restriction scheduling penalty and
    /// distance-scaled gate error.
    BakerLongRange,
}

impl FixedArchitecture {
    /// All four baselines, in the paper's figure order.
    pub const ALL: [FixedArchitecture; 4] = [
        FixedArchitecture::Superconducting,
        FixedArchitecture::BakerLongRange,
        FixedArchitecture::FaaRectangular,
        FixedArchitecture::FaaTriangular,
    ];

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            FixedArchitecture::Superconducting => "Superconducting",
            FixedArchitecture::FaaRectangular => "FAA-Rectangular",
            FixedArchitecture::FaaTriangular => "FAA-Triangular",
            FixedArchitecture::BakerLongRange => "Baker-Long-Range",
        }
    }

    fn native(self) -> NativeGateSet {
        match self {
            FixedArchitecture::Superconducting => NativeGateSet::Cx,
            _ => NativeGateSet::Cz,
        }
    }

    fn params(self) -> HardwareParams {
        match self {
            FixedArchitecture::Superconducting => HardwareParams::superconducting(),
            _ => HardwareParams::neutral_atom(),
        }
    }
}

/// Interaction radius of the Baker long-range FAA, in lattice spacings.
///
/// Baker's fixed arrays space atoms at ~2.5 Rydberg radii (the isolation
/// minimum), so the paper's "four Rydberg radii" maximum interaction range
/// is 4/2.5 = 1.6 lattice spacings — nearest neighbours plus diagonals.
const BAKER_RANGE: f64 = 1.6;
/// Rydberg-illumination restriction: two simultaneous gates must keep
/// their atoms at least this far apart (lattice spacings, ≈ 2.5× range).
const BAKER_RESTRICT: f64 = 4.0;

/// Result of compiling a circuit for a fixed architecture.
#[derive(Debug, Clone)]
pub struct FixedCompileResult {
    /// Which baseline.
    pub architecture: FixedArchitecture,
    /// Native two-qubit gates after routing and decomposition.
    pub two_qubit_gates: usize,
    /// One-qubit gates after decomposition.
    pub one_qubit_gates: usize,
    /// Parallel two-qubit layers (the paper's depth metric).
    pub depth: usize,
    /// SWAPs inserted by routing.
    pub swaps_inserted: usize,
    /// Additional CNOT-equivalents (3 per SWAP, Fig. 25).
    pub additional_cnots: usize,
    /// Estimated execution time, seconds.
    pub execution_time_s: f64,
    /// Fidelity estimate.
    pub fidelity: FidelityBreakdown,
    /// Wall-clock compile time, seconds.
    pub compile_time_s: f64,
    /// The routed physical circuit (native gate set, SWAPs decomposed).
    /// Consumed by the ISA lowering ([`crate::lower_fixed`]).
    pub circuit: Circuit,
}

impl FixedCompileResult {
    /// Total estimated fidelity.
    pub fn total_fidelity(&self) -> f64 {
        self.fidelity.total()
    }
}

/// Builds the coupling graph a baseline uses for an `n`-qubit circuit.
///
/// The paper equalizes physical qubit counts across architectures: atom
/// arrays get the snuggest square grid holding `n` qubits; the
/// superconducting baseline is the 127-qubit-class heavy-hex device.
pub fn coupling_for(arch: FixedArchitecture, n: usize) -> CouplingGraph {
    // The paper equalizes physical qubit counts with Atomique's default
    // 10x10 topology; larger circuits get the snuggest square that fits.
    let side = ((n as f64).sqrt().ceil() as usize).max(10);
    match arch {
        FixedArchitecture::Superconducting => CouplingGraph::heavy_hex(7, 15),
        FixedArchitecture::FaaRectangular => CouplingGraph::grid(side, side),
        FixedArchitecture::FaaTriangular => CouplingGraph::triangular(side, side),
        FixedArchitecture::BakerLongRange => {
            CouplingGraph::long_range_grid(side, side, BAKER_RANGE)
        }
    }
}

/// Compiles `circuit` for the given fixed architecture with SABRE and
/// estimates fidelity.
///
/// # Errors
///
/// Propagates SABRE failures (e.g. circuits larger than the device).
pub fn compile_fixed(
    circuit: &Circuit,
    arch: FixedArchitecture,
    seed: u64,
) -> Result<FixedCompileResult, SabreError> {
    compile_fixed_with(
        circuit,
        arch,
        &LayoutConfig {
            seed,
            ..LayoutConfig::default()
        },
    )
}

/// [`compile_fixed`] with explicit SABRE layout-search settings (the
/// large parameter sweeps use fewer trials to stay within time budgets).
///
/// # Errors
///
/// Propagates SABRE failures (e.g. circuits larger than the device).
pub fn compile_fixed_with(
    circuit: &Circuit,
    arch: FixedArchitecture,
    cfg: &LayoutConfig,
) -> Result<FixedCompileResult, SabreError> {
    let start = Instant::now();
    let graph = coupling_for(arch, circuit.num_qubits());
    // The paper preprocesses every baseline with Qiskit Optimization
    // Level 3; the peephole optimizer is our equivalent.
    let native = optimize(&optimize(circuit).decompose_to(arch.native()));
    let routed = layout_and_route(&native, &graph, cfg)?;
    let physical = routed.circuit.decompose_to(arch.native());

    let layering = Layering::new(&physical);
    let depth2q = layering.two_qubit_depth() as usize;
    let one_q_layers = (layering.depth() as usize).saturating_sub(depth2q);
    let two_q = physical.two_qubit_count();
    let one_q = physical.one_qubit_count();
    let params = arch.params();

    // Baker's long-range gates: error grows with interaction distance and
    // simultaneous long-range illumination restricts parallelism.
    let (depth, effective_two_q) = if arch == FixedArchitecture::BakerLongRange {
        let side = (circuit.num_qubits() as f64).sqrt().ceil().max(2.0) as usize;
        let (d, eff) = baker_depth_and_error(&physical, side);
        (d, eff)
    } else {
        (depth2q, two_q as f64)
    };

    let n = circuit.num_qubits();
    let mut fidelity = fixed_architecture_fidelity(
        &params,
        n,
        one_q,
        // Round the distance-scaled effective gate count for Baker.
        effective_two_q.round() as usize,
        one_q_layers,
        depth,
    );
    // Keep the reported gate count physical, not effective.
    if arch == FixedArchitecture::BakerLongRange {
        fidelity.two_qubit = fidelity.two_qubit.min(1.0);
    }

    let execution_time_s =
        depth as f64 * params.two_qubit_time_s + one_q_layers as f64 * params.one_qubit_time_s;

    Ok(FixedCompileResult {
        architecture: arch,
        two_qubit_gates: two_q,
        one_qubit_gates: one_q,
        depth,
        swaps_inserted: routed.swaps_inserted,
        additional_cnots: 3 * routed.swaps_inserted,
        execution_time_s,
        fidelity,
        compile_time_s: start.elapsed().as_secs_f64(),
        circuit: physical,
    })
}

/// Computes Baker's restricted two-qubit depth and the distance-weighted
/// effective gate count.
///
/// Two gates share a layer only if they are qubit-disjoint *and* all
/// involved atoms are ≥ `BAKER_RESTRICT` lattice spacings apart (the
/// Rydberg illumination of a long-range gate disturbs a wide zone).
/// A gate spanning Euclidean distance `r` counts as `r` gate-errors
/// (longer interactions are proportionally weaker).
fn baker_depth_and_error(physical: &Circuit, side: usize) -> (usize, f64) {
    let pos = |q: u32| ((q as usize / side) as f64, (q as usize % side) as f64);
    let layering = Layering::new(physical);
    // Greedy ASAP with the restriction: assign each 2Q gate the earliest
    // layer ≥ its dependency layer with no spatial conflict.
    let mut layers: Vec<Vec<(f64, f64)>> = Vec::new();
    let mut effective = 0.0f64;
    let mut gate_layer: Vec<usize> = Vec::with_capacity(physical.len());
    for (idx, g) in physical.gates().iter().enumerate() {
        let Some((a, b)) = g.pair() else {
            gate_layer.push(0);
            continue;
        };
        let (pa, pb) = (pos(a.0), pos(b.0));
        let r = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2))
            .sqrt()
            .max(1.0);
        effective += r;
        let dep = layering.two_qubit_layer(idx).saturating_sub(1) as usize;
        let mut l = dep;
        loop {
            if l >= layers.len() {
                layers.resize(l + 1, Vec::new());
            }
            let conflict = layers[l].iter().any(|&p| {
                let d1 = ((p.0 - pa.0).powi(2) + (p.1 - pa.1).powi(2)).sqrt();
                let d2 = ((p.0 - pb.0).powi(2) + (p.1 - pb.1).powi(2)).sqrt();
                d1 < BAKER_RESTRICT || d2 < BAKER_RESTRICT
            });
            if !conflict {
                layers[l].push(pa);
                layers[l].push(pb);
                gate_layer.push(l);
                break;
            }
            l += 1;
        }
    }
    (layers.len(), effective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::{Gate, Qubit};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        c
    }

    #[test]
    fn all_baselines_compile_small_circuit() {
        let c = random_circuit(9, 25, 1);
        for arch in FixedArchitecture::ALL {
            let r = compile_fixed(&c, arch, 0).unwrap();
            assert!(r.two_qubit_gates >= 25, "{}", arch.name());
            assert!(r.depth >= 1);
            let f = r.total_fidelity();
            assert!(f > 0.0 && f <= 1.0, "{} fidelity {f}", arch.name());
        }
    }

    #[test]
    fn triangular_no_worse_than_rectangular_on_swaps() {
        let c = random_circuit(16, 60, 2);
        let rect = compile_fixed(&c, FixedArchitecture::FaaRectangular, 0).unwrap();
        let tri = compile_fixed(&c, FixedArchitecture::FaaTriangular, 0).unwrap();
        // More connectivity → at most as many SWAPs (paper: strongest FAA).
        assert!(tri.swaps_inserted <= rect.swaps_inserted + 2);
    }

    #[test]
    fn baker_fewer_swaps_but_not_shallower() {
        let c = random_circuit(16, 60, 3);
        let rect = compile_fixed(&c, FixedArchitecture::FaaRectangular, 0).unwrap();
        let baker = compile_fixed(&c, FixedArchitecture::BakerLongRange, 0).unwrap();
        // Long range cuts routing (fewer SWAPs), the illumination
        // restriction costs depth — the paper's observed trade-off.
        assert!(baker.swaps_inserted <= rect.swaps_inserted);
        assert!(baker.depth as f64 >= rect.depth as f64 * 0.5);
    }

    #[test]
    fn superconducting_uses_cx_and_heavy_hex() {
        let mut c = Circuit::new(3);
        c.push(Gate::zz(Qubit(0), Qubit(2), 0.4));
        let r = compile_fixed(&c, FixedArchitecture::Superconducting, 0).unwrap();
        // ZZ costs 2 CX on superconducting hardware.
        assert!(r.two_qubit_gates >= 2);
        let g = coupling_for(FixedArchitecture::Superconducting, 3);
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn zz_native_on_atom_arrays() {
        let mut c = Circuit::new(4);
        c.push(Gate::zz(Qubit(0), Qubit(1), 0.4));
        let r = compile_fixed(&c, FixedArchitecture::FaaRectangular, 0).unwrap();
        assert_eq!(r.two_qubit_gates, 1 + 3 * r.swaps_inserted);
    }

    #[test]
    fn deeper_circuits_lose_fidelity() {
        let shallow = random_circuit(9, 10, 4);
        let deep = random_circuit(9, 200, 4);
        for arch in FixedArchitecture::ALL {
            let fs = compile_fixed(&shallow, arch, 0).unwrap().total_fidelity();
            let fd = compile_fixed(&deep, arch, 0).unwrap().total_fidelity();
            assert!(fd < fs, "{}: {fd} !< {fs}", arch.name());
        }
    }

    #[test]
    fn too_large_circuit_fails_cleanly() {
        let c = Circuit::new(1000);
        assert!(compile_fixed(&c, FixedArchitecture::Superconducting, 0).is_err());
    }
}
