//! Main-result experiments: Tables I–III, Fig. 12 (kinematics), Fig. 13
//! (architecture comparison), Fig. 14 (solver compilers), Fig. 19
//! (Q-Pilot) and Fig. 25 (SWAP-inserted CNOTs).

use std::time::Duration;

use atomique::{compile, AtomiqueConfig};
use raa_arch::{ArrayDims, RaaConfig};
use raa_baselines::{atomique_pulses, geyser_pulses_routed, qpilot, tan_iterp, tan_solver};
use raa_benchmarks::{large_suite, qaoa_random, qaoa_regular, qsim_random, small_suite};
use raa_physics::{HardwareParams, MovementProfile};

use crate::harness::{compare_architectures, fmt, gmean, row, section};
use crate::paper;

/// Table I: the hardware constants (printed for the record; they are
/// compile-time constants of `raa-physics`).
pub fn table1() {
    section("Table I: hardware parameters");
    let n = HardwareParams::neutral_atom();
    let s = HardwareParams::superconducting();
    println!(
        "neutral atom : f2Q {:.4}  f1Q {:.5}  t2Q {:.0} ns  t1Q {:.0} ns  T1 {:.0} s",
        n.two_qubit_fidelity,
        n.one_qubit_fidelity,
        n.two_qubit_time_s * 1e9,
        n.one_qubit_time_s * 1e9,
        n.coherence_time_s
    );
    println!("               d {:.0} um  Tmove {:.0} us  Ttransfer {:.0} us  Ploss {:.4}  xzpf {:.0} nm  w0 2pi*{:.0} kHz  lambda {:.3}",
        n.atom_distance_um, n.t_move_s * 1e6, n.t_transfer_s * 1e6, n.transfer_loss_prob,
        n.x_zpf_m * 1e9, n.omega0_rad_s / (2.0 * std::f64::consts::PI) / 1e3, n.lambda);
    println!(
        "superconduct : f2Q {:.4}  f1Q {:.5}  t2Q {:.0} ns  t1Q {:.1} ns  T1 {:.1} us",
        s.two_qubit_fidelity,
        s.one_qubit_fidelity,
        s.two_qubit_time_s * 1e9,
        s.one_qubit_time_s * 1e9,
        s.coherence_time_s * 1e6
    );
}

/// Table II: benchmark characteristics.
pub fn table2() {
    section("Table II: benchmarks");
    row(
        "name",
        &["qubits", "2Q", "1Q", "2Q/Q", "deg/Q"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for b in large_suite().into_iter().chain(small_suite()) {
        let s = b.stats();
        row(
            b.name,
            &[
                s.num_qubits.to_string(),
                s.two_qubit_gates.to_string(),
                s.one_qubit_gates.to_string(),
                format!("{:.1}", s.two_qubit_gates_per_qubit),
                format!("{:.1}", s.degree_per_qubit),
            ],
        );
    }
}

/// Table III: multi-qubit pulse counts, Geyser vs Atomique.
pub fn table3(quick: bool) {
    section("Table III: multi-qubit pulses (lower is better)");
    let suite = large_suite();
    let mut names = Vec::new();
    let mut geyser_row = Vec::new();
    let mut atomique_row = Vec::new();
    for label in paper::TABLE3_LABELS {
        if quick && label == "QV-32" {
            continue;
        }
        let b = suite
            .iter()
            .find(|b| b.name == label)
            .expect("table 3 benchmark in suite");
        let g = geyser_pulses_routed(&b.circuit).expect("geyser routes");
        let a = compile(&b.circuit, &AtomiqueConfig::default()).expect("atomique compiles");
        names.push(label);
        geyser_row.push(g.pulses as f64);
        atomique_row.push(atomique_pulses(a.stats.two_qubit_gates) as f64);
    }
    row("", &names.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    row(
        "Geyser (measured)",
        &geyser_row.iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
    );
    row(
        "Atomique (measured)",
        &atomique_row.iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
    );
    let pg: Vec<f64> = paper::TABLE3_PULSES[0].to_vec();
    let pa: Vec<f64> = paper::TABLE3_PULSES[1].to_vec();
    row(
        "Geyser (paper)",
        &pg.iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
    );
    row(
        "Atomique (paper)",
        &pa.iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
    );
    let ratios: Vec<f64> = geyser_row
        .iter()
        .zip(&atomique_row)
        .map(|(g, a)| g / a.max(1.0))
        .collect();
    println!(
        "measured Geyser/Atomique pulse ratio: up to {:.1}x (paper: up to 6.5x)",
        ratios.iter().copied().fold(0.0f64, f64::max)
    );
}

/// Fig. 12: the constant-negative-jerk movement profile.
pub fn fig12() {
    section("Fig. 12: atom movement pattern (15 um in 300 us)");
    let m = MovementProfile::new(15e-6, 300e-6);
    row(
        "t (us)",
        &["jerk", "accel", "velocity", "distance"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for s in m.sample(13) {
        row(
            &format!("{:.0}", s.t_s * 1e6),
            &[
                format!("{:+.3e}", s.jerk),
                format!("{:+.4}", s.accel),
                format!("{:.4}", s.velocity),
                format!("{:.2}", s.distance * 1e6),
            ],
        );
    }
    println!(
        "peak velocity {:.3} m/s (paper profile peaks at 3D/2T = {:.3})",
        m.peak_velocity(),
        1.5 * 15e-6 / 300e-6
    );
}

/// Fig. 13: depth, two-qubit gates and fidelity on 17 benchmarks × 5
/// architectures.
pub fn fig13(quick: bool) {
    section("Fig. 13: architecture comparison");
    let cfg = AtomiqueConfig::default();
    let suite = large_suite();
    let mut names: Vec<&str> = Vec::new();
    // measured[arch][bench]
    let mut depth = vec![Vec::new(); 5];
    let mut two_q = vec![Vec::new(); 5];
    let mut fidelity = vec![Vec::new(); 5];
    for b in &suite {
        if quick && matches!(b.name, "QV-32" | "LiH-6") {
            continue;
        }
        let out = compare_architectures(b.name, &b.circuit, &cfg);
        names.push(b.name);
        for (i, f) in out.fixed.iter().enumerate() {
            depth[i].push(f.depth as f64);
            two_q[i].push(f.two_qubit_gates as f64);
            fidelity[i].push(f.total_fidelity());
        }
        depth[4].push(out.atomique.stats.depth as f64);
        two_q[4].push(out.atomique.stats.two_qubit_gates as f64);
        fidelity[4].push(out.atomique.total_fidelity());
    }
    for (metric, measured, paper_rows) in [
        ("depth", &depth, &paper::FIG13_DEPTH),
        ("2Q gates", &two_q, &paper::FIG13_TWO_Q),
        ("fidelity", &fidelity, &paper::FIG13_FIDELITY),
    ] {
        println!("--- {metric} ---");
        let mut hdr = vec!["".to_string()];
        hdr.extend(names.iter().map(|s| s.to_string()));
        hdr.push("GMean".into());
        row(&hdr[0], &hdr[1..]);
        for (i, arch) in paper::FIG13_ARCHS.iter().enumerate() {
            let mut cells: Vec<String> = measured[i].iter().map(|&v| fmt(v)).collect();
            cells.push(fmt(gmean(&measured[i])));
            row(&format!("{arch} (meas)"), &cells);
            // Paper values for the kept benchmarks.
            let paper_vals: Vec<f64> = paper::FIG13_LABELS
                .iter()
                .zip(paper_rows[i].iter())
                .filter(|(l, _)| names.contains(l))
                .map(|(_, &v)| v)
                .collect();
            let mut cells: Vec<String> = paper_vals.iter().map(|&v| fmt(v)).collect();
            cells.push(fmt(gmean(&paper_vals)));
            row(&format!("{arch} (paper)"), &cells);
        }
    }
    // Headline ratios.
    for (i, arch) in paper::FIG13_ARCHS[..4].iter().enumerate() {
        println!(
            "{arch}: measured 2Q x{:.1} / depth x{:.1} vs Atomique (paper: x{:.1} / x{:.1})",
            gmean(&two_q[i]) / gmean(&two_q[4]),
            gmean(&depth[i]) / gmean(&depth[4]),
            paper::FIG13_TWO_Q[i][17] / paper::FIG13_TWO_Q[4][17],
            paper::FIG13_DEPTH[i][17] / paper::FIG13_DEPTH[4][17],
        );
    }
}

/// Fig. 14: Tan-Solver / Tan-IterP / Atomique on the small suite.
///
/// Atomique runs with a single AOD, matching the paper's setting.
pub fn fig14(quick: bool) {
    section("Fig. 14: solver-based compilers (Atomique with 1 AOD)");
    let solver_timeout = Duration::from_secs(if quick { 2 } else { 30 });
    let params = HardwareParams::neutral_atom();
    let hw = RaaConfig::new(ArrayDims::new(10, 10), vec![ArrayDims::new(10, 10)])
        .expect("valid 1-AOD machine");
    let cfg = AtomiqueConfig::for_hardware(hw);

    let mut names = Vec::new();
    let mut fid = vec![Vec::new(); 3];
    let mut twoq = vec![Vec::new(); 3];
    let mut time = vec![Vec::new(); 3];
    for b in small_suite() {
        let solver = tan_solver(&b.circuit, &params, solver_timeout);
        let iterp = tan_iterp(&b.circuit, &params);
        let ours = compile(&b.circuit, &cfg).expect("atomique compiles");
        names.push(b.name);
        fid[0].push(solver.total_fidelity());
        fid[1].push(iterp.total_fidelity());
        fid[2].push(ours.total_fidelity());
        twoq[0].push(solver.two_qubit_gates as f64);
        twoq[1].push(iterp.two_qubit_gates as f64);
        twoq[2].push(ours.stats.two_qubit_gates as f64);
        time[0].push(solver.compile_time_s.max(1e-4));
        time[1].push(iterp.compile_time_s.max(1e-4));
        time[2].push(ours.stats.compile_time_s.max(1e-4));
        if solver.timed_out {
            println!("  note: Tan-Solver timed out on {}", b.name);
        }
    }
    let series = ["Tan-Solver", "Tan-IterP", "Atomique"];
    for (metric, measured, paper_rows) in [
        ("fidelity", &fid, &paper::FIG14_FIDELITY),
        ("2Q gates", &twoq, &paper::FIG14_TWO_Q),
        ("compile time (s)", &time, &paper::FIG14_COMPILE_S),
    ] {
        println!("--- {metric} ---");
        let mut hdr: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        hdr.push("Mean".into());
        row("", &hdr);
        for (i, s) in series.iter().enumerate() {
            let mut cells: Vec<String> = measured[i].iter().map(|&v| fmt(v)).collect();
            cells.push(fmt(gmean(&measured[i])));
            row(&format!("{s} (meas)"), &cells);
            row(
                &format!("{s} (paper)"),
                &paper_rows[i].iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
            );
        }
    }
    println!(
        "compile-time ratio solver/Atomique: measured {:.0}x (paper >1000x; solver timeout capped at {:?})",
        gmean(&time[0]) / gmean(&time[2]),
        solver_timeout
    );
}

/// Fig. 19: Atomique vs Q-Pilot on QAOA/QSim workloads.
pub fn fig19(quick: bool) {
    section("Fig. 19: Atomique vs Q-Pilot");
    let params = HardwareParams::neutral_atom();
    let cfg = AtomiqueConfig::default();
    let seed = 2024;
    let mut workloads = vec![
        ("QAOA-rand-10", qaoa_random(10, 0.5, seed)),
        ("QAOA-rand-20", qaoa_random(20, 0.5, seed)),
        ("QAOA-regu5-40", qaoa_regular(40, 5, seed)),
        ("QAOA-regu6-100", qaoa_regular(100, 6, seed)),
        ("QSim-rand-10", qsim_random(10, 0.5, 10, seed)),
        ("QSim-rand-20", qsim_random(20, 0.5, 10, seed)),
        ("QSim-rand-40", qsim_random(40, 0.5, 10, seed)),
    ];
    if !quick {
        workloads.push(("QSim-rand-100", qsim_random(100, 0.5, 10, seed)));
    }
    let mut names = Vec::new();
    let mut depth = vec![Vec::new(); 2];
    let mut twoq = vec![Vec::new(); 2];
    let mut fid = vec![Vec::new(); 2];
    for (name, c) in &workloads {
        let ours = compile(c, &cfg).expect("atomique compiles");
        let qp = qpilot(c, &params);
        names.push(*name);
        depth[0].push(ours.stats.depth as f64);
        depth[1].push(qp.depth as f64);
        twoq[0].push(ours.stats.two_qubit_gates as f64);
        twoq[1].push(qp.two_qubit_gates as f64);
        fid[0].push(ours.total_fidelity());
        fid[1].push(qp.total_fidelity());
    }
    let series = ["Atomique", "Q-Pilot"];
    for (metric, measured, paper_rows) in [
        ("depth", &depth, &paper::FIG19_DEPTH),
        ("2Q gates", &twoq, &paper::FIG19_TWO_Q),
        ("fidelity", &fid, &paper::FIG19_FIDELITY),
    ] {
        println!("--- {metric} ---");
        let mut hdr: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        hdr.push("GMean".into());
        row("", &hdr);
        for (i, s) in series.iter().enumerate() {
            let mut cells: Vec<String> = measured[i].iter().map(|&v| fmt(v)).collect();
            cells.push(fmt(gmean(&measured[i])));
            row(&format!("{s} (meas)"), &cells);
            row(
                &format!("{s} (paper)"),
                &paper_rows[i].iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
            );
        }
    }
    println!("expected shape: Q-Pilot shallower but ~2-3x more 2Q gates and lower fidelity");
}

/// Fig. 25: additional CNOTs from SWAP insertion across architectures.
pub fn fig25(quick: bool) {
    section("Fig. 25: additional CNOT from SWAP insertion");
    let cfg = AtomiqueConfig::default();
    let suite = large_suite();
    let keep: Vec<&str> = paper::FIG25_LABELS[..13]
        .iter()
        .copied()
        .filter(|l| !quick || !matches!(*l, "QV-32" | "LiH-6"))
        .collect();
    let mut names = Vec::new();
    let mut rows = vec![Vec::new(); 5];
    for label in keep {
        let Some(b) = suite.iter().find(|b| b.name == label) else {
            continue;
        };
        let out = compare_architectures(b.name, &b.circuit, &cfg);
        names.push(label);
        for (i, f) in out.fixed.iter().enumerate() {
            rows[i].push(f.additional_cnots as f64);
        }
        rows[4].push(out.atomique.stats.additional_cnots as f64);
    }
    let mut hdr: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    hdr.push("GMean".into());
    row("", &hdr);
    for (i, arch) in paper::FIG13_ARCHS.iter().enumerate() {
        let mut cells: Vec<String> = rows[i].iter().map(|&v| fmt(v)).collect();
        cells.push(fmt(gmean(&rows[i])));
        row(&format!("{arch} (meas)"), &cells);
        if i < 4 {
            let paper_vals: Vec<f64> = paper::FIG25_LABELS
                .iter()
                .zip(paper::FIG25_ADDITIONAL_CNOT[i].iter())
                .filter(|(l, _)| names.contains(l))
                .map(|(_, &v)| v)
                .collect();
            row(
                &format!("{arch} (paper)"),
                &paper_vals.iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
            );
        }
    }
    println!("expected shape: Atomique adds far fewer CNOTs than every fixed architecture");
}
