//! Shared experiment-harness utilities: compiling one benchmark on every
//! architecture, geometric means, and aligned table printing.

use atomique::{compile, AtomiqueConfig, CompiledProgram};
use raa_baselines::{compile_fixed, FixedArchitecture, FixedCompileResult};
use raa_circuit::Circuit;

/// Geometric mean (values clamped away from zero as the paper's plots do).
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let logs: f64 = xs.iter().map(|&x| x.max(1e-9).ln()).sum();
    (logs / xs.len() as f64).exp()
}

/// One benchmark compiled on every architecture of Fig. 13.
#[derive(Debug)]
pub struct ArchComparison {
    /// Benchmark name.
    pub name: String,
    /// Baseline results, in [`FixedArchitecture::ALL`] order.
    pub fixed: Vec<FixedCompileResult>,
    /// Atomique's result.
    pub atomique: CompiledProgram,
}

/// Compiles `circuit` on the four fixed baselines and on Atomique.
///
/// # Panics
///
/// Panics if any compilation fails (the harness benchmarks are all sized
/// to fit every architecture).
pub fn compare_architectures(
    name: &str,
    circuit: &Circuit,
    cfg: &AtomiqueConfig,
) -> ArchComparison {
    let fixed = FixedArchitecture::ALL
        .iter()
        .map(|&arch| {
            compile_fixed(circuit, arch, 0)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", arch.name()))
        })
        .collect();
    let atomique = compile(circuit, cfg).unwrap_or_else(|e| panic!("{name} on Atomique: {e}"));
    ArchComparison {
        name: name.to_string(),
        fixed,
        atomique,
    }
}

/// Compiles independent benchmark circuits concurrently on `pool`.
///
/// Each compile is a *self-contained* job — it opens (and closes) its
/// own `raa-trace` session when its config enables tracing — so the
/// wave runs through [`raa_par::WorkPool::map_isolated`]: workers get
/// fresh threads with no session attached, per-compile counters and
/// timings stay unpolluted by their neighbours, and results come back
/// in submission order. With `threads = 1` this is exactly the
/// sequential compile loop.
///
/// # Panics
///
/// Panics if any compilation fails.
pub fn compile_suite_pooled(
    jobs: &[(&str, &Circuit, AtomiqueConfig)],
    pool: &raa_par::WorkPool,
) -> Vec<CompiledProgram> {
    pool.map_isolated("par.suite", jobs, |_, (name, circuit, cfg)| {
        compile(circuit, cfg).unwrap_or_else(|e| panic!("{name}: {e}"))
    })
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints one aligned row: a label plus formatted cells.
pub fn row(label: &str, cells: &[String]) {
    print!("{label:<22}");
    for c in cells {
        print!(" {c:>12}");
    }
    println!();
}

/// Formats a float with three significant decimals, or an integer-like
/// value without decimals.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Prints a paper-vs-measured metric block: one line per series.
pub fn paper_vs_measured(metric: &str, labels: &[&str], paper: &[f64], measured: &[f64]) {
    println!("--- {metric} ---");
    row(
        "",
        &labels.iter().map(|l| l.to_string()).collect::<Vec<_>>(),
    );
    row("paper", &paper.iter().map(|&v| fmt(v)).collect::<Vec<_>>());
    row(
        "measured",
        &measured.iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
    );
}

/// Column labels matching [`isa_row`].
pub const ISA_COLUMNS: [&str; 7] = [
    "instrs",
    "moves",
    "pulses",
    "xfers",
    "travel(mm)",
    "json(KB)",
    "bin(KB)",
];

/// ISA-level statistics of one instruction stream, formatted for
/// [`row`]: instruction count, moves, pulses, transfers, summed line
/// travel, and both encoded stream sizes.
pub fn isa_row(program: &raa_isa::IsaProgram) -> Vec<String> {
    let s = raa_isa::IsaStats::of(program);
    let json_bytes = raa_isa::codec::to_json(program)
        .unwrap_or_else(|e| panic!("unencodable stream for `{}`: {e}", program.header.name))
        .len();
    let bin_bytes = raa_isa::codec::to_bytes(program).len();
    vec![
        s.instructions.to_string(),
        s.moves.to_string(),
        s.pulses.to_string(),
        s.transfers.to_string(),
        fmt(s.line_travel_um / 1000.0),
        fmt(json_bytes as f64 / 1024.0),
        fmt(bin_bytes as f64 / 1024.0),
    ]
}

/// Column labels matching [`isa_opt_row`].
pub const ISA_OPT_COLUMNS: [&str; 6] = [
    "instrs",
    "instrs-opt",
    "Δinstr%",
    "travel(mm)",
    "travel-opt",
    "Δtravel%",
];

/// Percentage saved going from `before` to `after` (0 when `before` is
/// zero).
pub fn saved_pct(before: f64, after: f64) -> f64 {
    if before <= 0.0 {
        0.0
    } else {
        (before - after) / before * 100.0
    }
}

/// Optimizer before/after deltas of one stream, formatted for [`row`]:
/// instruction count and line travel of the unoptimized and optimized
/// streams, plus the percentage saved by each.
pub fn isa_opt_row(before: &raa_isa::IsaProgram, after: &raa_isa::IsaProgram) -> Vec<String> {
    let b = raa_isa::IsaStats::of(before);
    let a = raa_isa::IsaStats::of(after);
    vec![
        b.instructions.to_string(),
        a.instructions.to_string(),
        fmt(saved_pct(b.instructions as f64, a.instructions as f64)),
        fmt(b.line_travel_um / 1000.0),
        fmt(a.line_travel_um / 1000.0),
        fmt(saved_pct(b.line_travel_um, a.line_travel_um)),
    ]
}

/// Column labels matching [`scaling_row`].
pub const SCALING_COLUMNS: [&str; 7] = [
    "qubits",
    "2q-gates",
    "stages",
    "transfers",
    "grid(s)",
    "scan(s)",
    "speedup",
];

/// One row of the router-scaling study (`isa_stats`-style): circuit
/// size, routed stage count, and wall-clock compile time with the
/// spatial-grid index vs. the exhaustive-scan oracle (`scan_s` is `None`
/// when the oracle run was skipped).
pub fn scaling_row(out: &CompiledProgram, grid_s: f64, scan_s: Option<f64>) -> Vec<String> {
    vec![
        out.stats.num_qubits.to_string(),
        out.stats.two_qubit_gates.to_string(),
        out.stats.depth.to_string(),
        out.stats.transfers.to_string(),
        format!("{grid_s:.2}"),
        scan_s.map_or_else(|| "-".into(), |s| format!("{s:.2}")),
        scan_s.map_or_else(|| "-".into(), |s| format!("{:.1}x", s / grid_s.max(1e-9))),
    ]
}

/// One workload pushed through the batch-compilation service twice:
/// a cold submission (cache miss, full compile) and an identical warm
/// one (cache hit, no compile). The schema-5 `serve` columns of
/// `BENCH_scaling.json` come from this probe.
#[derive(Debug)]
pub struct ServeProbe {
    /// Wall-clock of the cold (miss) submission, seconds.
    pub cold_s: f64,
    /// Wall-clock of the warm (hit) submission, seconds.
    pub warm_s: f64,
    /// Engine cache hits after both submissions (expected 1).
    pub cache_hits: u64,
    /// Engine cache misses after both submissions (expected 1).
    pub cache_misses: u64,
    /// High-water mark of the engine's admission queue.
    pub max_queue_depth: u64,
    /// The served binary-codec ISA bytes — callers assert these
    /// bit-identical to the direct in-process compile.
    pub isa_bytes: Vec<u8>,
}

/// Drives one circuit through a fresh [`raa_serve::engine::Engine`]
/// cold and warm under `cfg`, returning the served bytes and the
/// cache/queue counters.
///
/// # Panics
///
/// Panics if either submission fails, if the warm pass is not a pure
/// cache hit, or if the warm bytes differ from the cold bytes.
pub fn serve_probe(name: &str, circuit: &Circuit, cfg: &AtomiqueConfig) -> ServeProbe {
    use raa_serve::engine::{CacheStatus, Engine, Job, ServeConfig};

    let engine = Engine::new(ServeConfig {
        base: cfg.clone(),
        ..ServeConfig::default()
    });
    let jobs = [Job {
        name: name.to_string(),
        circuit: circuit.clone(),
    }];
    let submit = |label: &str| {
        let t0 = std::time::Instant::now();
        let out = engine
            .submit(engine.base(), &jobs)
            .unwrap_or_else(|e| panic!("{name}: serve {label} submission: {e}"));
        let s = t0.elapsed().as_secs_f64();
        let result = out[0]
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{name}: serve {label} job: {e}"))
            .clone();
        (s, result)
    };
    let (cold_s, cold) = submit("cold");
    let (warm_s, warm) = submit("warm");
    assert_eq!(
        cold.status,
        CacheStatus::Miss,
        "{name}: cold pass not a miss"
    );
    assert_eq!(warm.status, CacheStatus::Hit, "{name}: warm pass not a hit");
    assert_eq!(
        cold.entry.isa_bytes, warm.entry.isa_bytes,
        "{name}: warm bytes diverge from cold"
    );
    let stats = engine.stats();
    ServeProbe {
        cold_s,
        warm_s,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        max_queue_depth: stats.max_queue_depth,
        isa_bytes: warm.entry.isa_bytes.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_basics() {
        assert!((gmean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((gmean(&[5.0]) - 5.0).abs() < 1e-9);
        assert_eq!(gmean(&[]), 0.0);
        // Zero-clamping keeps the result finite.
        assert!(gmean(&[0.0, 1.0]).is_finite());
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.0), "1234");
        assert_eq!(fmt(3.25), "3.2");
        assert_eq!(fmt(0.123), "0.123");
    }

    #[test]
    fn isa_opt_row_reports_savings() {
        use atomique::{compile, emit_isa, OptLevel};
        let c = raa_benchmarks::ghz(8);
        let cfg = AtomiqueConfig::default();
        let out = compile(&c, &cfg).unwrap();
        let before = emit_isa(&out, &cfg.hardware, "ghz-8");
        let (after, _) = raa_isa::optimize(&before, OptLevel::Aggressive);
        let cells = isa_opt_row(&before, &after);
        assert_eq!(cells.len(), ISA_OPT_COLUMNS.len());
        let b: usize = cells[0].parse().unwrap();
        let a: usize = cells[1].parse().unwrap();
        assert!(a <= b);
    }

    #[test]
    fn compare_architectures_runs() {
        let c = raa_benchmarks::ghz(6);
        let out = compare_architectures("ghz", &c, &AtomiqueConfig::default());
        assert_eq!(out.fixed.len(), 4);
        assert!(out.atomique.stats.two_qubit_gates >= 5);
    }
}
