//! Experiment harness regenerating every table and figure of the Atomique
//! paper's evaluation (Sec. V).
//!
//! Each experiment is exposed as a function (and a binary of the same
//! name, e.g. `cargo run --release -p raa-bench --bin fig13`). The
//! `figures` bench target (`cargo bench -p raa-bench --bench figures`)
//! runs all of them in quick mode and prints paper-vs-measured rows; see
//! `EXPERIMENTS.md` for recorded results.

#![warn(missing_docs)]

pub mod harness;
pub mod paper;

mod figs_main;
mod figs_sweeps;

pub use figs_main::{fig12, fig13, fig14, fig19, fig25, table1, table2, table3};
pub use figs_sweeps::{
    fig15, fig16, fig17, fig18, fig20a, fig20b, fig20c, fig21, fig22, fig23, fig24,
};

/// Parses the conventional `--quick` flag used by every figure binary.
pub fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}
