//! Sensitivity and analysis experiments: Figs. 15–18 and 20–24.

use atomique::{compile, ArrayMapperKind, AtomMapperKind, AtomiqueConfig, Relaxation};
use raa_arch::{ArrayDims, RaaConfig};
use raa_baselines::{compile_fixed_with, FixedArchitecture};
use raa_benchmarks::{
    arbitrary_circuit, phase_code, qaoa_random, qaoa_regular, qsim_random, relaxation_suite,
    topology_suite,
};
use raa_circuit::Circuit;
use raa_physics::HardwareParams;

use crate::harness::{fmt, gmean, row, section};
use crate::paper;

const SEED: u64 = 2024;

fn fixed_fidelity(c: &Circuit, arch: FixedArchitecture, params: Option<&HardwareParams>) -> f64 {
    // Lighter layout search: the sweeps run hundreds of routings.
    let cfg = raa_sabre::LayoutConfig {
        trials: 1,
        passes: 2,
        ..Default::default()
    };
    let r = compile_fixed_with(c, arch, &cfg).expect("baseline compiles");
    match params {
        None => r.total_fidelity(),
        Some(p) => {
            // Re-evaluate under swept parameters.
            raa_physics::fixed_architecture_fidelity(
                p,
                r.two_qubit_gates.max(1), // qubit count proxy not needed: use stats below
                r.one_qubit_gates,
                r.two_qubit_gates,
                0,
                r.depth,
            )
            .total()
        }
    }
}

/// Fig. 15: generic-circuit sweep over 2Q-gates-per-qubit × degree.
pub fn fig15(quick: bool) {
    section("Fig. 15: generic circuits (40 qubits), fidelity improvement over FAA");
    let gpq: &[f64] = if quick {
        &[2.0, 10.0, 26.0]
    } else {
        &[2.0, 6.0, 10.0, 14.0, 18.0, 22.0, 26.0]
    };
    let degs: &[f64] = if quick {
        &[2.0, 4.0, 7.0]
    } else {
        &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]
    };
    let cfg = AtomiqueConfig::default();
    row(
        "gpq\\deg",
        &degs.iter().map(|d| format!("d={d}")).collect::<Vec<_>>(),
    );
    for &g in gpq {
        let mut impr_rect = Vec::new();
        let mut impr_tri = Vec::new();
        let mut counts = Vec::new();
        for &d in degs {
            let c = arbitrary_circuit(40, g, d, SEED);
            let ours = compile(&c, &cfg).expect("atomique compiles");
            let rect = fixed_fidelity(&c, FixedArchitecture::FaaRectangular, None);
            let tri = fixed_fidelity(&c, FixedArchitecture::FaaTriangular, None);
            impr_rect.push(ours.total_fidelity() / rect.max(1e-9));
            impr_tri.push(ours.total_fidelity() / tri.max(1e-9));
            counts.push(ours.stats.two_qubit_gates as f64);
        }
        row(
            &format!("g={g} 2Q"),
            &counts.iter().map(|&v| fmt(v)).collect::<Vec<_>>(),
        );
        row(
            &format!("g={g} vs rect"),
            &impr_rect
                .iter()
                .map(|&v| format!("{v:.2}x"))
                .collect::<Vec<_>>(),
        );
        row(
            &format!("g={g} vs tri"),
            &impr_tri
                .iter()
                .map(|&v| format!("{v:.2}x"))
                .collect::<Vec<_>>(),
        );
    }
    println!("expected shape: improvement grows with both gate count and degree;");
    println!("low-degree well-localized circuits can favour FAA (ratios near or below 1)");
}

/// Fig. 16: QAOA sweep over qubit count × graph degree.
pub fn fig16(quick: bool) {
    section("Fig. 16: QAOA regular graphs, fidelity improvement over FAA");
    let sizes: &[usize] = if quick {
        &[10, 40, 100]
    } else {
        &[10, 20, 40, 60, 80, 100]
    };
    let degs: &[usize] = if quick {
        &[3, 5, 7]
    } else {
        &[2, 3, 4, 5, 6, 7]
    };
    let cfg = AtomiqueConfig::default();
    row(
        "n\\deg",
        &degs.iter().map(|d| format!("d={d}")).collect::<Vec<_>>(),
    );
    for &n in sizes {
        let mut cells = Vec::new();
        for &d in degs {
            if d >= n || (n * d) % 2 == 1 {
                cells.push("-".to_string());
                continue;
            }
            let c = qaoa_regular(n, d, SEED);
            let ours = compile(&c, &cfg).expect("atomique compiles");
            let tri = fixed_fidelity(&c, FixedArchitecture::FaaTriangular, None);
            cells.push(format!("{:.2}x", ours.total_fidelity() / tri.max(1e-9)));
        }
        row(&format!("n={n}"), &cells);
    }
    println!("expected shape: higher degree and more qubits -> larger advantage");
}

/// Fig. 17: QSim sweep over qubit count × non-identity probability.
pub fn fig17(quick: bool) {
    section("Fig. 17: QSim circuits, fidelity improvement over FAA");
    let sizes: &[usize] = if quick {
        &[10, 40]
    } else {
        &[10, 20, 40, 60, 80, 100]
    };
    let probs: &[f64] = if quick {
        &[0.3, 0.7]
    } else {
        &[0.1, 0.3, 0.5, 0.7]
    };
    let cfg = AtomiqueConfig::default();
    row(
        "n\\p",
        &probs.iter().map(|p| format!("p={p}")).collect::<Vec<_>>(),
    );
    for &n in sizes {
        let mut cells = Vec::new();
        for &p in probs {
            let c = qsim_random(n, p, 10, SEED);
            if c.two_qubit_count() == 0 {
                cells.push("-".into());
                continue;
            }
            let ours = compile(&c, &cfg).expect("atomique compiles");
            let tri = fixed_fidelity(&c, FixedArchitecture::FaaTriangular, None);
            cells.push(format!("{:.1}x", ours.total_fidelity() / tri.max(1e-9)));
        }
        row(&format!("n={n}"), &cells);
    }
    println!("expected shape: non-locality (higher p) and scale increase the advantage");
}

/// Fig. 18: sensitivity to six hardware parameters, with the BV-70 error
/// breakdown.
pub fn fig18(quick: bool) {
    section("Fig. 18: hardware-parameter sensitivity");
    let workloads = [
        ("BV-70", raa_benchmarks::bv(70, 36, SEED)),
        ("QSim-rand-20", qsim_random(20, 0.5, 10, SEED)),
        ("QAOA-regu5-40", qaoa_regular(40, 5, SEED)),
    ];

    // (a) time per move.
    println!("--- (a) time per move (us) ---");
    let times: &[f64] = if quick {
        &[100.0, 300.0, 1000.0]
    } else {
        &[100.0, 200.0, 300.0, 500.0, 700.0, 1000.0]
    };
    row(
        "workload",
        &times
            .iter()
            .map(|t| format!("{t:.0}us"))
            .collect::<Vec<_>>(),
    );
    for (name, c) in &workloads {
        let cells: Vec<String> = times
            .iter()
            .map(|&t| {
                let mut cfg = AtomiqueConfig::default();
                cfg.params = cfg.params.with_t_move(t * 1e-6);
                fmt(compile(c, &cfg).expect("compiles").total_fidelity())
            })
            .collect();
        row(name, &cells);
    }
    println!(
        "expected shape: too fast -> heating/atom loss; too slow -> decoherence; optimum ~300 us"
    );

    // (b) average move speed is the same sweep re-expressed.
    println!("--- (b) average move speed (m/s) = d / t_move ---");
    let d = HardwareParams::neutral_atom().atom_distance_um;
    row(
        "speed",
        &times
            .iter()
            .map(|&t| format!("{:.3}", d * 1e-6 / (t * 1e-6)))
            .collect::<Vec<_>>(),
    );

    // (c) atom distance.
    println!("--- (c) atom distance (um) ---");
    let dists: &[f64] = if quick {
        &[15.0, 60.0]
    } else {
        &[15.0, 30.0, 45.0, 60.0]
    };
    row(
        "workload",
        &dists
            .iter()
            .map(|d| format!("{d:.0}um"))
            .collect::<Vec<_>>(),
    );
    for (name, c) in &workloads {
        let cells: Vec<String> = dists
            .iter()
            .map(|&dist| {
                let hw = RaaConfig::with_physics(
                    ArrayDims::new(10, 10),
                    vec![ArrayDims::new(10, 10), ArrayDims::new(10, 10)],
                    dist,
                    2.5,
                )
                .expect("valid spacing");
                let mut cfg = AtomiqueConfig::for_hardware(hw);
                cfg.params = cfg.params.with_atom_distance(dist);
                fmt(compile(c, &cfg).expect("compiles").total_fidelity())
            })
            .collect();
        row(name, &cells);
    }
    println!("note: the paper's 1-10 um points violate the 6 r_b spacing floor and are omitted");
    println!("expected shape: heating (and then cooling overhead) grows with distance");

    // (d) n_vib cooling threshold, evaluated at 60 um spacing as the paper
    // does (to stress cooling).
    println!("--- (d) n_vib cooling threshold (60 um spacing) ---");
    let thresholds: &[f64] = if quick {
        &[5.0, 15.0, 30.0]
    } else {
        &[5.0, 10.0, 15.0, 20.0, 25.0, 30.0]
    };
    row(
        "workload",
        &thresholds
            .iter()
            .map(|t| format!("{t:.0}"))
            .collect::<Vec<_>>(),
    );
    for (name, c) in &workloads {
        let cells: Vec<String> = thresholds
            .iter()
            .map(|&th| {
                let hw = RaaConfig::with_physics(
                    ArrayDims::new(10, 10),
                    vec![ArrayDims::new(10, 10), ArrayDims::new(10, 10)],
                    60.0,
                    2.5,
                )
                .expect("valid spacing");
                let mut cfg = AtomiqueConfig::for_hardware(hw);
                cfg.params = cfg.params.with_atom_distance(60.0).with_cool_threshold(th);
                fmt(compile(c, &cfg).expect("compiles").total_fidelity())
            })
            .collect();
        row(name, &cells);
    }
    println!("expected shape: low threshold -> cooling overhead; high -> atom loss; optimum 12-25");

    // (e) coherence time.
    println!("--- (e) coherence time (s) ---");
    let t1s: &[f64] = if quick {
        &[0.15, 15.0]
    } else {
        &[0.15, 1.5, 15.0, 150.0]
    };
    row(
        "workload",
        &t1s.iter().map(|t| format!("{t}s")).collect::<Vec<_>>(),
    );
    for (name, c) in &workloads {
        let cells: Vec<String> = t1s
            .iter()
            .map(|&t1| {
                let mut cfg = AtomiqueConfig::default();
                cfg.params = cfg.params.with_coherence_time(t1);
                fmt(compile(c, &cfg).expect("compiles").total_fidelity())
            })
            .collect();
        row(name, &cells);
    }
    println!("expected shape: RAA needs T1 over ~1 s to beat FAA (movement time dominates)");

    // (f) two-qubit gate fidelity.
    println!("--- (f) 2Q gate fidelity ---");
    let f2qs: &[f64] = if quick {
        &[0.99, 0.9975, 0.9999]
    } else {
        &[0.99, 0.995, 0.9975, 0.999, 0.9999]
    };
    row(
        "workload",
        &f2qs.iter().map(|f| format!("{f}")).collect::<Vec<_>>(),
    );
    for (name, c) in &workloads {
        let cells: Vec<String> = f2qs
            .iter()
            .map(|&f| {
                let mut cfg = AtomiqueConfig::default();
                cfg.params = cfg.params.with_two_qubit_fidelity(f);
                fmt(compile(c, &cfg).expect("compiles").total_fidelity())
            })
            .collect();
        row(name, &cells);
    }
    println!("expected shape: above ~0.9999 the SWAP overhead stops mattering and FAA catches up");

    // Error breakdown (bottom row of Fig. 18) for BV-70 at defaults.
    println!("--- BV-70 error breakdown, -log(F) per source ---");
    let out = compile(&workloads[0].1, &AtomiqueConfig::default()).expect("compiles");
    for (name, v) in out.fidelity.neg_log_components() {
        println!("  {name:<18} {v:.4}");
    }
}

/// Fig. 20(a): array shape at fixed trap count (49 traps per array).
pub fn fig20a(quick: bool) {
    section("Fig. 20a: row/column ratio at 49 traps per array");
    let shapes: &[(usize, usize)] = if quick {
        &[(49, 1), (7, 7), (1, 49)]
    } else {
        &[
            (49, 1),
            (24, 2),
            (16, 3),
            (12, 4),
            (9, 5),
            (8, 6),
            (7, 7),
            (6, 8),
            (5, 9),
            (4, 12),
            (3, 16),
            (2, 24),
            (1, 49),
        ]
    };
    topology_sweep(
        shapes.iter().map(|&(r, c)| (ArrayDims::new(r, c), 2)),
        shapes.iter().map(|&(r, c)| format!("{r}x{c}")),
    );
    println!("expected shape: square arrays maximize fidelity (shortest moves)");
}

/// Fig. 20(b): square array size from 7×7 to 20×20.
pub fn fig20b(quick: bool) {
    section("Fig. 20b: square array size");
    let sides: &[usize] = if quick {
        &[7, 10, 20]
    } else {
        &[7, 8, 9, 10, 12, 14, 16, 18, 20]
    };
    topology_sweep(
        sides.iter().map(|&s| (ArrayDims::new(s, s), 2)),
        sides.iter().map(|&s| format!("{s}x{s}")),
    );
    println!("expected shape: smallest array that fits gives the best fidelity");
}

/// Fig. 20(c): number of AOD arrays from 1 to 7.
pub fn fig20c(quick: bool) {
    section("Fig. 20c: number of AOD arrays");
    let counts: &[usize] = if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 3, 4, 5, 6, 7]
    };
    topology_sweep(
        counts.iter().map(|&k| (ArrayDims::new(10, 10), k)),
        counts.iter().map(|&k| format!("{k} AODs")),
    );
    println!("expected shape: more AODs -> fewer SWAPs and shorter time -> better fidelity");
}

fn topology_sweep(
    configs: impl Iterator<Item = (ArrayDims, usize)>,
    labels: impl Iterator<Item = String>,
) {
    let workloads = topology_suite();
    let configs: Vec<(ArrayDims, usize)> = configs.collect();
    let labels: Vec<String> = labels.collect();
    row("workload/metric", &labels.to_vec());
    for b in &workloads {
        let mut time = Vec::new();
        let mut fid = Vec::new();
        let mut dist = Vec::new();
        let mut twoq = Vec::new();
        for &(dims, aods) in &configs {
            let capacity = dims.capacity() * (1 + aods);
            if capacity < b.circuit.num_qubits() {
                time.push("-".into());
                fid.push("-".into());
                dist.push("-".into());
                twoq.push("-".into());
                continue;
            }
            let hw = RaaConfig::new(dims, vec![dims; aods]).expect("valid machine");
            let cfg = AtomiqueConfig::for_hardware(hw);
            match compile(&b.circuit, &cfg) {
                Ok(out) => {
                    time.push(format!("{:.4}", out.stats.execution_time_s));
                    fid.push(fmt(out.total_fidelity()));
                    dist.push(format!("{:.3}", out.stats.total_move_distance_mm));
                    twoq.push(fmt(out.stats.two_qubit_gates as f64));
                }
                Err(e) => {
                    time.push(format!("err:{e:.8}"));
                    fid.push("-".into());
                    dist.push("-".into());
                    twoq.push("-".into());
                }
            }
        }
        row(&format!("{} time(s)", b.name), &time);
        row(&format!("{} fidelity", b.name), &fid);
        row(&format!("{} move(mm)", b.name), &dist);
        row(&format!("{} 2Q", b.name), &twoq);
    }
}

/// Fig. 21: ablation of the three compiler techniques.
pub fn fig21(quick: bool) {
    section("Fig. 21: technique breakdown (random circuits, 26 gates/qubit)");
    let n = if quick { 15 } else { 30 };
    let c = arbitrary_circuit(n, 26.0, 5.0, SEED);
    let base = AtomiqueConfig::default().ablation_baseline();
    let configs = [
        ("baseline (dense/random/serial)", base.clone()),
        (
            "+ qubit-array mapper",
            AtomiqueConfig {
                array_mapper: ArrayMapperKind::MaxKCut,
                ..base.clone()
            },
        ),
        (
            "+ qubit-atom mapper",
            AtomiqueConfig {
                array_mapper: ArrayMapperKind::MaxKCut,
                atom_mapper: AtomMapperKind::LoadBalance,
                ..base.clone()
            },
        ),
        ("+ parallel router", AtomiqueConfig::default()),
    ];
    let mut fids = Vec::new();
    for (name, cfg) in &configs {
        let out = compile(&c, cfg).expect("compiles");
        println!(
            "{name:<34} fidelity {:.4}  (2Q {} depth {})",
            out.total_fidelity(),
            out.stats.two_qubit_gates,
            out.stats.depth
        );
        fids.push(out.total_fidelity());
    }
    for i in 1..fids.len() {
        println!(
            "step {} improvement: measured {:.2}x (paper: {:.2}x)",
            i,
            fids[i] / fids[i - 1].max(1e-12),
            paper::FIG21_FACTORS[i - 1]
        );
    }
    println!(
        "total: measured {:.2}x (paper: {:.1}x)",
        fids[3] / fids[0].max(1e-12),
        paper::FIG21_FACTORS[3]
    );
}

/// Fig. 22: relaxing each hardware constraint.
pub fn fig22(quick: bool) {
    section("Fig. 22: constraint relaxation");
    let mut suite = relaxation_suite();
    if quick {
        for b in &mut suite {
            // Quick mode shrinks the 100-qubit workloads.
            b.circuit = match b.name {
                "QAOA-rand-100" => qaoa_random(40, 0.15, SEED),
                "QSIM-rand-100" => qsim_random(40, 0.25, 10, SEED),
                _ => phase_code(40, 2),
            };
        }
    }
    let settings = [
        ("all constraints", Relaxation::NONE),
        (
            "relax C1 (addressing)",
            Relaxation {
                individual_addressing: true,
                ..Relaxation::NONE
            },
        ),
        (
            "relax C2 (ordering)",
            Relaxation {
                allow_order_violation: true,
                ..Relaxation::NONE
            },
        ),
        (
            "relax C3 (overlap)",
            Relaxation {
                allow_overlap: true,
                ..Relaxation::NONE
            },
        ),
    ];
    row(
        "",
        &suite
            .iter()
            .map(|b| b.name.to_string())
            .chain(["GMean".into()])
            .collect::<Vec<_>>(),
    );
    for (i, (name, relax)) in settings.iter().enumerate() {
        let mut dists = Vec::new();
        let mut depths = Vec::new();
        let mut times = Vec::new();
        for b in &suite {
            let cfg = AtomiqueConfig {
                relaxation: *relax,
                ..AtomiqueConfig::default()
            };
            let out = compile(&b.circuit, &cfg).expect("compiles");
            dists.push(out.stats.avg_move_distance_mm);
            depths.push(out.stats.depth as f64);
            times.push(out.stats.execution_time_s);
        }
        let cells: Vec<String> = depths
            .iter()
            .map(|&v| fmt(v))
            .chain([fmt(gmean(&depths))])
            .collect();
        row(&format!("{name} depth"), &cells);
        println!(
            "    gmean move-dist {:.4} mm, time {:.4} s  (paper gmeans: {:.4} mm, {:.0} depth, {:.4} s)",
            gmean(&dists),
            gmean(&times),
            paper::FIG22_GMEAN[i][0],
            paper::FIG22_GMEAN[i][1],
            paper::FIG22_GMEAN[i][2],
        );
    }
    println!("expected shape: relaxations reduce depth/time, raise move distance; C3 helps most");
}

/// Fig. 23: uniform vs varied SLM/AOD dimensions.
pub fn fig23(quick: bool) {
    section("Fig. 23: varied AOD sizes");
    let n = if quick { 48 } else { 100 };
    let workloads = [
        ("QAOA-rand", qaoa_random(n, 0.15, SEED)),
        ("QSIM-rand", qsim_random(n, 0.25, 10, SEED)),
        ("Phase-Code", phase_code(n.div_ceil(2), 2)),
    ];
    let configs = [
        (
            "uniform 8x8 + 8x8/8x8",
            RaaConfig::new(ArrayDims::new(8, 8), vec![ArrayDims::new(8, 8); 2]),
        ),
        (
            "varied 10x10 + 8x8/6x6",
            RaaConfig::new(
                ArrayDims::new(10, 10),
                vec![ArrayDims::new(8, 8), ArrayDims::new(6, 6)],
            ),
        ),
    ];
    for (name, hw) in configs {
        let hw = hw.expect("valid machine");
        let cfg = AtomiqueConfig::for_hardware(hw);
        let mut cells = Vec::new();
        for (wname, c) in &workloads {
            let out = compile(c, &cfg).expect("compiles");
            cells.push(format!(
                "{wname}: 2Q {} depth {} t {:.3}s d {:.3}mm",
                out.stats.two_qubit_gates,
                out.stats.depth,
                out.stats.execution_time_s,
                out.stats.total_move_distance_mm
            ));
        }
        println!("{name:<26} {}", cells.join(" | "));
    }
    println!(
        "expected shape: varied sizes give the mapper freedom -> fewer 2Q/depth, more movement"
    );
}

/// Fig. 24: overlaps when logical qubits approach physical capacity.
pub fn fig24(quick: bool) {
    section("Fig. 24: overlap under extreme occupancy (100 logical qubits)");
    let n = 100;
    let workloads = [
        ("QAOA-rand-100", qaoa_random(n, 0.15, SEED)),
        ("QSIM-rand-100", qsim_random(n, 0.25, 10, SEED)),
        ("Phase-Code-100", phase_code(50, 2)),
    ];
    let sides: &[usize] = if quick { &[6, 10] } else { &[6, 8, 10] };
    for &side in sides {
        let hw = RaaConfig::new(ArrayDims::new(10, 10), vec![ArrayDims::new(side, side); 2])
            .expect("valid machine");
        let cfg = AtomiqueConfig::for_hardware(hw);
        let mut overlaps = Vec::new();
        let mut cells = Vec::new();
        for (wname, c) in &workloads {
            let out = compile(c, &cfg).expect("compiles");
            overlaps.push(out.stats.overlap_rejections as f64);
            cells.push(format!(
                "{wname}: overlap {} 2Q {} depth {}",
                out.stats.overlap_rejections, out.stats.two_qubit_gates, out.stats.depth
            ));
        }
        println!("AOD {side}x{side}: {}", cells.join(" | "));
        println!(
            "  gmean overlaps measured {:.0} (paper {}x{}: {:.0})",
            gmean(&overlaps),
            side,
            side,
            match side {
                6 => paper::FIG24_OVERLAPS[0][3],
                8 => paper::FIG24_OVERLAPS[1][3],
                _ => paper::FIG24_OVERLAPS[2][3],
            }
        );
    }
    println!("expected shape: bigger AODs -> fewer overlaps; counts are application-dependent");
}
