//! Reference values extracted from the paper's figures and tables, used
//! to print paper-vs-measured comparisons.
//!
//! Values were transcribed from the arXiv text dump of each figure; the
//! geometric means were cross-checked against the improvement factors the
//! paper quotes in prose (5.6×/3.4×/3.5×/2.8× two-qubit gate reduction and
//! 3.7×/3.5×/3.2×/2.2× depth reduction over the four baselines).

/// Fig. 13 benchmark labels, in figure order (last entry is GMean).
pub const FIG13_LABELS: [&str; 18] = [
    "HHL-7",
    "Mermin-Bell-10",
    "QV-32",
    "BV-50",
    "BV-70",
    "QSim-rand-20",
    "QSim-rand-40",
    "QSim-rand-20-p0.3",
    "QSim-rand-40-p0.3",
    "H2-4",
    "LiH-6",
    "QAOA-rand-10",
    "QAOA-rand-20",
    "QAOA-rand-30",
    "QAOA-rand-50",
    "QAOA-regu5-40",
    "QAOA-regu6-100",
    "GMean",
];

/// Fig. 13 architecture labels, in row order.
pub const FIG13_ARCHS: [&str; 5] = [
    "Superconducting",
    "Baker-Long-Range",
    "FAA-Rectangular",
    "FAA-Triangular",
    "Atomique",
];

/// Fig. 13 depth (parallel 2Q layers) per architecture × benchmark.
pub const FIG13_DEPTH: [[f64; 18]; 5] = [
    [
        150., 195., 1371., 82., 127., 677., 1564., 314., 836., 54., 3298., 78., 210., 503., 1256.,
        272., 906., 700.,
    ],
    [
        227., 122., 2181., 33., 104., 308., 940., 169., 510., 38., 1576., 27., 191., 523., 2190.,
        280., 1740., 656.,
    ],
    [
        138., 145., 1632., 73., 117., 531., 1424., 190., 738., 74., 2223., 47., 180., 509., 1126.,
        206., 993., 609.,
    ],
    [
        111., 117., 1068., 71., 147., 346., 996., 146., 416., 36., 1556., 32., 115., 349., 760.,
        141., 647., 415.,
    ],
    [
        103., 75., 665., 22., 36., 163., 325., 76., 173., 35., 844., 18., 58., 134., 297., 52.,
        132., 189.,
    ],
];

/// Fig. 13 two-qubit gate counts.
pub const FIG13_TWO_Q: [[f64; 18]; 5] = [
    [
        174., 251., 5388., 99., 212., 1232., 4318., 580., 2024., 54., 4480., 105., 390., 1319.,
        4559., 812., 4178., 1775.,
    ],
    [
        247., 157., 4644., 37., 153., 405., 1373., 232., 775., 40., 1788., 45., 275., 821., 3496.,
        457., 3144., 1064.,
    ],
    [
        162., 170., 3954., 82., 132., 746., 2454., 316., 1232., 79., 2461., 67., 262., 905., 2685.,
        502., 2603., 1107.,
    ],
    [
        128., 144., 3399., 74., 208., 545., 1857., 227., 976., 39., 1722., 48., 226., 749., 2202.,
        390., 1949., 875.,
    ],
    [
        116., 102., 1665., 22., 36., 182., 372., 106., 223., 37., 891., 30., 105., 279., 745.,
        115., 345., 316.,
    ],
];

/// Fig. 13 fidelities.
pub const FIG13_FIDELITY: [[f64; 18]; 5] = [
    [
        0.330, 0.160, 0.000, 0.063, 0.002, 0.000, 0.000, 0.005, 0.000, 0.760, 0.000, 0.473, 0.027,
        0.000, 0.000, 0.000, 0.000, 0.000,
    ],
    [
        0.488, 0.656, 0.000, 0.904, 0.662, 0.336, 0.025, 0.537, 0.125, 0.897, 0.008, 0.888, 0.481,
        0.113, 0.000, 0.296, 0.000, 0.058,
    ],
    [
        0.653, 0.640, 0.000, 0.805, 0.705, 0.141, 0.002, 0.436, 0.039, 0.813, 0.002, 0.839, 0.503,
        0.093, 0.001, 0.267, 0.001, 0.054,
    ],
    [
        0.711, 0.682, 0.000, 0.819, 0.573, 0.234, 0.007, 0.546, 0.074, 0.903, 0.011, 0.880, 0.547,
        0.136, 0.003, 0.353, 0.006, 0.097,
    ],
    [
        0.716, 0.746, 0.001, 0.919, 0.852, 0.458, 0.160, 0.726, 0.366, 0.906, 0.081, 0.922, 0.732,
        0.367, 0.032, 0.677, 0.259, 0.281,
    ],
];

/// Fig. 14 benchmark labels (last entry is Mean).
pub const FIG14_LABELS: [&str; 12] = [
    "Mermin-Bell-5",
    "VQE-10",
    "VQE-20",
    "Adder-10",
    "BV-14",
    "QSim-rand-5",
    "QSim-rand-10",
    "H2-4",
    "QAOA-rand-5",
    "QAOA-regu3-20",
    "QAOA-regu4-10",
    "Mean",
];

/// Fig. 14 fidelity rows: Tan-Solver, Tan-IterP, Atomique.
pub const FIG14_FIDELITY: [[f64; 12]; 3] = [
    [
        0.94, 0.97, 0.94, 0.82, 0.96, 0.95, 0.71, 0.89, 0.98, 0.92, 0.94, 0.91,
    ],
    [
        0.95, 0.97, 0.94, 0.81, 0.96, 0.96, 0.80, 0.91, 0.98, 0.92, 0.95, 0.92,
    ],
    [
        0.89, 0.96, 0.92, 0.69, 0.96, 0.94, 0.73, 0.87, 0.97, 0.90, 0.90, 0.88,
    ],
];

/// Fig. 14 two-qubit gate rows: Tan-Solver, Tan-IterP, Atomique.
pub const FIG14_TWO_Q: [[f64; 12]; 3] = [
    [21., 9., 19., 65., 13., 20., 80., 40., 6., 30., 20., 29.],
    [20., 9., 19., 65., 13., 16., 76., 34., 6., 30., 20., 28.],
    [41., 12., 25., 110., 13., 22., 99., 50., 12., 36., 36., 41.],
];

/// Fig. 14 compile-time rows (seconds): Tan-Solver, Tan-IterP, Atomique.
pub const FIG14_COMPILE_S: [[f64; 12]; 3] = [
    [
        66., 19., 336., 3757., 86., 31., 7967., 578., 0.82, 4649., 4408., 1991.,
    ],
    [
        2.13, 4.02, 36., 24., 12., 1.39, 28., 2.42, 0.60, 19., 2.66, 12.,
    ],
    [
        0.83, 0.65, 0.82, 1.32, 0.59, 0.92, 1.68, 1.15, 0.47, 0.59, 0.61, 0.88,
    ],
];

/// Fig. 19 benchmark labels (last entry is GMean).
pub const FIG19_LABELS: [&str; 9] = [
    "QAOA-rand-10",
    "QAOA-rand-20",
    "QAOA-regu5-40",
    "QAOA-regu6-100",
    "QSim-rand-10",
    "QSim-rand-20",
    "QSim-rand-40",
    "QSim-rand-100",
    "GMean",
];

/// Fig. 19 depth rows: Atomique, Q-Pilot.
pub const FIG19_DEPTH: [[f64; 9]; 2] = [
    [18., 58., 52., 132., 72., 163., 325., 860., 111.],
    [11., 21., 28., 76., 80., 102., 122., 182., 55.],
];

/// Fig. 19 two-qubit gate rows: Atomique, Q-Pilot.
pub const FIG19_TWO_Q: [[f64; 9]; 2] = [
    [30., 105., 115., 345., 79., 182., 372., 970., 168.],
    [67., 160., 260., 700., 284., 582., 978., 1770., 392.],
];

/// Fig. 19 fidelity rows: Atomique, Q-Pilot.
pub const FIG19_FIDELITY: [[f64; 9]; 2] = [
    [0.92, 0.73, 0.68, 0.26, 0.78, 0.46, 0.16, 0.00, 0.25],
    [0.84, 0.64, 0.47, 0.07, 0.47, 0.21, 0.07, 0.01, 0.17],
];

/// Table III labels.
pub const TABLE3_LABELS: [&str; 5] = ["HHL-7", "Mermin-Bell-10", "QV-32", "BV-50", "BV-70"];

/// Table III pulse counts: Geyser row, Atomique row.
pub const TABLE3_PULSES: [[f64; 5]; 2] = [
    [486., 564., 11803., 432., 655.],
    [348., 306., 4995., 66., 108.],
];

/// Fig. 21 cumulative fidelity-improvement factors the paper reports:
/// qubit-array mapper 3.53×, + atom mapper 1.19×, + parallel router
/// 2.59×, total 10.9×.
pub const FIG21_FACTORS: [f64; 4] = [3.53, 1.19, 2.59, 10.9];

/// Fig. 22 geometric means per relaxation setting
/// (all / relax C1 / relax C2 / relax C3): move distance (mm per stage),
/// depth, execution time (s).
pub const FIG22_GMEAN: [[f64; 3]; 4] = [
    [0.0089, 702., 0.2112],
    [0.0093, 653., 0.1964],
    [0.0098, 604., 0.1816],
    [0.0099, 584., 0.1755],
];

/// Fig. 24 overlap counts per AOD size (6×6, 8×8, 10×10) for
/// QAOA-rand-100, QSIM-rand-100, Phase-Code-100 and their GMean.
pub const FIG24_OVERLAPS: [[f64; 4]; 3] = [
    [2146., 56., 59., 192.],
    [1889., 25., 46., 130.],
    [1260., 26., 31., 101.],
];

/// Fig. 25 labels (last entry is Mean).
pub const FIG25_LABELS: [&str; 14] = [
    "HHL-7",
    "Mermin-Bell-10",
    "QV-32",
    "BV-50",
    "BV-70",
    "QSim-rand-20",
    "QSim-rand-40",
    "H2-4",
    "LiH-6",
    "QAOA-rand-10",
    "QAOA-rand-20",
    "QAOA-regu5-40",
    "QAOA-regu6-100",
    "Mean",
];

/// Fig. 25 additional-CNOT rows for the four baselines (Atomique's row in
/// the source dump is incomplete and is reported measured-only).
pub const FIG25_ADDITIONAL_CNOT: [[f64; 14]; 4] = [
    [
        82., 179., 3900., 77., 176., 1056., 3958., 20., 3604., 78., 310., 712., 3878., 1387.,
    ],
    [
        143., 85., 3156., 15., 111., 229., 1013., 6., 912., 18., 195., 288., 2841., 693.,
    ],
    [
        70., 98., 2466., 60., 96., 570., 2094., 45., 1585., 40., 182., 402., 2303., 770.,
    ],
    [
        36., 72., 1911., 52., 172., 369., 1497., 5., 846., 21., 146., 290., 1649., 544.,
    ],
];

#[cfg(test)]
mod tests {
    use super::*;

    fn gmean(xs: &[f64]) -> f64 {
        let logs: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
        (logs / xs.len() as f64).exp()
    }

    #[test]
    fn fig13_gmeans_match_prose_ratios() {
        // Prose: 5.6×, 3.4×, 3.5×, 2.8× two-qubit reduction vs the four
        // baselines.
        let atomique = FIG13_TWO_Q[4][17];
        for (row, expect) in [(0, 5.6), (1, 3.4), (2, 3.5), (3, 2.8)] {
            let ratio = FIG13_TWO_Q[row][17] / atomique;
            assert!((ratio - expect).abs() < 0.15, "row {row}: {ratio}");
        }
        // Prose: 3.7×, 3.5×, 3.2×, 2.2× depth reduction.
        let atomique = FIG13_DEPTH[4][17];
        for (row, expect) in [(0, 3.7), (1, 3.5), (2, 3.2), (3, 2.2)] {
            let ratio = FIG13_DEPTH[row][17] / atomique;
            assert!((ratio - expect).abs() < 0.15, "row {row}: {ratio}");
        }
    }

    #[test]
    fn fig13_row_ratios_consistent_with_gmean_column() {
        // The paper's printed GMean bars use a different aggregation than
        // the plain geometric mean of the 17 values, but the *ratios*
        // between architectures must agree between the per-benchmark
        // geometric means and the printed GMean column.
        let atomique_g = gmean(&FIG13_DEPTH[4][..17]);
        for row in &FIG13_DEPTH[..4] {
            let ratio_from_values = gmean(&row[..17]) / atomique_g;
            let ratio_from_column = row[17] / FIG13_DEPTH[4][17];
            assert!(
                (ratio_from_values - ratio_from_column).abs() / ratio_from_column < 0.25,
                "{ratio_from_values} vs {ratio_from_column}"
            );
        }
    }

    #[test]
    fn fig14_solver_is_orders_slower() {
        // Mean compile time: solver ≈ 1991 s vs Atomique ≈ 0.88 s
        // (the >1000× claim).
        let ratio = FIG14_COMPILE_S[0][11] / FIG14_COMPILE_S[2][11];
        assert!(ratio > 1000.0);
    }

    #[test]
    fn table3_atomique_up_to_6_5x_fewer_pulses() {
        let max_ratio = TABLE3_LABELS
            .iter()
            .enumerate()
            .map(|(i, _)| TABLE3_PULSES[0][i] / TABLE3_PULSES[1][i])
            .fold(0.0f64, f64::max);
        assert!((max_ratio - 6.5).abs() < 0.2, "{max_ratio}");
    }

    #[test]
    fn fig21_factors_compose() {
        let product: f64 = FIG21_FACTORS[..3].iter().product();
        assert!((product - FIG21_FACTORS[3]).abs() < 0.2);
    }
}
