//! Regenerates the paper's table3. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::table3(raa_bench::quick_from_args());
}
