//! Regenerates the paper's fig20c. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig20c(raa_bench::quick_from_args());
}
