//! Regenerates the paper's table1 output. No flags needed.
fn main() {
    raa_bench::table1();
}
