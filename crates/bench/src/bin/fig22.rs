//! Regenerates the paper's fig22. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig22(raa_bench::quick_from_args());
}
