//! Regenerates the paper's fig13. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig13(raa_bench::quick_from_args());
}
