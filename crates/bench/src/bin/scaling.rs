//! Compiler + verifier scaling study (ROADMAP "Router performance" and
//! the PR 4 verifier work, paper Fig. 20's compilation-scalability
//! regime): sparse QSim and 3-regular QAOA workloads from 64 to 1024
//! qubits, compiled at `-O2` with ISA verification, reporting
//!
//! * a per-stage wall-clock breakdown
//!   (transpile / map / route / lower / opt / verify),
//! * router compile time with the spatial-grid proximity index vs the
//!   exhaustive-scan oracle (schedules asserted stage-identical),
//! * ISA legality checking under `CheckMode::Grid` vs
//!   `CheckMode::Exhaustive` (verdicts asserted identical), and
//! * the `-O2` optimizer under the incremental re-verify harness vs the
//!   full-oracle harness (outputs asserted identical), and
//! * every workload re-compiled under `RouterStrategy::Layered`
//!   (schema 2 rows): same gate counts, never more pulses, with its own
//!   compile/verify/opt timings, and
//! * every workload re-compiled at each extra `--threads` count on the
//!   `raa-par` work-pool (schema 4 rows): stages and ISA bytes asserted
//!   bit-identical to the single-threaded row, with pooled verify and
//!   `-O2` harness timings, and
//! * the baseline and layered rows pushed through the `raa-serve`
//!   batch-compilation engine cold and warm (schema 5 `serve`
//!   columns): served bytes asserted bit-identical to the direct
//!   compile, cache hit/miss and queue-depth counters recorded, and
//! * every baseline row re-compiled with `TranspileIndex::Naive`
//!   (schema 6): ISA bytes asserted bit-identical across index modes,
//!   the naive transpile-stage wall clock recorded next to the indexed
//!   one (`compile.transpile_naive_s`), and the score-cache counters
//!   (`transpile.score_cache_hit` / `score_recompute` / `score_dedup` /
//!   `extset_incremental`) added to the counter columns.
//!
//! Run with `cargo run --release -p raa-bench --bin scaling
//! [-- --oracle-max=N] [--serve-max=N] [--naive-max=N] [--sizes=N,N,…]
//! [--threads=N,N,…] [--trace <path>] [--counters]`.
//! The exhaustive paths are O(atoms²) per stage/pulse, so they only run
//! up to `--oracle-max` qubits (default 1024 — pass a smaller value for
//! a quick look). `--naive-max` likewise bounds the naive-transpile
//! twin compile (default unbounded — the naive path is quadratic in
//! atoms at graph construction, so cap it for quick sweeps). `--sizes`
//! restricts the size sweep (default 64,128,256,512,1024,4096; entries
//! must be 2..=65536). `--threads` lists the work-pool widths to
//! sweep (default `1`; the first entry is the baseline every other
//! entry is asserted bit-identical against, and the oracle/layered
//! comparisons run only at that baseline). `--trace` writes every
//! workload × strategy compile's span tree to one Chrome trace-event
//! file — each cell its own named process, loadable in Perfetto — and
//! `--counters` prints the per-compile telemetry counter tables (see
//! `docs/OBSERVABILITY.md`).
//!
//! The whole study is also emitted as `BENCH_scaling.json` in the
//! working directory, so the perf trajectory stays machine-readable
//! from PR 4 onward. Schema 3 added a `counters` object per row —
//! grid queries, router admissions, optimizer rejections and
//! incremental-verifier fallbacks — recorded from the same compile the
//! timings came from. Schema 4 adds a `threads` column (the `raa-par`
//! pool width the row ran at) and the per-thread-count rows. Schema 5
//! adds a `serve` object (cold/warm service round trips, cache
//! hit/miss counts, queue high-water mark; `null` on thread-sweep rows
//! and above `--serve-max`). Schema 6 adds the `transpile_index`
//! column, `compile.transpile_naive_s` (the naive-twin transpile wall
//! clock; `null` on thread-sweep/layered rows and above `--naive-max`)
//! and the four score-cache counter columns, plus the 4096-qubit
//! default rows. Measured numbers are recorded in EXPERIMENTS.md
//! ("Router scaling", "Verifier scaling", "Counter telemetry",
//! "Parallel compilation", "Batch-compilation service" and "Transpile
//! indexing").

use std::fmt::Write as _;
use std::time::Instant;

use atomique::trace::{export, TraceReport};
use atomique::{
    compile, AtomiqueConfig, CompiledProgram, OptLevel, ProximityIndex, RouterStrategy, StageKind,
    TranspileIndex, MAX_THREADS,
};
use raa_bench::harness::{row, scaling_row, section, serve_probe, SCALING_COLUMNS};
use raa_benchmarks::scaling_pair;
use raa_isa::{
    check_legality_mode, check_legality_with, codec, optimize_pooled, optimize_with, CheckMode,
    IsaStats, VerifyStrategy,
};
use raa_par::WorkPool;

struct Args {
    oracle_max: usize,
    serve_max: usize,
    naive_max: usize,
    sizes: Vec<usize>,
    threads: Vec<usize>,
    trace_path: Option<String>,
    counters: bool,
}

/// Largest `--sizes` entry accepted: past 65536 qubits a single naive
/// row would run for hours, which is always a typo, not a study.
const MAX_SIZE: usize = 65536;

fn parse_args() -> Args {
    let mut parsed = Args {
        oracle_max: 1024,
        serve_max: 1024,
        naive_max: usize::MAX,
        sizes: vec![64, 128, 256, 512, 1024, 4096],
        threads: vec![1],
        trace_path: None,
        counters: false,
    };
    let die = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--oracle-max=") {
            parsed.oracle_max = v
                .parse()
                .unwrap_or_else(|_| die(format!("invalid --oracle-max value `{v}`")));
        } else if let Some(v) = arg.strip_prefix("--serve-max=") {
            parsed.serve_max = v
                .parse()
                .unwrap_or_else(|_| die(format!("invalid --serve-max value `{v}`")));
        } else if let Some(v) = arg.strip_prefix("--naive-max=") {
            parsed.naive_max = v
                .parse()
                .unwrap_or_else(|_| die(format!("invalid --naive-max value `{v}`")));
        } else if let Some(v) = arg.strip_prefix("--sizes=") {
            parsed.sizes = v
                .split(',')
                .map(|s| {
                    let n: usize = s
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| die(format!("invalid --sizes entry `{s}`")));
                    if !(2..=MAX_SIZE).contains(&n) {
                        die(format!("--sizes entry `{s}` out of range (2..={MAX_SIZE})"));
                    }
                    n
                })
                .collect();
            if parsed.sizes.is_empty() {
                die("--sizes needs at least one qubit count".into());
            }
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            parsed.threads = v
                .split(',')
                .map(|s| {
                    let t: usize = s
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| die(format!("invalid --threads entry `{s}`")));
                    if !(1..=MAX_THREADS).contains(&t) {
                        die(format!(
                            "--threads entry `{s}` out of range (1..={MAX_THREADS})"
                        ));
                    }
                    t
                })
                .collect();
            if parsed.threads.is_empty() {
                die("--threads needs at least one count".into());
            }
        } else if arg == "--trace" {
            match args.next() {
                Some(path) => parsed.trace_path = Some(path),
                None => die("--trace requires a file path".into()),
            }
        } else if arg == "--counters" {
            parsed.counters = true;
        } else {
            die(format!("unknown argument `{arg}`"));
        }
    }
    parsed
}

/// The two compiles must agree stage for stage — kind, gates and moves.
fn assert_stage_identical(name: &str, grid: &CompiledProgram, scan: &CompiledProgram) {
    assert_eq!(
        grid.stages.len(),
        scan.stages.len(),
        "{name}: stage counts differ"
    );
    for (i, (g, s)) in grid.stages.iter().zip(scan.stages.iter()).enumerate() {
        assert_eq!(g.kind, s.kind, "{name}: stage {i} kind differs");
        assert_eq!(g.gate_pairs, s.gate_pairs, "{name}: stage {i} gates differ");
        assert_eq!(
            g.moves.len(),
            s.moves.len(),
            "{name}: stage {i} move counts differ"
        );
    }
}

/// One workload's measurements, mirrored into `BENCH_scaling.json`.
struct Measurement {
    name: String,
    qubits: usize,
    /// `"sequential"` or `"layered"` (`AtomiqueConfig::router_strategy`).
    /// Layered rows skip the exhaustive oracle comparisons (those are
    /// covered once on the sequential rows); schema 2 added this field
    /// and the layered rows, keeping every schema-1 row.
    strategy: &'static str,
    /// `raa-par` work-pool width the row's compile/verify/opt ran at
    /// (`AtomiqueConfig::threads`; schema 4). Rows with `threads > 1`
    /// are asserted bit-identical to the baseline row of the same
    /// workload and skip the exhaustive-oracle comparisons.
    threads: usize,
    timings: atomique::StageTimings,
    /// The `AtomiqueConfig::transpile_index` mode the row compiled
    /// under (schema 6). Every row runs the `Indexed` default; the
    /// naive path appears as the `transpile_naive_s` twin column, not
    /// as rows of its own.
    transpile_index: &'static str,
    /// Transpile-stage wall clock of the same workload re-compiled
    /// with `TranspileIndex::Naive`, ISA bytes asserted bit-identical
    /// first (schema 6). `None` on thread-sweep/layered rows and above
    /// `--naive-max`.
    transpile_naive_s: Option<f64>,
    /// End-to-end compile wall clock with the grid proximity index
    /// (`compile.total_s` = `router.grid_compile_s` in the JSON; the
    /// pure router stage is `timings.route_s`).
    compile_total_s: f64,
    /// End-to-end compile wall clock with the exhaustive index.
    router_scan_s: Option<f64>,
    isa_instrs: usize,
    isa_pulses: usize,
    verify_grid_s: f64,
    verify_exhaustive_s: Option<f64>,
    opt_incremental_s: f64,
    opt_full_s: Option<f64>,
    opt_incremental_reverifies: usize,
    opt_full_fallbacks: usize,
    counters: CounterRow,
    /// Schema-5 serving columns: the same workload pushed through the
    /// `raa-serve` engine cold (miss) and warm (hit), served bytes
    /// asserted bit-identical to this row's direct compile. `None` on
    /// thread-sweep rows and above `--serve-max`.
    serve: Option<ServeRow>,
}

/// The `serve` object of one schema-5 row.
struct ServeRow {
    cold_s: f64,
    warm_s: f64,
    cache_hits: u64,
    cache_misses: u64,
    max_queue_depth: u64,
}

impl ServeRow {
    /// Probes the service with this row's workload and asserts the
    /// served bytes match the direct compile's attached stream.
    fn probed(
        name: &str,
        qubits: usize,
        circuit: &raa_circuit::Circuit,
        cfg: &AtomiqueConfig,
        direct: &CompiledProgram,
    ) -> ServeRow {
        let probe = serve_probe(name, circuit, cfg);
        let direct_bytes = codec::to_bytes(direct.isa.as_ref().expect("emit_isa attached"));
        assert_eq!(
            probe.isa_bytes, direct_bytes,
            "{name}-{qubits}: served bytes diverge from direct compile"
        );
        assert_eq!(
            (probe.cache_misses, probe.cache_hits),
            (1, 1),
            "{name}-{qubits}: serve probe cache counters off"
        );
        println!(
            "  serve: cold {:.2}s, warm {:.4}s (hit; bytes bit-identical), queue depth {}",
            probe.cold_s, probe.warm_s, probe.max_queue_depth
        );
        ServeRow {
            cold_s: probe.cold_s,
            warm_s: probe.warm_s,
            cache_hits: probe.cache_hits,
            cache_misses: probe.cache_misses,
            max_queue_depth: probe.max_queue_depth,
        }
    }
}

/// The schema-3 counter columns, recorded from the same traced compile
/// the stage timings came from (see `docs/OBSERVABILITY.md` for the
/// full glossary — these four are the regression-gated headline set).
struct CounterRow {
    /// `grid.query` — spatial-index proximity queries.
    grid_query: u64,
    /// `route.try_add` — router gate-admission attempts.
    route_try_add: u64,
    /// `opt.rejected` — optimizer candidates refused by the harness.
    pass_rejected: u64,
    /// `opt.verify.full` — incremental-verifier full-oracle fallbacks.
    verify_fallback: u64,
    /// `transpile.score_cache_hit` — SABRE candidate deltas served from
    /// the score cache (schema 6; 0 on the naive path).
    score_cache_hit: u64,
    /// `transpile.score_recompute` — SABRE candidate deltas derived
    /// from the incidence lists (schema 6).
    score_recompute: u64,
    /// `transpile.score_dedup` — duplicate swap candidates skipped per
    /// round (schema 6).
    score_dedup: u64,
    /// `transpile.extset_incremental` — stall rounds reusing the
    /// extended set instead of re-running the lookahead BFS (schema 6).
    extset_incremental: u64,
}

impl CounterRow {
    fn of(report: &atomique::CompileReport) -> CounterRow {
        CounterRow {
            grid_query: report.counter("grid.query"),
            route_try_add: report.counter("route.try_add"),
            pass_rejected: report.counter("opt.rejected"),
            verify_fallback: report.counter("opt.verify.full"),
            score_cache_hit: report.counter("transpile.score_cache_hit"),
            score_recompute: report.counter("transpile.score_recompute"),
            score_dedup: report.counter("transpile.score_dedup"),
            extset_incremental: report.counter("transpile.extset_incremental"),
        }
    }
}

fn json_f(v: f64) -> String {
    format!("{v:.6}")
}

fn json_opt_f(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), json_f)
}

fn json_serve(serve: &Option<ServeRow>) -> String {
    match serve {
        None => "null".into(),
        Some(s) => format!(
            "{{\"cold_s\": {}, \"warm_s\": {}, \"cache_hit\": {}, \"cache_miss\": {}, \
             \"queue_depth\": {}}}",
            json_f(s.cold_s),
            json_f(s.warm_s),
            s.cache_hits,
            s.cache_misses,
            s.max_queue_depth,
        ),
    }
}

fn write_json(measurements: &[Measurement]) {
    let mut out = String::from("{\n  \"schema\": 6,\n  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let t = &m.timings;
        let _ = write!(
            out,
            concat!(
                "    {{\"name\": \"{}\", \"qubits\": {}, \"strategy\": \"{}\", \"threads\": {}, ",
                "\"transpile_index\": \"{}\",\n",
                "     \"compile\": {{\"total_s\": {}, \"transpile_s\": {}, ",
                "\"transpile_naive_s\": {}, \"map_s\": {}, ",
                "\"route_s\": {}, \"lower_s\": {}, \"opt_s\": {}, \"verify_s\": {}}},\n",
                "     \"router\": {{\"grid_compile_s\": {}, \"scan_compile_s\": {}}},\n",
                "     \"isa\": {{\"instrs\": {}, \"pulses\": {}}},\n",
                "     \"verifier\": {{\"grid_s\": {}, \"exhaustive_s\": {}}},\n",
                "     \"opt_harness\": {{\"incremental_s\": {}, \"full_s\": {}, ",
                "\"incremental_reverifies\": {}, \"full_fallbacks\": {}}},\n",
                "     \"counters\": {{\"grid_query\": {}, \"route_try_add\": {}, ",
                "\"pass_rejected\": {}, \"verify_fallback\": {}, ",
                "\"score_cache_hit\": {}, \"score_recompute\": {}, ",
                "\"score_dedup\": {}, \"extset_incremental\": {}}},\n",
                "     \"serve\": {}}}"
            ),
            m.name,
            m.qubits,
            m.strategy,
            m.threads,
            m.transpile_index,
            json_f(m.compile_total_s),
            json_f(t.transpile_s),
            json_opt_f(m.transpile_naive_s),
            json_f(t.map_s),
            json_f(t.route_s),
            json_f(t.lower_s),
            json_f(t.opt_s),
            json_f(t.verify_s),
            json_f(m.compile_total_s),
            json_opt_f(m.router_scan_s),
            m.isa_instrs,
            m.isa_pulses,
            json_f(m.verify_grid_s),
            json_opt_f(m.verify_exhaustive_s),
            json_f(m.opt_incremental_s),
            json_opt_f(m.opt_full_s),
            m.opt_incremental_reverifies,
            m.opt_full_fallbacks,
            m.counters.grid_query,
            m.counters.route_try_add,
            m.counters.pass_rejected,
            m.counters.verify_fallback,
            m.counters.score_cache_hit,
            m.counters.score_recompute,
            m.counters.score_dedup,
            m.counters.extset_incremental,
            json_serve(&m.serve),
        );
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    std::fs::write("BENCH_scaling.json", &out).expect("write BENCH_scaling.json");
    println!(
        "\nwrote BENCH_scaling.json ({} workloads)",
        measurements.len()
    );
}

/// Prints a compile's counter table, indented under its section.
fn print_counters(report: &atomique::CompileReport) {
    for (name, value) in report.counters() {
        println!("    {name:<28}: {value}");
    }
}

fn main() {
    let args = parse_args();
    let oracle_max = args.oracle_max;
    section("Compiler + verifier scaling: grid vs exhaustive, incremental vs full");
    println!("(exhaustive oracles run up to {oracle_max} qubits; results asserted identical)");

    let mut measurements = Vec::new();
    // One span tree per workload × strategy cell, exported as named
    // Perfetto processes when `--trace` is set.
    let mut traces: Vec<(String, TraceReport)> = Vec::new();
    for &n in &args.sizes {
        let pair = scaling_pair("QSim", "QAOA-regu3", n);
        for b in &pair {
            section(&format!("{}-{n}", b.name));
            row(
                "",
                &SCALING_COLUMNS
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>(),
            );
            // The headline configuration: -O2 with the stream attached
            // and independently verified. Detail tracing is always on —
            // the schema-3 counter columns come from the same compile
            // the timings do (tracing is output-identity-proven by
            // `tests/router_differential.rs`).
            let cfg = AtomiqueConfig {
                emit_isa: true,
                verify_isa: true,
                opt_level: OptLevel::Aggressive,
                trace: true,
                threads: args.threads[0],
                ..AtomiqueConfig::scaled_to(n)
            };
            let t0 = Instant::now();
            let grid = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}-{n}: {e}", b.name));
            let grid_s = t0.elapsed().as_secs_f64();

            let scan_s = (n <= oracle_max).then(|| {
                let cfg = AtomiqueConfig {
                    proximity_index: ProximityIndex::Exhaustive,
                    ..cfg.clone()
                };
                let t0 = Instant::now();
                let scan =
                    compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}-{n}: {e}", b.name));
                let s = t0.elapsed().as_secs_f64();
                assert_stage_identical(b.name, &grid, &scan);
                s
            });
            row(b.name, &scaling_row(&grid, grid_s, scan_s));
            let resets = grid
                .stages
                .iter()
                .filter(|s| s.kind == StageKind::Reset)
                .count();
            println!("  (ISA legality + replay verified; {resets} reset stages)");

            let t = grid.timings;
            println!(
                "  stage breakdown: transpile {:.2}s  map {:.2}s  route {:.2}s  \
                 lower {:.2}s  opt {:.2}s  verify {:.2}s",
                t.transpile_s, t.map_s, t.route_s, t.lower_s, t.opt_s, t.verify_s
            );
            if args.counters {
                println!("  counters (sequential):");
                print_counters(&grid.report);
            }
            if args.trace_path.is_some() {
                traces.push((
                    format!("{}-{n} sequential", b.name),
                    grid.report.trace.clone(),
                ));
            }

            // --- The naive-transpile twin (schema 6): the same
            // workload with `TranspileIndex::Naive` — BFS-built
            // coupling graph, from-scratch SABRE rescoring — must
            // produce byte-identical ISA; only the transpile wall
            // clock may differ. Verification and tracing are off for
            // the twin (they burn identical time on both paths and the
            // bytes are what the assertion needs).
            let transpile_naive_s = (n <= args.naive_max).then(|| {
                let naive_cfg = AtomiqueConfig {
                    transpile_index: TranspileIndex::Naive,
                    verify_isa: false,
                    trace: false,
                    ..cfg.clone()
                };
                let naive = compile(&b.circuit, &naive_cfg)
                    .unwrap_or_else(|e| panic!("{}-{n} (naive transpile): {e}", b.name));
                assert_eq!(
                    codec::to_bytes(naive.isa.as_ref().expect("emit_isa attached")),
                    codec::to_bytes(grid.isa.as_ref().expect("emit_isa attached")),
                    "{}-{n}: ISA bytes differ across transpile-index modes",
                    b.name
                );
                let s = naive.timings.transpile_s;
                println!(
                    "  transpile: indexed {:.2}s, naive {s:.2}s ({:.1}x; ISA bit-identical)",
                    t.transpile_s,
                    s / t.transpile_s.max(1e-9),
                );
                s
            });

            // --- Verifier scaling: the raw (unoptimized) stream checked
            // under both modes, and -O2 re-run under both harnesses.
            let raw = atomique::emit_isa(&grid, &cfg.hardware, b.name);
            let stats = IsaStats::of(&raw);

            let t0 = Instant::now();
            check_legality_mode(&raw, CheckMode::Grid)
                .unwrap_or_else(|e| panic!("{}-{n}: grid check: {e}", b.name));
            let verify_grid_s = t0.elapsed().as_secs_f64();
            let verify_exhaustive_s = (n <= oracle_max).then(|| {
                let t0 = Instant::now();
                check_legality_mode(&raw, CheckMode::Exhaustive)
                    .unwrap_or_else(|e| panic!("{}-{n}: exhaustive check: {e}", b.name));
                t0.elapsed().as_secs_f64()
            });

            let t0 = Instant::now();
            let (opt_inc, inc_report) =
                optimize_with(&raw, OptLevel::Aggressive, VerifyStrategy::Incremental);
            let opt_incremental_s = t0.elapsed().as_secs_f64();
            let opt_full_s = (n <= oracle_max).then(|| {
                let t0 = Instant::now();
                let (opt_full, full_report) =
                    optimize_with(&raw, OptLevel::Aggressive, VerifyStrategy::Full);
                let s = t0.elapsed().as_secs_f64();
                assert_eq!(
                    opt_inc, opt_full,
                    "{}-{n}: harness strategies disagree",
                    b.name
                );
                assert_eq!(
                    inc_report.rejected_rewrites, full_report.rejected_rewrites,
                    "{}-{n}: harness strategies rejected different rewrites",
                    b.name
                );
                s
            });
            println!(
                "  isa verify ({} instrs, {} pulses): grid {:.2}s, exhaustive {}",
                stats.instructions,
                stats.pulses,
                verify_grid_s,
                verify_exhaustive_s.map_or_else(|| "-".into(), |s| format!("{s:.2}s")),
            );
            println!(
                "  -O2 harness: incremental {:.2}s ({} windowed, {} fallbacks), full {}",
                opt_incremental_s,
                inc_report.incremental_reverifies,
                inc_report.full_reverifies,
                opt_full_s.map_or_else(|| "-".into(), |s| format!("{s:.2}s")),
            );

            // --- The service probe (schema 5): the same workload
            // through the raa-serve engine cold and warm, served bytes
            // asserted bit-identical to the compile above.
            let serve =
                (n <= args.serve_max).then(|| ServeRow::probed(b.name, n, &b.circuit, &cfg, &grid));

            measurements.push(Measurement {
                name: b.name.to_string(),
                qubits: n,
                strategy: "sequential",
                threads: args.threads[0],
                timings: t,
                transpile_index: "indexed",
                transpile_naive_s,
                compile_total_s: grid_s,
                router_scan_s: scan_s,
                isa_instrs: stats.instructions,
                isa_pulses: stats.pulses,
                verify_grid_s,
                verify_exhaustive_s,
                opt_incremental_s,
                opt_full_s,
                opt_incremental_reverifies: inc_report.incremental_reverifies,
                opt_full_fallbacks: inc_report.full_reverifies,
                counters: CounterRow::of(&grid.report),
                serve,
            });

            // --- The same workload at every extra work-pool width
            // (schema 4): the compile, verify and -O2 harness re-run on
            // a `raa-par` pool, output asserted bit-identical to the
            // baseline row above (stages, ISA bytes and the headline
            // counters — the per-compile differential contract of
            // `tests/parallel_differential.rs`, measured here at scale).
            let raw_bytes = codec::to_bytes(&raw);
            let base_counters = CounterRow::of(&grid.report);
            for &tc in &args.threads[1..] {
                let par_cfg = AtomiqueConfig {
                    threads: tc,
                    ..cfg.clone()
                };
                let t0 = Instant::now();
                let par = compile(&b.circuit, &par_cfg)
                    .unwrap_or_else(|e| panic!("{}-{n} ({tc} threads): {e}", b.name));
                let par_s = t0.elapsed().as_secs_f64();
                assert_stage_identical(b.name, &grid, &par);
                let par_raw = atomique::emit_isa(&par, &par_cfg.hardware, b.name);
                assert_eq!(
                    codec::to_bytes(&par_raw),
                    raw_bytes,
                    "{}-{n}: ISA bytes differ at {tc} threads",
                    b.name
                );
                let par_counters = CounterRow::of(&par.report);
                assert_eq!(
                    par_counters.route_try_add, base_counters.route_try_add,
                    "{}-{n}: route.try_add differs at {tc} threads",
                    b.name
                );
                assert_eq!(
                    (par_counters.score_cache_hit, par_counters.score_recompute),
                    (base_counters.score_cache_hit, base_counters.score_recompute),
                    "{}-{n}: score-cache telemetry differs at {tc} threads",
                    b.name
                );

                let pool = WorkPool::new(tc);
                let t0 = Instant::now();
                check_legality_with(&par_raw, CheckMode::Grid, pool)
                    .unwrap_or_else(|e| panic!("{}-{n}: pooled grid check: {e}", b.name));
                let par_verify_s = t0.elapsed().as_secs_f64();
                let t0 = Instant::now();
                let (_, par_inc_report) = optimize_pooled(
                    &par_raw,
                    OptLevel::Aggressive,
                    VerifyStrategy::Incremental,
                    &pool,
                );
                let par_opt_s = t0.elapsed().as_secs_f64();
                println!(
                    "  {tc} threads: compile {par_s:.2}s ({:.1}x vs baseline)  \
                     verify {par_verify_s:.2}s  -O2 {par_opt_s:.2}s  [bit-identical]",
                    grid_s / par_s.max(1e-9),
                );
                if args.trace_path.is_some() {
                    traces.push((
                        format!("{}-{n} {tc}-threads", b.name),
                        par.report.trace.clone(),
                    ));
                }
                measurements.push(Measurement {
                    name: b.name.to_string(),
                    qubits: n,
                    strategy: "sequential",
                    threads: tc,
                    timings: par.timings,
                    transpile_index: "indexed",
                    transpile_naive_s: None,
                    compile_total_s: par_s,
                    router_scan_s: None,
                    isa_instrs: stats.instructions,
                    isa_pulses: stats.pulses,
                    verify_grid_s: par_verify_s,
                    verify_exhaustive_s: None,
                    opt_incremental_s: par_opt_s,
                    opt_full_s: None,
                    opt_incremental_reverifies: par_inc_report.incremental_reverifies,
                    opt_full_fallbacks: par_inc_report.full_reverifies,
                    counters: par_counters,
                    serve: None,
                });
            }

            // --- The layered strategy on the same workload (schema 2):
            // same pipeline, Arctic-style move batching in the router.
            // Never more pulses than sequential, identical gate counts;
            // the exhaustive oracle comparisons are already covered by
            // the sequential row.
            let lay_cfg = AtomiqueConfig {
                router_strategy: RouterStrategy::Layered,
                ..cfg.clone()
            };
            let t0 = Instant::now();
            let lay = compile(&b.circuit, &lay_cfg)
                .unwrap_or_else(|e| panic!("{}-{n} (layered): {e}", b.name));
            let lay_s = t0.elapsed().as_secs_f64();
            assert_eq!(
                lay.stats.two_qubit_gates, grid.stats.two_qubit_gates,
                "{}-{n}: layered gate count differs",
                b.name
            );
            let lay_raw = atomique::emit_isa(&lay, &lay_cfg.hardware, b.name);
            let lay_stats = IsaStats::of(&lay_raw);
            assert!(
                lay_stats.pulses <= stats.pulses,
                "{}-{n}: layered pulses grew",
                b.name
            );
            let t0 = Instant::now();
            check_legality_mode(&lay_raw, CheckMode::Grid)
                .unwrap_or_else(|e| panic!("{}-{n}: layered grid check: {e}", b.name));
            let lay_verify_s = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let (_, lay_inc_report) =
                optimize_with(&lay_raw, OptLevel::Aggressive, VerifyStrategy::Incremental);
            let lay_opt_s = t0.elapsed().as_secs_f64();
            let lt = lay.timings;
            println!(
                "  layered: compile {lay_s:.2}s (route {:.2}s)  pulses {} -> {}  \
                 travel {:.0} -> {:.0} tracks",
                lt.route_s,
                stats.pulses,
                lay_stats.pulses,
                stats.line_travel_tracks,
                lay_stats.line_travel_tracks,
            );
            if args.counters {
                println!("  counters (layered):");
                print_counters(&lay.report);
            }
            if args.trace_path.is_some() {
                traces.push((format!("{}-{n} layered", b.name), lay.report.trace.clone()));
            }
            let lay_serve = (n <= args.serve_max)
                .then(|| ServeRow::probed(b.name, n, &b.circuit, &lay_cfg, &lay));
            measurements.push(Measurement {
                name: b.name.to_string(),
                qubits: n,
                strategy: "layered",
                threads: args.threads[0],
                timings: lt,
                transpile_index: "indexed",
                transpile_naive_s: None,
                compile_total_s: lay_s,
                router_scan_s: None,
                isa_instrs: lay_stats.instructions,
                isa_pulses: lay_stats.pulses,
                verify_grid_s: lay_verify_s,
                verify_exhaustive_s: None,
                opt_incremental_s: lay_opt_s,
                opt_full_s: None,
                opt_incremental_reverifies: lay_inc_report.incremental_reverifies,
                opt_full_fallbacks: lay_inc_report.full_reverifies,
                counters: CounterRow::of(&lay.report),
                serve: lay_serve,
            });
        }
    }
    write_json(&measurements);
    if let Some(path) = &args.trace_path {
        let sections: Vec<(&str, &TraceReport)> = traces
            .iter()
            .map(|(name, report)| (name.as_str(), report))
            .collect();
        std::fs::write(path, export::to_chrome_named(&sections))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!(
            "wrote {path} ({} compiles; load in https://ui.perfetto.dev)",
            sections.len()
        );
    }
}
