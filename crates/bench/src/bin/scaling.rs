//! Router-scaling study (ROADMAP "Router performance", paper Fig. 20's
//! compilation-scalability regime): sparse QSim and 3-regular QAOA
//! workloads from 64 to 1024 qubits, compiled with the spatial-grid
//! proximity index and with the exhaustive-scan oracle, reporting stage
//! counts and wall-clock compile times.
//!
//! Run with `cargo run --release -p raa-bench --bin scaling
//! [-- --oracle-max=N]`. The exhaustive oracle is O(atoms²) per stage,
//! so it is only run up to `--oracle-max` qubits (default 1024 — pass a
//! smaller value for a quick look). Whenever both modes run, the
//! schedules are asserted stage-identical.
//!
//! Measured numbers are recorded in EXPERIMENTS.md ("Router scaling").

use std::time::Instant;

use atomique::{compile, AtomiqueConfig, CompiledProgram, ProximityIndex, StageKind};
use raa_bench::harness::{row, scaling_row, section, SCALING_COLUMNS};
use raa_benchmarks::scaling_pair;

fn oracle_max_from_args() -> usize {
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--oracle-max=") {
            match v.parse() {
                Ok(n) => return n,
                Err(_) => {
                    eprintln!("invalid --oracle-max value `{v}`");
                    std::process::exit(2);
                }
            }
        }
    }
    1024
}

/// The two compiles must agree stage for stage — kind, gates and moves.
fn assert_stage_identical(name: &str, grid: &CompiledProgram, scan: &CompiledProgram) {
    assert_eq!(
        grid.stages.len(),
        scan.stages.len(),
        "{name}: stage counts differ"
    );
    for (i, (g, s)) in grid.stages.iter().zip(scan.stages.iter()).enumerate() {
        assert_eq!(g.kind, s.kind, "{name}: stage {i} kind differs");
        assert_eq!(g.gate_pairs, s.gate_pairs, "{name}: stage {i} gates differ");
        assert_eq!(
            g.moves.len(),
            s.moves.len(),
            "{name}: stage {i} move counts differ"
        );
    }
}

fn main() {
    let oracle_max = oracle_max_from_args();
    section("Router scaling: spatial grid vs exhaustive scan");
    println!("(oracle runs up to {oracle_max} qubits; schedules asserted identical)");

    for n in [64, 128, 256, 512, 1024] {
        let pair = scaling_pair("QSim", "QAOA-regu3", n);
        for b in &pair {
            section(&format!("{}-{n}", b.name));
            row(
                "",
                &SCALING_COLUMNS
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>(),
            );
            let cfg = AtomiqueConfig {
                verify_isa: true,
                ..AtomiqueConfig::scaled_to(n)
            };
            let t0 = Instant::now();
            let grid = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}-{n}: {e}", b.name));
            let grid_s = t0.elapsed().as_secs_f64();

            let scan_s = (n <= oracle_max).then(|| {
                let cfg = AtomiqueConfig {
                    proximity_index: ProximityIndex::Exhaustive,
                    ..cfg.clone()
                };
                let t0 = Instant::now();
                let scan =
                    compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}-{n}: {e}", b.name));
                let s = t0.elapsed().as_secs_f64();
                assert_stage_identical(b.name, &grid, &scan);
                s
            });
            row(b.name, &scaling_row(&grid, grid_s, scan_s));
            let resets = grid
                .stages
                .iter()
                .filter(|s| s.kind == StageKind::Reset)
                .count();
            println!("  (ISA legality + replay verified; {resets} reset stages)");
        }
    }
}
