//! Regenerates the paper's fig15. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig15(raa_bench::quick_from_args());
}
