//! Regenerates the paper's fig18. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig18(raa_bench::quick_from_args());
}
