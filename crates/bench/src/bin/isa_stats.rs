//! ISA-level statistics across backends: every small-suite benchmark is
//! compiled by Atomique, Tan-IterP, the rectangular FAA baseline, and
//! Geyser; each result is lowered to the shared instruction stream,
//! verified by the shared oracle, optimized by the ISA pass pipeline,
//! re-verified, and measured.
//!
//! Run with `cargo run --release -p raa-bench --bin isa_stats [-- -O{0,1,2}]`.
//! The default is `-O2` (aggressive); `-O0` prints raw streams only.

use atomique::{compile, emit_isa, AtomiqueConfig, OptLevel};
use raa_baselines::{
    compile_fixed, geyser_pulses, lower_fixed, lower_geyser, lower_tan, tan_iterp,
    FixedArchitecture,
};
use raa_bench::harness::{
    isa_opt_row, isa_row, row, saved_pct, section, ISA_COLUMNS, ISA_OPT_COLUMNS,
};
use raa_benchmarks::small_suite;
use raa_circuit::NativeGateSet;
use raa_isa::{check_legality, optimize, replay_verify, IsaProgram};
use raa_physics::HardwareParams;

fn verified(name: &str, backend: &str, program: IsaProgram) -> IsaProgram {
    check_legality(&program).unwrap_or_else(|e| panic!("{name} on {backend}: illegal stream: {e}"));
    replay_verify(&program)
        .unwrap_or_else(|e| panic!("{name} on {backend}: unfaithful stream: {e}"));
    program
}

/// Parses the `-O` argument; unknown `-O…` values abort rather than
/// silently falling back, and bare positional values are ignored.
fn opt_level_from_args() -> OptLevel {
    let mut level = OptLevel::Aggressive;
    for arg in std::env::args().skip(1).filter(|a| a.starts_with("-O")) {
        match OptLevel::parse_flag(&arg) {
            Some(l) => level = l,
            None => {
                eprintln!("unknown optimization flag `{arg}` (use -O0, -O1 or -O2)");
                std::process::exit(2);
            }
        }
    }
    level
}

fn main() {
    let level = opt_level_from_args();
    let cfg = AtomiqueConfig::default();
    let params = HardwareParams::neutral_atom();

    let columns: &[&str] = if level == OptLevel::None {
        &ISA_COLUMNS
    } else {
        &ISA_OPT_COLUMNS
    };
    let mut total_before = 0usize;
    let mut total_after = 0usize;

    for b in small_suite() {
        section(b.name);
        row(
            "",
            &columns.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        );

        let ours = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let atomique = verified(b.name, "atomique", emit_isa(&ours, &cfg.hardware, b.name));

        let tan = tan_iterp(&b.circuit, &params);
        let tan = verified(
            b.name,
            "tan-iterp",
            lower_tan(&b.circuit, &tan, "tan-iterp", b.name).unwrap(),
        );

        let fixed = compile_fixed(&b.circuit, FixedArchitecture::FaaRectangular, 0)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let fixed = verified(b.name, "faa-rect", lower_fixed(&fixed, b.name).unwrap());

        let native = b.circuit.decompose_to(NativeGateSet::Cz);
        let geyser = geyser_pulses(&native);
        let geyser = verified(
            b.name,
            "geyser",
            lower_geyser(&native, &geyser, b.name).unwrap(),
        );

        for (backend, program) in [
            ("atomique", atomique),
            ("tan-iterp", tan),
            ("faa-rect", fixed),
            ("geyser", geyser),
        ] {
            if level == OptLevel::None {
                row(backend, &isa_row(&program));
            } else {
                // The optimizer's harness re-runs the oracle after every
                // accepted pass, so the output needs no second pass here.
                let (optimized, report) = optimize(&program, level);
                assert!(
                    !report.skipped_unverified,
                    "{} on {backend}: optimizer refused a verified stream",
                    b.name
                );
                total_before += program.instrs.len();
                total_after += optimized.instrs.len();
                row(backend, &isa_opt_row(&program, &optimized));
            }
        }
    }
    if level == OptLevel::None {
        println!("\nAll streams verified by the shared oracle (legality + replay).");
    } else {
        println!(
            "\nAll raw and optimized streams verified by the shared oracle (legality + replay)."
        );
        println!(
            "Optimizer ({level:?}): {total_before} instructions -> {total_after} ({:.1}% saved)",
            saved_pct(total_before as f64, total_after as f64)
        );
    }
}
