//! ISA-level statistics across backends: every small-suite benchmark is
//! compiled by Atomique, Tan-IterP, the rectangular FAA baseline, and
//! Geyser; each result is lowered to the shared instruction stream,
//! verified by the shared oracle, and measured.
//!
//! Run with `cargo run --release -p raa-bench --bin isa_stats`.

use atomique::{compile, emit_isa, AtomiqueConfig};
use raa_baselines::{
    compile_fixed, geyser_pulses, lower_fixed, lower_geyser, lower_tan, tan_iterp,
    FixedArchitecture,
};
use raa_bench::harness::{isa_row, row, section, ISA_COLUMNS};
use raa_benchmarks::small_suite;
use raa_circuit::NativeGateSet;
use raa_isa::{check_legality, replay_verify, IsaProgram};
use raa_physics::HardwareParams;

fn verified(name: &str, backend: &str, program: IsaProgram) -> IsaProgram {
    check_legality(&program).unwrap_or_else(|e| panic!("{name} on {backend}: illegal stream: {e}"));
    replay_verify(&program)
        .unwrap_or_else(|e| panic!("{name} on {backend}: unfaithful stream: {e}"));
    program
}

fn main() {
    let cfg = AtomiqueConfig::default();
    let params = HardwareParams::neutral_atom();

    for b in small_suite() {
        section(b.name);
        row(
            "",
            &ISA_COLUMNS
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>(),
        );

        let ours = compile(&b.circuit, &cfg).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let isa = verified(b.name, "atomique", emit_isa(&ours, &cfg.hardware, b.name));
        row("atomique", &isa_row(&isa));

        let tan = tan_iterp(&b.circuit, &params);
        let isa = verified(
            b.name,
            "tan-iterp",
            lower_tan(&b.circuit, &tan, "tan-iterp", b.name).unwrap(),
        );
        row("tan-iterp", &isa_row(&isa));

        let fixed = compile_fixed(&b.circuit, FixedArchitecture::FaaRectangular, 0)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let isa = verified(b.name, "faa-rect", lower_fixed(&fixed, b.name).unwrap());
        row("faa-rect", &isa_row(&isa));

        let native = b.circuit.decompose_to(NativeGateSet::Cz);
        let geyser = geyser_pulses(&native);
        let isa = verified(
            b.name,
            "geyser",
            lower_geyser(&native, &geyser, b.name).unwrap(),
        );
        row("geyser", &isa_row(&isa));
    }
    println!("\nAll streams verified by the shared oracle (legality + replay).");
}
