//! Regenerates the paper's fig20a. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig20a(raa_bench::quick_from_args());
}
