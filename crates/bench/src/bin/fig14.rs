//! Regenerates the paper's fig14. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig14(raa_bench::quick_from_args());
}
