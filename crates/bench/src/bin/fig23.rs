//! Regenerates the paper's fig23. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig23(raa_bench::quick_from_args());
}
