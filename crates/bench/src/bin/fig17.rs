//! Regenerates the paper's fig17. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig17(raa_bench::quick_from_args());
}
