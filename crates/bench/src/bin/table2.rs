//! Regenerates the paper's table2 output. No flags needed.
fn main() {
    raa_bench::table2();
}
