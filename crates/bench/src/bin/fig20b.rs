//! Regenerates the paper's fig20b. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig20b(raa_bench::quick_from_args());
}
