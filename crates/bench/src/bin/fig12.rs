//! Regenerates the paper's fig12 output. No flags needed.
fn main() {
    raa_bench::fig12();
}
