//! Regenerates the paper's fig21. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig21(raa_bench::quick_from_args());
}
