//! Regenerates the paper's fig25. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig25(raa_bench::quick_from_args());
}
