//! Regenerates the paper's fig19. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig19(raa_bench::quick_from_args());
}
