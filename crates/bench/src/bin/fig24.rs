//! Regenerates the paper's fig24. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig24(raa_bench::quick_from_args());
}
