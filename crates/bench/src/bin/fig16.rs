//! Regenerates the paper's fig16. Pass `--quick` for a reduced run.
fn main() {
    raa_bench::fig16(raa_bench::quick_from_args());
}
