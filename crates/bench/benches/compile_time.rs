//! Criterion benchmarks of compilation throughput: Atomique end-to-end,
//! its individual passes, and the SABRE baseline router.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use atomique::{compile, AtomiqueConfig};
use raa_baselines::{compile_fixed, tan_iterp, FixedArchitecture};
use raa_benchmarks::{qaoa_regular, qsim_random};
use raa_physics::HardwareParams;

fn bench_compile(c: &mut Criterion) {
    let qaoa = qaoa_regular(40, 5, 0);
    let qsim = qsim_random(20, 0.5, 10, 0);
    let cfg = AtomiqueConfig::default();
    let params = HardwareParams::neutral_atom();

    c.bench_function("atomique/qaoa-regu5-40", |b| {
        b.iter(|| compile(black_box(&qaoa), &cfg).unwrap())
    });
    c.bench_function("atomique/qsim-rand-20", |b| {
        b.iter(|| compile(black_box(&qsim), &cfg).unwrap())
    });
    c.bench_function("sabre-faa-rect/qaoa-regu5-40", |b| {
        b.iter(|| compile_fixed(black_box(&qaoa), FixedArchitecture::FaaRectangular, 0).unwrap())
    });
    c.bench_function("tan-iterp/qaoa-regu5-40", |b| {
        b.iter(|| tan_iterp(black_box(&qaoa), &params))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compile
}
criterion_main!(benches);
