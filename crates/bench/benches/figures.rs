//! `cargo bench -p raa-bench --bench figures`: runs every table/figure
//! generator in quick mode and prints paper-vs-measured rows.

fn main() {
    let quick = !std::env::args().any(|a| a == "--full");
    println!("Atomique reproduction: regenerating all tables and figures (quick={quick})");
    raa_bench::table1();
    raa_bench::table2();
    raa_bench::fig12();
    raa_bench::table3(quick);
    raa_bench::fig13(quick);
    raa_bench::fig14(quick);
    raa_bench::fig15(quick);
    raa_bench::fig16(quick);
    raa_bench::fig17(quick);
    raa_bench::fig18(quick);
    raa_bench::fig19(quick);
    raa_bench::fig20a(quick);
    raa_bench::fig20b(quick);
    raa_bench::fig20c(quick);
    raa_bench::fig21(quick);
    raa_bench::fig22(quick);
    raa_bench::fig23(quick);
    raa_bench::fig24(quick);
    raa_bench::fig25(quick);
    println!("\nAll figures regenerated.");
}
