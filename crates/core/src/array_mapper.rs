//! Qubit-array mapper: greedy MAX k-Cut over the gate-frequency graph
//! (paper Alg. 1 and Fig. 4).
//!
//! Two-qubit gates are only executable *between* arrays (intra-SLM pairs
//! are never within Rydberg range; intra-AOD pairs are avoided because of
//! atom-loss risk), so a mapping that maximizes the total weight of
//! inter-array edges minimizes SWAP overhead. This is MAX k-Cut with
//! `k = 1 + #AODs`; the greedy vertex-by-vertex algorithm achieves the
//! `1 − 1/k` approximation bound.

use raa_arch::RaaConfig;
use raa_circuit::{Circuit, InteractionGraph, Qubit};
use raa_par::WorkPool;

use crate::config::{ArrayMapperKind, TranspileIndex};
use crate::error::CompileError;

/// Minimum register size before the pooled mapper fans the per-vertex
/// degree refinement out over the pool's workers; smaller graphs cost
/// less to score than a wave costs to spawn.
const PAR_MIN_VERTICES: usize = 256;

/// The result of the array-mapping pass: `array_of[q]` is the array index
/// (0 = SLM, `1..` = AODs) hosting logical qubit `q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayMapping {
    /// Per-qubit array assignment.
    pub array_of: Vec<u8>,
    /// Number of arrays (SLM + AODs).
    pub num_arrays: usize,
}

impl ArrayMapping {
    /// Qubits assigned to `array`, ascending.
    pub fn qubits_in(&self, array: u8) -> Vec<Qubit> {
        self.array_of
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == array)
            .map(|(q, _)| Qubit(q as u32))
            .collect()
    }

    /// The weight of the cut: total interaction weight between qubits in
    /// *different* arrays.
    pub fn cut_weight(&self, graph: &InteractionGraph) -> f64 {
        graph
            .edges()
            .filter(|((u, v), _)| self.array_of[u.index()] != self.array_of[v.index()])
            .map(|(_, w)| w)
            .sum()
    }

    /// Number of two-qubit gates in `circuit` whose endpoints share an
    /// array (each needs SWAP help).
    pub fn intra_array_gates(&self, circuit: &Circuit) -> usize {
        circuit
            .two_qubit_pairs()
            .filter(|(a, b)| self.array_of[a.index()] == self.array_of[b.index()])
            .count()
    }
}

/// Runs the configured array mapper.
///
/// # Errors
///
/// [`CompileError::Capacity`] if the circuit has more qubits than the
/// machine holds.
pub fn map_to_arrays(
    circuit: &Circuit,
    hardware: &RaaConfig,
    kind: ArrayMapperKind,
    gamma: f64,
) -> Result<ArrayMapping, CompileError> {
    map_to_arrays_pooled(circuit, hardware, kind, gamma, &WorkPool::sequential())
}

/// [`map_to_arrays`] with the per-vertex refinement scoring of the MAX
/// k-Cut mapper fanned out over `pool`. The greedy assignment itself
/// stays sequential (each placement depends on all earlier ones); only
/// the weighted-degree ordering pass — a pure per-vertex function of
/// the immutable interaction graph, scattered over its independent
/// connected gate groups — runs in parallel, so the mapping is
/// bit-identical at every worker count.
///
/// # Errors
///
/// Exactly those of [`map_to_arrays`].
pub fn map_to_arrays_pooled(
    circuit: &Circuit,
    hardware: &RaaConfig,
    kind: ArrayMapperKind,
    gamma: f64,
    pool: &WorkPool,
) -> Result<ArrayMapping, CompileError> {
    let n = circuit.num_qubits();
    let capacity = hardware.total_capacity();
    if n > capacity {
        return Err(CompileError::Capacity {
            required: n,
            available: capacity,
        });
    }
    let caps: Vec<usize> = (0..hardware.num_arrays())
        .map(|a| hardware.dims(raa_arch::ArrayIndex(a as u8)).capacity())
        .collect();
    match kind {
        ArrayMapperKind::MaxKCut => Ok(max_k_cut(circuit, &caps, gamma, pool)),
        ArrayMapperKind::Dense => Ok(dense(n, &caps)),
    }
}

/// `map_to_arrays_pooled` with the transpile-index mode selected
/// explicitly: [`TranspileIndex::Naive`] is the untouched path above;
/// [`TranspileIndex::Indexed`] replaces the MAX k-Cut's per-vertex
/// rescans with adjacency-list degree sums and incrementally-maintained
/// per-array weights — O(E) total instead of O(n·E) — while producing
/// the bit-identical mapping (see `max_k_cut_indexed` for why the
/// floats agree; proven by the unit tests here and
/// `tests/transpile_differential.rs`).
///
/// # Errors
///
/// Exactly those of [`map_to_arrays`].
pub fn map_to_arrays_with(
    circuit: &Circuit,
    hardware: &RaaConfig,
    kind: ArrayMapperKind,
    gamma: f64,
    index: TranspileIndex,
    pool: &WorkPool,
) -> Result<ArrayMapping, CompileError> {
    match index {
        TranspileIndex::Naive => map_to_arrays_pooled(circuit, hardware, kind, gamma, pool),
        TranspileIndex::Indexed => {
            let n = circuit.num_qubits();
            let capacity = hardware.total_capacity();
            if n > capacity {
                return Err(CompileError::Capacity {
                    required: n,
                    available: capacity,
                });
            }
            let caps: Vec<usize> = (0..hardware.num_arrays())
                .map(|a| hardware.dims(raa_arch::ArrayIndex(a as u8)).capacity())
                .collect();
            match kind {
                ArrayMapperKind::MaxKCut => Ok(max_k_cut_indexed(circuit, &caps, gamma)),
                ArrayMapperKind::Dense => Ok(dense(n, &caps)),
            }
        }
    }
}

/// Paper Alg. 1: assign each vertex, one by one, to the array maximizing
/// its cut against already-assigned vertices, respecting array capacities.
///
/// Vertices are visited in descending weighted-degree order (heaviest
/// qubits choose first), which can only improve on the arbitrary order the
/// pseudo-code shows while keeping the same greedy structure.
fn max_k_cut(circuit: &Circuit, caps: &[usize], gamma: f64, pool: &WorkPool) -> ArrayMapping {
    let n = circuit.num_qubits();
    let k = caps.len();
    let graph = InteractionGraph::with_layer_decay(circuit, gamma);

    let mut order: Vec<usize> = (0..n).collect();
    let mut degree: Vec<f64> = if pool.is_parallel() && n >= PAR_MIN_VERTICES {
        // Scatter the O(n·E) degree refinement over the graph's
        // independent gate groups (connected components, split further
        // so one giant component still fans out). Each weighted degree
        // is a pure per-vertex sum over the immutable graph, gathered
        // back by vertex id — bit-identical to the sequential loop.
        let cap = n.div_ceil(4 * pool.threads()).max(1);
        let groups: Vec<Vec<u32>> = graph
            .components()
            .iter()
            .flat_map(|comp| comp.chunks(cap).map(<[u32]>::to_vec))
            .collect();
        let parts = pool.map("par.map.degree", &groups, |_, group| {
            group
                .iter()
                .map(|&q| graph.weighted_degree(Qubit(q)))
                .collect::<Vec<f64>>()
        });
        let mut degree = vec![0.0f64; n];
        for (group, part) in groups.iter().zip(parts) {
            for (&q, d) in group.iter().zip(part) {
                degree[q as usize] = d;
            }
        }
        degree
    } else {
        (0..n)
            .map(|q| graph.weighted_degree(Qubit(q as u32)))
            .collect()
    };
    order.sort_by(|&a, &b| {
        degree[b]
            .partial_cmp(&degree[a])
            .expect("finite weights")
            .then(a.cmp(&b))
    });

    let mut array_of = vec![u8::MAX; n];
    let mut members: Vec<Vec<Qubit>> = vec![Vec::new(); k];
    for &q in &order {
        let qb = Qubit(q as u32);
        // Total interaction of q with every already-assigned vertex.
        let total: f64 = (0..k).map(|a| graph.weight_to_set(qb, &members[a])).sum();
        let mut best_array = None;
        let mut best_cut = f64::NEG_INFINITY;
        for a in 0..k {
            if members[a].len() >= caps[a] {
                continue;
            }
            // Cut gained by placing q in array a = weight to all other arrays.
            let cut = total - graph.weight_to_set(qb, &members[a]);
            // Tie-break toward the emptier array for load balance.
            let cut = cut - 1e-9 * members[a].len() as f64;
            if cut > best_cut {
                best_cut = cut;
                best_array = Some(a);
            }
        }
        let a = best_array.expect("capacity was validated");
        array_of[q] = a as u8;
        members[a].push(qb);
    }
    degree.clear(); // explicit: degrees only needed for ordering
    ArrayMapping {
        array_of,
        num_arrays: k,
    }
}

/// [`max_k_cut`] with indexed degree/weight maintenance — the
/// `TranspileIndex::Indexed` twin.
///
/// Two rescans disappear: (1) weighted degrees are summed over
/// per-vertex adjacency lists built in one pass over the graph's
/// `BTreeMap` edge order, and (2) the greedy loop maintains
/// `w_to[q][a]` — qubit `q`'s interaction weight into array `a` —
/// updated along `q`'s adjacency when a neighbor is assigned, instead
/// of rescanning every member per placement.
///
/// # Why the floats are bit-identical to the naive pass
///
/// *Degrees*: an edge `(u, v)` with `u < v` lands in `adj[q]` in
/// `BTreeMap` key order, which for fixed `q` is "partners `< q`
/// ascending, then partners `> q` ascending" — exactly the order
/// `weighted_degree`'s filter visits, so the left-to-right sums agree
/// bitwise. *Greedy weights*: `weight_to_set` sums over an array's
/// members in membership (= assignment) order, adding `0.0` for
/// non-neighbors; `w_to` receives the same neighbor contributions in
/// assignment order and skips the zeros — and `x + 0.0 == x` bitwise
/// for every partial sum here (weights are positive, sums start at
/// `+0.0` and never produce `-0.0`). The per-array totals, the
/// `total - w_to - 1e-9·len` cut expression and the strict `>`
/// comparison are then the identical float operations.
fn max_k_cut_indexed(circuit: &Circuit, caps: &[usize], gamma: f64) -> ArrayMapping {
    let n = circuit.num_qubits();
    let k = caps.len();
    let graph = InteractionGraph::with_layer_decay(circuit, gamma);

    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
    for ((u, v), w) in graph.edges() {
        adj[u.index()].push((v.0, w));
        adj[v.index()].push((u.0, w));
    }
    let degree: Vec<f64> = adj
        .iter()
        .map(|nbrs| nbrs.iter().map(|&(_, w)| w).sum())
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        degree[b]
            .partial_cmp(&degree[a])
            .expect("finite weights")
            .then(a.cmp(&b))
    });

    let mut array_of = vec![u8::MAX; n];
    let mut members_len = vec![0usize; k];
    // Row-major n×k: qubit q's already-assigned interaction weight into
    // each array.
    let mut w_to = vec![0.0f64; n * k];
    for &q in &order {
        let total: f64 = w_to[q * k..q * k + k].iter().sum();
        let mut best_array = None;
        let mut best_cut = f64::NEG_INFINITY;
        for a in 0..k {
            if members_len[a] >= caps[a] {
                continue;
            }
            let cut = total - w_to[q * k + a];
            let cut = cut - 1e-9 * members_len[a] as f64;
            if cut > best_cut {
                best_cut = cut;
                best_array = Some(a);
            }
        }
        let a = best_array.expect("capacity was validated");
        array_of[q] = a as u8;
        members_len[a] += 1;
        for &(u, w) in &adj[q] {
            w_to[u as usize * k + a] += w;
        }
    }
    ArrayMapping {
        array_of,
        num_arrays: k,
    }
}

/// Fig. 21 baseline, modelling Qiskit's dense layout: qubits gravitate to
/// the largest contiguous region — the SLM — with only the remainder
/// spread over the AODs. Interaction structure is ignored entirely. (A
/// 100%-SLM mapping could execute no gate at all, so two thirds go to the
/// SLM and the rest split evenly — the worst *legal* concentration.)
fn dense(n: usize, caps: &[usize]) -> ArrayMapping {
    let k = caps.len();
    let slm_share = ((2 * n).div_ceil(3))
        .min(caps[0])
        .min(n.saturating_sub(1).max(1));
    let rest = n - slm_share;
    let per_aod = rest.div_ceil((k - 1).max(1));
    let mut array_of = Vec::with_capacity(n);
    array_of.resize(slm_share, 0u8);
    let mut a = 1usize;
    let mut used = 0usize;
    for _ in 0..rest {
        while used >= per_aod.min(caps[a]) {
            a += 1;
            used = 0;
        }
        array_of.push(a as u8);
        used += 1;
    }
    ArrayMapping {
        array_of,
        num_arrays: k,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_arch::{ArrayDims, RaaConfig};
    use raa_circuit::Gate;

    fn hw() -> RaaConfig {
        RaaConfig::default()
    }

    /// A circuit whose interaction graph is bipartite: qubits {0,1} talk
    /// only to {2,3}.
    fn bipartite() -> Circuit {
        let mut c = Circuit::new(4);
        for _ in 0..3 {
            c.push(Gate::cz(Qubit(0), Qubit(2)));
            c.push(Gate::cz(Qubit(1), Qubit(3)));
            c.push(Gate::cz(Qubit(0), Qubit(3)));
        }
        c
    }

    #[test]
    fn max_k_cut_separates_bipartite_halves() {
        let c = bipartite();
        let m = map_to_arrays(&c, &hw(), ArrayMapperKind::MaxKCut, 1.0).unwrap();
        // Every gate must cross arrays: zero intra-array gates.
        assert_eq!(m.intra_array_gates(&c), 0);
        let g = InteractionGraph::of(&c);
        assert!((m.cut_weight(&g) - 9.0).abs() < 1e-9);
    }

    #[test]
    fn dense_mapper_concentrates_in_slm() {
        let c = Circuit::new(120);
        let m = map_to_arrays(&c, &hw(), ArrayMapperKind::Dense, 0.9).unwrap();
        // Two thirds (80) in the SLM, capped by its 100-trap capacity.
        let slm = m.array_of.iter().filter(|&&a| a == 0).count();
        assert_eq!(slm, 80);
        // Contiguity: array index is monotone.
        assert!(m.array_of.windows(2).all(|w| w[0] <= w[1]));
        // Capacity respected even at 250 qubits.
        let m = map_to_arrays(&Circuit::new(250), &hw(), ArrayMapperKind::Dense, 0.9).unwrap();
        for a in 0..3u8 {
            assert!(m.qubits_in(a).len() <= 100, "array {a} over capacity");
        }
    }

    #[test]
    fn max_k_cut_beats_dense_on_structured_circuit() {
        let c = bipartite();
        let g = InteractionGraph::of(&c);
        let kcut = map_to_arrays(&c, &hw(), ArrayMapperKind::MaxKCut, 1.0).unwrap();
        let dense = map_to_arrays(&c, &hw(), ArrayMapperKind::Dense, 1.0).unwrap();
        assert!(kcut.cut_weight(&g) >= dense.cut_weight(&g));
    }

    #[test]
    fn capacity_respected() {
        // Tiny machine: 2x1 SLM + one 2x1 AOD = 4 traps, 4-qubit circuit.
        let hw = RaaConfig::new(ArrayDims::new(2, 1), vec![ArrayDims::new(2, 1)]).unwrap();
        let mut c = Circuit::new(4);
        // Star around qubit 0: greedy wants everyone opposite 0.
        for q in 1..4 {
            c.push(Gate::cz(Qubit(0), Qubit(q)));
        }
        let m = map_to_arrays(&c, &hw, ArrayMapperKind::MaxKCut, 1.0).unwrap();
        for a in 0..2u8 {
            assert!(m.qubits_in(a).len() <= 2, "array {a} over capacity");
        }
    }

    #[test]
    fn too_many_qubits_rejected() {
        let c = Circuit::new(301);
        assert!(matches!(
            map_to_arrays(&c, &hw(), ArrayMapperKind::MaxKCut, 0.9),
            Err(CompileError::Capacity {
                required: 301,
                available: 300
            })
        ));
    }

    #[test]
    fn every_qubit_is_assigned() {
        let c = bipartite();
        for kind in [ArrayMapperKind::MaxKCut, ArrayMapperKind::Dense] {
            let m = map_to_arrays(&c, &hw(), kind, 0.9).unwrap();
            assert_eq!(m.array_of.len(), 4);
            assert!(m.array_of.iter().all(|&a| (a as usize) < m.num_arrays));
        }
    }

    #[test]
    fn pooled_mapping_is_bit_identical() {
        use rand::{RngExt, SeedableRng};
        // Large enough to clear PAR_MIN_VERTICES so the parallel degree
        // scatter actually engages.
        let n = 280usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let mut c = Circuit::new(n);
        for _ in 0..800 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let base = map_to_arrays(&c, &hw(), ArrayMapperKind::MaxKCut, 0.9).unwrap();
        for threads in [2, 4, 8] {
            let pool = raa_par::WorkPool::new(threads);
            let m = map_to_arrays_pooled(&c, &hw(), ArrayMapperKind::MaxKCut, 0.9, &pool).unwrap();
            assert_eq!(m, base, "{threads} threads");
        }
    }

    #[test]
    fn indexed_mapping_is_bit_identical_to_naive() {
        use rand::{RngExt, SeedableRng};
        for (seed, n, gates, gamma) in [(17u64, 280usize, 800usize, 0.9f64), (5, 40, 120, 0.5)] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut c = Circuit::new(n);
            for _ in 0..gates {
                let a = rng.random_range(0..n as u32);
                let mut b = rng.random_range(0..n as u32);
                while b == a {
                    b = rng.random_range(0..n as u32);
                }
                c.push(Gate::cz(Qubit(a), Qubit(b)));
            }
            let base = map_to_arrays(&c, &hw(), ArrayMapperKind::MaxKCut, gamma).unwrap();
            for threads in [1, 4] {
                let pool = raa_par::WorkPool::new(threads);
                let idx = map_to_arrays_with(
                    &c,
                    &hw(),
                    ArrayMapperKind::MaxKCut,
                    gamma,
                    TranspileIndex::Indexed,
                    &pool,
                )
                .unwrap();
                assert_eq!(idx, base, "seed {seed}, {threads} threads");
            }
            let naive = map_to_arrays_with(
                &c,
                &hw(),
                ArrayMapperKind::MaxKCut,
                gamma,
                TranspileIndex::Naive,
                &raa_par::WorkPool::sequential(),
            )
            .unwrap();
            assert_eq!(naive, base, "seed {seed}: Naive mode must be the old path");
        }
    }

    #[test]
    fn gamma_affects_weights_not_validity() {
        let c = bipartite();
        let m = map_to_arrays(&c, &hw(), ArrayMapperKind::MaxKCut, 0.5).unwrap();
        assert_eq!(m.intra_array_gates(&c), 0);
    }
}
