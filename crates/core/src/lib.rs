//! **Atomique** — a quantum compiler for reconfigurable neutral atom
//! arrays (Wang et al., ISCA 2024). This crate is the paper's primary
//! contribution, reimplemented from scratch in Rust.
//!
//! The pipeline (paper Fig. 3):
//!
//! 1. **Qubit-array mapper** ([`map_to_arrays`]) — greedy MAX k-Cut on a
//!    γ-decayed gate-frequency graph decides which array (SLM or one of the
//!    AODs) hosts each qubit, minimizing SWAP overhead (Alg. 1).
//! 2. **SWAP insertion** ([`transpile`]) — SABRE on the complete
//!    multipartite coupling graph makes every two-qubit gate inter-array
//!    (Fig. 5).
//! 3. **Qubit-atom mapper** ([`map_to_atoms`]) — load-balance
//!    diagonal-spiral placement for SLM qubits and frequency-aligned
//!    placement for AOD qubits (Figs. 6–7).
//! 4. **High-parallelism router** ([`route_movements`]) — schedules atom
//!    movements and Rydberg pulses under the three hardware constraints
//!    (Figs. 8–11), with per-constraint relaxation (Fig. 22).
//! 5. **Fidelity estimation** — the Sec. IV/V-A model via `raa-physics`.
//!
//! Most users call [`compile`] with an [`AtomiqueConfig`]:
//!
//! ```
//! use atomique::{compile, AtomiqueConfig};
//! use raa_circuit::{Circuit, Gate, Qubit};
//!
//! let mut ghz = Circuit::new(4);
//! ghz.push(Gate::h(Qubit(0)));
//! for i in 0..3 {
//!     ghz.push(Gate::cx(Qubit(i), Qubit(i + 1)));
//! }
//! let out = compile(&ghz, &AtomiqueConfig::default())?;
//! assert_eq!(out.stats.two_qubit_gates, 3);
//! println!("depth {} fidelity {:.4}", out.stats.depth, out.total_fidelity());
//! # Ok::<(), atomique::CompileError>(())
//! ```

#![warn(missing_docs)]

mod array_mapper;
mod atom_mapper;
mod compiler;
mod config;
mod error;
mod layers;
mod lower;
mod program;
mod render;
mod router;
mod transpile;
mod validate;

pub use array_mapper::{map_to_arrays, map_to_arrays_with, ArrayMapping};
pub use atom_mapper::{diagonal_spiral_order, map_to_atoms, AtomMapping};
pub use compiler::{compile, compile_with_limits, CompileLimits};
pub use config::{
    parse_threads, ArrayMapperKind, AtomMapperKind, AtomiqueConfig, ProximityIndex, Relaxation,
    RouterMode, RouterStrategy, ThreadsParseError, TranspileIndex, MAX_THREADS,
};
pub use error::CompileError;
pub use lower::emit_isa;
pub use program::{
    CompileReport, CompileStats, CompiledProgram, LineMove, RouterStats, Stage, StageKind,
    StageTimings,
};
pub use raa_isa::{OptLevel, OptReport};
// Re-exported so downstream crates can drive sessions and export traces
// without naming raa-trace themselves.
pub use raa_trace as trace;
pub use render::{render_schedule, summarize};
pub use router::{route_movements, RoutedProgram};
// Re-exported so downstream users of `atomique::SpatialGrid` (the home
// of the index before it was extracted into its own crate) keep working.
pub use raa_spatial::SpatialGrid;
pub use transpile::{transpile, transpile_with, TranspiledCircuit};
pub use validate::{validate_program, ValidationError};
