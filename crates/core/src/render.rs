//! Human-readable rendering of compiled programs: a textual instruction
//! listing in the spirit of the DPQA/OLSQ artifact output, useful for
//! debugging schedules and for driving external visualizers.

use std::fmt::Write as _;

use crate::program::{CompiledProgram, StageKind};

/// Renders the full movement/pulse schedule as text.
///
/// One line per instruction:
///
/// ```text
/// stage 0003 MOVE   aod0 row 2: 2.604 -> 5.050
/// stage 0003 PULSE  gates: (4,17) (6,19)
/// stage 0003 RETRACT aod0 row 2: 5.050 -> 5.350
/// ```
///
/// # Examples
///
/// ```
/// use atomique::{compile, render_schedule, AtomiqueConfig};
/// use raa_circuit::{Circuit, Gate, Qubit};
/// let mut c = Circuit::new(2);
/// c.push(Gate::cz(Qubit(0), Qubit(1)));
/// let out = compile(&c, &AtomiqueConfig::default())?;
/// let text = render_schedule(&out);
/// assert!(text.contains("PULSE"));
/// # Ok::<(), atomique::CompileError>(())
/// ```
pub fn render_schedule(program: &CompiledProgram) -> String {
    let mut out = String::new();
    for (i, stage) in program.stages.iter().enumerate() {
        match stage.kind {
            StageKind::OneQubit => {
                let _ = writeln!(
                    out,
                    "stage {i:04} RAMAN  {} one-qubit gates",
                    stage.one_qubit_gates.len()
                );
            }
            StageKind::Movement => {
                for mv in &stage.moves {
                    if mv.line == u16::MAX {
                        let _ = writeln!(out, "stage {i:04} UNPARK aod{}", mv.aod);
                    } else {
                        let _ = writeln!(
                            out,
                            "stage {i:04} MOVE   aod{} {} {}: {:.3} -> {:.3}",
                            mv.aod,
                            if mv.axis_row { "row" } else { "col" },
                            mv.line,
                            mv.from_track,
                            mv.to_track
                        );
                    }
                }
                let gates: Vec<String> = stage
                    .gate_pairs
                    .iter()
                    .map(|(a, b)| format!("({a},{b})"))
                    .collect();
                let _ = writeln!(out, "stage {i:04} PULSE  gates: {}", gates.join(" "));
                for mv in &stage.retract_moves {
                    let _ = writeln!(
                        out,
                        "stage {i:04} RETRACT aod{} {} {}: {:.3} -> {:.3}",
                        mv.aod,
                        if mv.axis_row { "row" } else { "col" },
                        mv.line,
                        mv.from_track,
                        mv.to_track
                    );
                }
            }
            StageKind::Reset => {
                let _ = writeln!(out, "stage {i:04} RESET  keep {:?}", stage.kept_aods);
            }
            StageKind::TransferAssisted => {
                let (a, b) = stage.gate_pairs[0];
                let _ = writeln!(out, "stage {i:04} XFER   gate ({a},{b}) via re-grab");
            }
            StageKind::Cooling => {
                let _ = writeln!(
                    out,
                    "stage {i:04} COOL   aod{} swapped with cold spare",
                    stage.cooled_aod.unwrap_or(0)
                );
            }
        }
    }
    out
}

/// One-line summary of a compiled program, for logs.
pub fn summarize(program: &CompiledProgram) -> String {
    let s = &program.stats;
    format!(
        "{}q: 2Q {} (swaps {}), depth {}, moves {} ({:.2} mm), cooling {}, F {:.4}",
        s.num_qubits,
        s.two_qubit_gates,
        s.swaps_inserted,
        s.depth,
        s.num_move_stages,
        s.total_move_distance_mm,
        s.cooling_events,
        program.total_fidelity()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::config::AtomiqueConfig;
    use raa_circuit::{Circuit, Gate, Qubit};

    fn program() -> CompiledProgram {
        let mut c = Circuit::new(4);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(2)));
        c.push(Gate::cz(Qubit(1), Qubit(3)));
        compile(&c, &AtomiqueConfig::default()).unwrap()
    }

    #[test]
    fn renders_all_instruction_kinds() {
        let text = render_schedule(&program());
        assert!(text.contains("RAMAN"));
        assert!(text.contains("MOVE"));
        assert!(text.contains("PULSE"));
        assert!(text.contains("RETRACT"));
        // Stage numbering is zero-padded and ascending.
        assert!(text.starts_with("stage 0000"));
    }

    #[test]
    fn every_gate_pair_appears() {
        let p = program();
        let text = render_schedule(&p);
        let rendered_pulses = text.matches("PULSE").count();
        let stages_with_gates = p
            .stages
            .iter()
            .filter(|s| s.kind == StageKind::Movement)
            .count();
        assert_eq!(rendered_pulses, stages_with_gates);
    }

    #[test]
    fn summary_mentions_key_stats() {
        let p = program();
        let s = summarize(&p);
        assert!(s.contains("4q"));
        assert!(s.contains("depth"));
        assert!(s.contains("F 0."));
    }
}
