//! Intra-array SWAP insertion over the complete multipartite coupling
//! graph (paper Fig. 5), followed by decomposition to the RAA native gate
//! set.
//!
//! After the qubit-array mapper, every two-qubit gate between different
//! arrays is directly executable via movement; a gate inside one array is
//! not. The paper "leverage[s] the default SABRE in Qiskit with the
//! multipartite coupling graph" to insert the needed SWAPs — we run our
//! SABRE on the same graph. The result is a circuit over *atom slots*
//! (one slot per trapped atom) in which every two-qubit gate is a CZ
//! between slots of different arrays.

use raa_arch::CouplingGraph;
use raa_circuit::{Circuit, NativeGateSet};
use raa_par::WorkPool;
use raa_sabre::{route_indexed_pooled, route_pooled, SabreConfig};

use crate::array_mapper::ArrayMapping;
use crate::config::TranspileIndex;
use crate::error::CompileError;

/// Output of the transpilation pass.
#[derive(Debug, Clone)]
pub struct TranspiledCircuit {
    /// Circuit over slots: only CZ + one-qubit gates, every CZ inter-array.
    pub circuit: Circuit,
    /// Array index of each slot.
    pub slot_array: Vec<u8>,
    /// Initial slot of each logical qubit.
    pub slot_of_qubit: Vec<u32>,
    /// SWAPs the router had to insert (each became 3 CZ + one-qubit gates).
    pub swaps_inserted: usize,
}

impl TranspiledCircuit {
    /// Number of atom slots (equals the logical qubit count).
    pub fn num_slots(&self) -> usize {
        self.slot_array.len()
    }

    /// Additional CNOT-equivalents caused by SWAP insertion (Fig. 25's
    /// metric: 3 per SWAP).
    pub fn additional_cnots(&self) -> usize {
        3 * self.swaps_inserted
    }
}

/// Runs SWAP insertion for `circuit` under the given array mapping.
///
/// # Errors
///
/// Propagates SABRE failures (e.g. a mapping whose multipartite graph
/// cannot realize the circuit).
pub fn transpile(
    circuit: &Circuit,
    mapping: &ArrayMapping,
    sabre: &SabreConfig,
) -> Result<TranspiledCircuit, CompileError> {
    transpile_pooled(circuit, mapping, sabre, &WorkPool::sequential())
}

/// [`transpile`] with SABRE's candidate scoring fanned out over `pool`
/// (see [`raa_sabre::route_pooled`]); bit-identical output at every
/// worker count.
///
/// # Errors
///
/// Exactly those of [`transpile`].
pub fn transpile_pooled(
    circuit: &Circuit,
    mapping: &ArrayMapping,
    sabre: &SabreConfig,
    pool: &WorkPool,
) -> Result<TranspiledCircuit, CompileError> {
    transpile_with(circuit, mapping, sabre, TranspileIndex::Naive, pool)
}

/// `transpile_pooled` with the transpile-index mode selected
/// explicitly. [`TranspileIndex::Naive`] is the path above —
/// BFS-built coupling graph, from-scratch SABRE rescoring every round.
/// [`TranspileIndex::Indexed`] builds the complete-multipartite graph
/// analytically ([`CouplingGraph::complete_multipartite_indexed`] — the
/// graph is field-for-field identical, skipping the all-pairs BFS that
/// dominates large-register transpiles) and routes through
/// [`route_indexed_pooled`]'s incremental score cache. Outputs are
/// bit-identical across modes (`tests/transpile_differential.rs`).
///
/// # Errors
///
/// Exactly those of [`transpile`].
pub fn transpile_with(
    circuit: &Circuit,
    mapping: &ArrayMapping,
    sabre: &SabreConfig,
    index: TranspileIndex,
    pool: &WorkPool,
) -> Result<TranspiledCircuit, CompileError> {
    let n = circuit.num_qubits();
    debug_assert_eq!(mapping.array_of.len(), n);

    // Slots grouped by array, qubit-index order within each array.
    let mut slot_of_qubit = vec![0u32; n];
    let mut slot_array = Vec::with_capacity(n);
    let mut part_sizes = vec![0usize; mapping.num_arrays];
    {
        let mut next_slot = 0u32;
        for a in 0..mapping.num_arrays as u8 {
            for (q, &qa) in mapping.array_of.iter().enumerate() {
                if qa == a {
                    slot_of_qubit[q] = next_slot;
                    slot_array.push(a);
                    part_sizes[a as usize] += 1;
                    next_slot += 1;
                }
            }
        }
    }

    let native = circuit.decompose_to(NativeGateSet::Cz);
    let routed = match index {
        TranspileIndex::Naive => {
            let graph = CouplingGraph::complete_multipartite(&part_sizes);
            route_pooled(&native, &graph, &slot_of_qubit, sabre, pool)?
        }
        TranspileIndex::Indexed => {
            let graph = CouplingGraph::complete_multipartite_indexed(&part_sizes);
            route_indexed_pooled(&native, &graph, &slot_of_qubit, sabre, pool)?
        }
    };
    let out = routed.circuit.decompose_to(NativeGateSet::Cz);

    Ok(TranspiledCircuit {
        circuit: out,
        slot_array,
        slot_of_qubit,
        swaps_inserted: routed.swaps_inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array_mapper::{map_to_arrays, ArrayMapping};
    use crate::config::ArrayMapperKind;
    use raa_arch::RaaConfig;
    use raa_circuit::{Gate, Qubit};

    fn transpiled(c: &Circuit, mapping: &ArrayMapping) -> TranspiledCircuit {
        transpile(c, mapping, &SabreConfig::default()).unwrap()
    }

    fn assert_all_gates_inter_array(t: &TranspiledCircuit) {
        for (a, b) in t.circuit.two_qubit_pairs() {
            assert_ne!(
                t.slot_array[a.index()],
                t.slot_array[b.index()],
                "intra-array gate between slots {a} and {b}"
            );
        }
    }

    #[test]
    fn cross_array_circuit_needs_no_swaps() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(2)));
        c.push(Gate::cz(Qubit(1), Qubit(3)));
        let mapping = ArrayMapping {
            array_of: vec![0, 0, 1, 1],
            num_arrays: 3,
        };
        let t = transpiled(&c, &mapping);
        assert_eq!(t.swaps_inserted, 0);
        assert_eq!(t.circuit.two_qubit_count(), 2);
        assert_all_gates_inter_array(&t);
    }

    #[test]
    fn intra_array_gate_costs_one_swap() {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(1))); // same array under this mapping
        let mapping = ArrayMapping {
            array_of: vec![0, 0, 1, 1],
            num_arrays: 3,
        };
        let t = transpiled(&c, &mapping);
        assert_eq!(t.swaps_inserted, 1);
        // 1 logical CZ + 3 CZs from the SWAP.
        assert_eq!(t.circuit.two_qubit_count(), 4);
        assert_eq!(t.additional_cnots(), 3);
        assert_all_gates_inter_array(&t);
    }

    #[test]
    fn non_native_gates_become_rydberg_native() {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(Qubit(0), Qubit(2)));
        c.push(Gate::zz(Qubit(1), Qubit(3), 0.4));
        let mapping = ArrayMapping {
            array_of: vec![0, 0, 1, 1],
            num_arrays: 3,
        };
        let t = transpiled(&c, &mapping);
        // CX → 1 CZ; ZZ is native (1 pulse); all inter-array so no swaps.
        assert_eq!(t.swaps_inserted, 0);
        assert_eq!(t.circuit.two_qubit_count(), 2);
        assert!(t.circuit.gates().iter().all(|g| !g.is_swap()));
        assert_all_gates_inter_array(&t);
    }

    #[test]
    fn end_to_end_with_max_k_cut() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 12;
        let mut c = Circuit::new(n);
        for _ in 0..60 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let hw = RaaConfig::default();
        let mapping = map_to_arrays(&c, &hw, ArrayMapperKind::MaxKCut, 0.9).unwrap();
        let t = transpiled(&c, &mapping);
        assert_all_gates_inter_array(&t);
        assert_eq!(t.num_slots(), n);
        // Slot assignment is a permutation of qubits.
        let mut seen = vec![false; n];
        for &s in &t.slot_of_qubit {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }

    #[test]
    fn indexed_transpile_is_bit_identical_to_naive() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 24;
        let mut c = Circuit::new(n);
        for _ in 0..120 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let hw = RaaConfig::default();
        let mapping = map_to_arrays(&c, &hw, ArrayMapperKind::MaxKCut, 0.9).unwrap();
        let sabre = SabreConfig::default();
        let naive = transpile(&c, &mapping, &sabre).unwrap();
        for threads in [1, 4] {
            let pool = WorkPool::new(threads);
            let indexed =
                transpile_with(&c, &mapping, &sabre, TranspileIndex::Indexed, &pool).unwrap();
            assert_eq!(indexed.circuit.gates(), naive.circuit.gates());
            assert_eq!(indexed.slot_array, naive.slot_array);
            assert_eq!(indexed.slot_of_qubit, naive.slot_of_qubit);
            assert_eq!(indexed.swaps_inserted, naive.swaps_inserted);
        }
    }

    #[test]
    fn slots_grouped_by_array() {
        let mapping = ArrayMapping {
            array_of: vec![1, 0, 1, 0],
            num_arrays: 3,
        };
        let c = Circuit::new(4);
        let t = transpiled(&c, &mapping);
        // Slot array indices are sorted ascending by construction.
        assert!(t.slot_array.windows(2).all(|w| w[0] <= w[1]));
        // Qubit 1 and 3 (array 0) get the first two slots.
        assert_eq!(t.slot_of_qubit[1], 0);
        assert_eq!(t.slot_of_qubit[3], 1);
        assert_eq!(t.slot_of_qubit[0], 2);
        assert_eq!(t.slot_of_qubit[2], 3);
    }
}
