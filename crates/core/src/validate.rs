//! Independent validation of compiled programs.
//!
//! [`validate_program`] replays a [`CompiledProgram`]'s stage schedule
//! against the hardware description and re-checks, from scratch, that
//! every stage satisfies the three hardware constraints and that every
//! scheduled gate pair actually touches. The validator shares no state
//! with the router — it reconstructs line positions purely from the
//! recorded [`LineMove`]s — so it catches bookkeeping bugs the router
//! itself could not notice.

use std::collections::HashMap;

use raa_arch::{ArrayIndex, RaaConfig, TrapSite};

use crate::program::{CompiledProgram, StageKind};
use raa_spatial::SpatialGrid;

/// Rydberg radius in track units (matches the router).
const INTERACT_R: f64 = 1.0 / 6.0;

/// A constraint violation found by the validator.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A scheduled gate pair ended up farther apart than the Rydberg
    /// radius.
    PairTooFar {
        /// Stage index.
        stage: usize,
        /// The slot pair.
        pair: (u32, u32),
        /// Distance in track units.
        distance: f64,
    },
    /// Two atoms not scheduled to interact ended within the Rydberg
    /// radius (an unwanted gate).
    UnwantedInteraction {
        /// Stage index.
        stage: usize,
        /// The offending pair.
        pair: (u32, u32),
        /// Distance in track units.
        distance: f64,
    },
    /// A row/column order inversion within one AOD.
    OrderViolation {
        /// Stage index.
        stage: usize,
        /// AOD index.
        aod: u8,
    },
    /// Two adjacent rows/columns of one AOD closer than the Rydberg
    /// radius (C3: their atoms would blockade each other).
    LineOverlap {
        /// Stage index.
        stage: usize,
        /// AOD index.
        aod: u8,
    },
    /// A recorded move references a line the machine does not have.
    UnknownLine {
        /// Stage index.
        stage: usize,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::PairTooFar {
                stage,
                pair,
                distance,
            } => write!(
                f,
                "stage {stage}: scheduled pair ({}, {}) is {distance:.3} tracks apart",
                pair.0, pair.1
            ),
            ValidationError::UnwantedInteraction {
                stage,
                pair,
                distance,
            } => write!(
                f,
                "stage {stage}: unwanted interaction between {} and {} at {distance:.3} tracks",
                pair.0, pair.1
            ),
            ValidationError::OrderViolation { stage, aod } => {
                write!(f, "stage {stage}: AOD{aod} row/column order violated")
            }
            ValidationError::LineOverlap { stage, aod } => {
                write!(
                    f,
                    "stage {stage}: adjacent AOD{aod} lines within the Rydberg radius"
                )
            }
            ValidationError::UnknownLine { stage } => {
                write!(f, "stage {stage}: move references a nonexistent line")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Replays `program` on `hardware` and re-checks every movement stage.
///
/// `site_of_slot` is the atom mapping the program was compiled with
/// (available from [`CompiledProgram::mapping`]).
///
/// Checks performed per movement stage:
///
/// * every scheduled pair ends within the Rydberg radius;
/// * no unscheduled pair of *tracked* atoms (atoms of arrays touched so
///   far, plus the SLM) ends within the Rydberg radius;
/// * each AOD's row and column coordinates remain strictly increasing.
///
/// # Errors
///
/// The first violation found.
pub fn validate_program(
    program: &CompiledProgram,
    hardware: &RaaConfig,
    site_of_slot: &[TrapSite],
) -> Result<(), ValidationError> {
    let num_aods = hardware.num_aods();
    let mut row_pos: Vec<Vec<f64>> = Vec::with_capacity(num_aods);
    let mut col_pos: Vec<Vec<f64>> = Vec::with_capacity(num_aods);
    // Parked arrays are excluded from interaction checks until they move.
    let mut parked = vec![false; num_aods];
    for k in 0..num_aods {
        let dims = hardware.dims(ArrayIndex::aod(k));
        let fy = hardware.home_y(ArrayIndex::aod(k), 0) / hardware.spacing_um;
        let fx = hardware.home_x(ArrayIndex::aod(k), 0) / hardware.spacing_um;
        row_pos.push((0..dims.rows).map(|r| r as f64 + fy).collect());
        col_pos.push((0..dims.cols).map(|c| c as f64 + fx).collect());
    }

    let pos = |site: TrapSite, row_pos: &[Vec<f64>], col_pos: &[Vec<f64>]| -> (f64, f64) {
        if site.array.is_slm() {
            (site.row as f64, site.col as f64)
        } else {
            let k = site.array.aod_number();
            (row_pos[k][site.row as usize], col_pos[k][site.col as usize])
        }
    };

    // Spatial index over every slot's position, maintained as the replay
    // applies moves: the separation checks below query neighbors within
    // the Rydberg radius instead of scanning all atom pairs (the grid's
    // exactness at radius ≤ its cell size is property-tested in
    // `crates/core/tests/spatial_properties.rs`).
    let mut atoms_on_line: HashMap<(usize, bool, u16), Vec<u32>> = HashMap::new();
    for (slot, site) in site_of_slot.iter().enumerate() {
        if !site.array.is_slm() {
            let k = site.array.aod_number();
            atoms_on_line
                .entry((k, true, site.row))
                .or_default()
                .push(slot as u32);
            atoms_on_line
                .entry((k, false, site.col))
                .or_default()
                .push(slot as u32);
        }
    }
    let mut grid = SpatialGrid::new(2.5 * INTERACT_R);
    for (slot, &site) in site_of_slot.iter().enumerate() {
        grid.insert(slot as u32, pos(site, &row_pos, &col_pos));
    }

    for (i, stage) in program.stages.iter().enumerate() {
        match stage.kind {
            StageKind::OneQubit | StageKind::Cooling | StageKind::TransferAssisted => continue,
            StageKind::Reset => {
                // Reset re-homes everything; parked state is conservative
                // (we simply re-enable all arrays and re-home them).
                for k in 0..num_aods {
                    let dims = hardware.dims(ArrayIndex::aod(k));
                    let fy = hardware.home_y(ArrayIndex::aod(k), 0) / hardware.spacing_um;
                    let fx = hardware.home_x(ArrayIndex::aod(k), 0) / hardware.spacing_um;
                    row_pos[k] = (0..dims.rows).map(|r| r as f64 + fy).collect();
                    col_pos[k] = (0..dims.cols).map(|c| c as f64 + fx).collect();
                    parked[k] = !stage.kept_aods.contains(&(k as u8));
                }
                for (slot, site) in site_of_slot.iter().enumerate() {
                    if !site.array.is_slm() {
                        grid.update(slot as u32, pos(*site, &row_pos, &col_pos));
                    }
                }
                continue;
            }
            StageKind::Movement => {}
        }
        // Apply the recorded moves.
        for mv in &stage.moves {
            let k = mv.aod as usize;
            if k >= num_aods {
                return Err(ValidationError::UnknownLine { stage: i });
            }
            if mv.line == u16::MAX {
                parked[k] = false; // unpark marker
                continue;
            }
            let lines = if mv.axis_row {
                &mut row_pos[k]
            } else {
                &mut col_pos[k]
            };
            let Some(slot) = lines.get_mut(mv.line as usize) else {
                return Err(ValidationError::UnknownLine { stage: i });
            };
            *slot = mv.to_track;
            parked[k] = false;
            if let Some(atoms) = atoms_on_line.get(&(k, mv.axis_row, mv.line)) {
                for &atom in atoms {
                    grid.update(atom, pos(site_of_slot[atom as usize], &row_pos, &col_pos));
                }
            }
        }
        // C2 (strict ordering) and C3 (adjacent lines at least one
        // Rydberg radius apart) at the pulse — the same per-pulse line
        // constraints the ISA legality checker enforces, so a merged
        // (layered) stage cannot pass here and fail there.
        for k in 0..num_aods {
            for lines in [&row_pos[k], &col_pos[k]] {
                if lines.windows(2).any(|w| w[1] <= w[0]) {
                    return Err(ValidationError::OrderViolation {
                        stage: i,
                        aod: k as u8,
                    });
                }
                if lines.windows(2).any(|w| w[1] - w[0] < INTERACT_R - 1e-9) {
                    return Err(ValidationError::LineOverlap {
                        stage: i,
                        aod: k as u8,
                    });
                }
            }
        }
        // Gate pairs touch; no unwanted interactions among active atoms.
        let mut desired: HashMap<(u32, u32), ()> = HashMap::new();
        for &(a, b) in &stage.gate_pairs {
            let key = (a.min(b), a.max(b));
            desired.insert(key, ());
            let pa = pos(site_of_slot[a as usize], &row_pos, &col_pos);
            let pb = pos(site_of_slot[b as usize], &row_pos, &col_pos);
            let d = dist(pa, pb);
            if d > INTERACT_R + 1e-9 {
                return Err(ValidationError::PairTooFar {
                    stage: i,
                    pair: (a, b),
                    distance: d,
                });
            }
        }
        if let Some((pair, distance)) = first_unwanted(
            &grid,
            site_of_slot,
            &parked,
            &desired,
            &pos,
            &row_pos,
            &col_pos,
        ) {
            return Err(ValidationError::UnwantedInteraction {
                stage: i,
                pair,
                distance,
            });
        }
        // Apply the post-pulse retraction. Whether it fully separated the
        // pulsed pairs is checked where it physically matters: at the
        // *next* pulse (the unwanted-interaction check above) and at the
        // end of the schedule (below) — the global Rydberg laser only
        // fires at pulses, and the router may legally restore separation
        // with a reset stage instead of a local retraction.
        for mv in &stage.retract_moves {
            let k = mv.aod as usize;
            let lines = if mv.axis_row {
                &mut row_pos[k]
            } else {
                &mut col_pos[k]
            };
            let Some(slot) = lines.get_mut(mv.line as usize) else {
                return Err(ValidationError::UnknownLine { stage: i });
            };
            *slot = mv.to_track;
            if let Some(atoms) = atoms_on_line.get(&(k, mv.axis_row, mv.line)) {
                for &atom in atoms {
                    grid.update(atom, pos(site_of_slot[atom as usize], &row_pos, &col_pos));
                }
            }
        }
    }
    // End of schedule: no in-field pair may remain within the radius (a
    // further pulse would re-fire on it).
    let no_desired = HashMap::new();
    if let Some((pair, distance)) = first_unwanted(
        &grid,
        site_of_slot,
        &parked,
        &no_desired,
        &pos,
        &row_pos,
        &col_pos,
    ) {
        return Err(ValidationError::UnwantedInteraction {
            stage: program.stages.len(),
            pair,
            distance,
        });
    }
    Ok(())
}

/// Scans every active (non-parked) atom's Rydberg-radius neighborhood
/// for a pair not in `desired`; returns the first such pair in
/// ascending `(x, y)` order, with its distance. Replaces the all-pairs
/// scan: the grid enumeration visits only atoms that can possibly be
/// within the radius, reusing one candidate buffer across the whole
/// sweep (the candidates are sorted so the reported pair stays
/// deterministic).
fn first_unwanted(
    grid: &SpatialGrid,
    site_of_slot: &[TrapSite],
    parked: &[bool],
    desired: &HashMap<(u32, u32), ()>,
    pos: &impl Fn(TrapSite, &[Vec<f64>], &[Vec<f64>]) -> (f64, f64),
    row_pos: &[Vec<f64>],
    col_pos: &[Vec<f64>],
) -> Option<((u32, u32), f64)> {
    let active = |s: u32| {
        let site = site_of_slot[s as usize];
        site.array.is_slm() || !parked[site.array.aod_number()]
    };
    let mut buf: Vec<u32> = Vec::new();
    for x in 0..site_of_slot.len() as u32 {
        if !active(x) {
            continue;
        }
        let px = pos(site_of_slot[x as usize], row_pos, col_pos);
        buf.clear();
        grid.candidates_into(px, INTERACT_R, &mut buf);
        buf.sort_unstable();
        for &y in &buf {
            // Report each pair once (y > x) and skip inactive atoms.
            if y <= x || !active(y) {
                continue;
            }
            let key = (x, y);
            if desired.contains_key(&key) {
                continue;
            }
            let py = pos(site_of_slot[y as usize], row_pos, col_pos);
            let d = dist(px, py);
            if d <= INTERACT_R {
                return Some((key, d));
            }
        }
    }
    None
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dr = a.0 - b.0;
    let dc = a.1 - b.1;
    (dr * dr + dc * dc).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::config::AtomiqueConfig;
    use raa_circuit::{Circuit, Gate, Qubit};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            if rng.random::<f64>() < 0.25 {
                c.push(Gate::h(Qubit(a)));
            } else {
                c.push(Gate::cz(Qubit(a), Qubit(b)));
            }
        }
        c
    }

    #[test]
    fn compiled_programs_validate() {
        let cfg = AtomiqueConfig::default();
        for seed in 0..6 {
            let c = random_circuit(16, 50, seed);
            let out = compile(&c, &cfg).unwrap();
            validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn larger_program_validates() {
        let c = random_circuit(40, 200, 9);
        let cfg = AtomiqueConfig::default();
        let out = compile(&c, &cfg).unwrap();
        validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot).unwrap();
    }

    #[test]
    fn tampered_program_fails() {
        let c = random_circuit(8, 20, 1);
        let cfg = AtomiqueConfig::default();
        let mut out = compile(&c, &cfg).unwrap();
        // Corrupt the first movement stage's first move.
        let Some(stage) = out
            .stages
            .iter_mut()
            .find(|s| s.kind == StageKind::Movement && !s.moves.is_empty())
        else {
            panic!("no movement stage");
        };
        for mv in &mut stage.moves {
            if mv.line != u16::MAX {
                mv.to_track += 3.0;
                break;
            }
        }
        assert!(validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidationError::PairTooFar {
            stage: 3,
            pair: (1, 2),
            distance: 0.9,
        };
        assert!(e.to_string().contains("stage 3"));
        let e = ValidationError::OrderViolation { stage: 1, aod: 0 };
        assert!(e.to_string().contains("AOD0"));
    }
}
