//! Layered move batching: the second phase of the two-phase router.
//!
//! The gate planner ([`route_movements`](crate::route_movements) under
//! either strategy) produces one movement stage — move in, pulse,
//! retract — per greedily planned gate group. Under
//! [`RouterStrategy::Layered`](crate::RouterStrategy) this module
//! re-batches that schedule the way the Arctic compiler batches moves
//! at the layer level:
//!
//! * **Layer merging.** Consecutive movement stages whose moves touch
//!   disjoint AOD lines and whose gates touch disjoint atoms fuse into
//!   one layer: a single coordinated Move/Unpark group, one merged
//!   Rydberg pulse driving every pair, and one combined retraction
//!   group. A merge is taken only when the *merged* pulse configuration
//!   — later stages' lines at their approach targets, earlier stages'
//!   pulsed lines still un-retracted — passes the same predicates the
//!   ISA legality checker applies at a pulse: C2/C3 on every AOD, every
//!   scheduled pair within the blockade radius, no other in-field pair
//!   within it. The sequential planner enforces a conservative
//!   2.5 r_b safety band *within* a stage; across stages only the
//!   hardware's real r_b exactness matters, which is exactly what the
//!   checker (and therefore this merge test) demands — that margin is
//!   where the recovered parallelism comes from.
//! * **Round-trip elision.** At a layer boundary, a retraction that the
//!   next layer's approach exactly undoes (the same gate pair pulsed
//!   again at the same position) is never emitted: the planner consults
//!   [`raa_isa::opt::cost::round_trip_cancels`] — the *same* predicate
//!   the optimizer's fuse pass applies post hoc — so approaches are
//!   planned knowing the retraction would fuse away anyway. This closes
//!   the ROADMAP's router↔optimizer feedback loop: the `-O0` stream
//!   already omits what `-O2` would delete.
//!
//! Merging never reorders, drops or duplicates a gate — pair lists
//! concatenate in stage order — so the flattened gate-execution
//! sequence is identical to the sequential schedule's, and the replay
//! verifier proves DAG-consistent exactly-once execution on the merged
//! stream just as it does on the baseline
//! (`tests/layered_differential.rs` checks both over the full small
//! suite). Pulse count and line travel strictly shrink or stay equal,
//! never grow: each merge deletes one pulse and moves no line farther,
//! each elided round trip removes twice its retraction distance.
//!
//! After batching, the stage schedule is re-accounted through a fresh
//! [`MovementLedger`]: a merged layer is one physical move phase, so
//! execution time, per-stage heating and decoherence reflect the
//! coordinated movement rather than the sequential plan's k separate
//! phases. Cooling stages stay where the planner scheduled them.

use std::collections::{HashMap, HashSet};

use crate::atom_mapper::AtomMapping;
use crate::program::{LineMove, RouterStats, Stage, StageKind};
use crate::router::{RoutedProgram, INTERACT_R, PARK_TRAVEL};
use raa_arch::{ArrayIndex, RaaConfig, TrapSite};
use raa_physics::{HardwareParams, MovementLedger};
use raa_trace::Counter;

/// Stages fused into an already-open layer (one saved pulse each).
static MERGED_STAGES: Counter = Counter::new("layers.merged_stages");
/// Retract/approach round trips never emitted at a layer boundary.
static ROUND_TRIPS_ELIDED: Counter = Counter::new("layers.round_trips_elided");

/// `(aod, is_row, line)` — one movable AOD line.
type LineKey = (u8, bool, u16);

/// Re-batches a sequentially planned schedule into layers and
/// re-accounts it. `overlap_rejections` is a planning-time counter the
/// stage replay cannot reconstruct; it is carried over from the
/// sequential stats.
pub(crate) fn rebatch(
    routed: RoutedProgram,
    mapping: &AtomMapping,
    hw: &RaaConfig,
    params: &HardwareParams,
    num_qubits: usize,
) -> RoutedProgram {
    let _rebatching = raa_trace::span("route.rebatch");
    let stages = merge_layers(routed.stages, mapping, hw);
    let stats = account(
        &stages,
        mapping,
        hw,
        params,
        num_qubits,
        routed.stats.overlap_rejections,
    );
    RoutedProgram { stages, stats }
}

/// Replayed machine state over a stage schedule: committed line
/// positions, parked flags, and the static atom→line indexes. Mirrors
/// the router's own bookkeeping but is reconstructed purely from the
/// recorded stages, like the validator's replay.
struct Replay<'a> {
    hw: &'a RaaConfig,
    row_pos: Vec<Vec<f64>>,
    col_pos: Vec<Vec<f64>>,
    parked: Vec<bool>,
    atoms_on_line: HashMap<LineKey, Vec<u32>>,
    atoms_in_aod: Vec<Vec<u32>>,
    site_of_slot: &'a [TrapSite],
}

impl<'a> Replay<'a> {
    fn new(mapping: &'a AtomMapping, hw: &'a RaaConfig) -> Self {
        let num_aods = hw.num_aods();
        let mut row_pos = Vec::with_capacity(num_aods);
        let mut col_pos = Vec::with_capacity(num_aods);
        for k in 0..num_aods {
            let dims = hw.dims(ArrayIndex::aod(k));
            let fy = hw.home_y(ArrayIndex::aod(k), 0) / hw.spacing_um;
            let fx = hw.home_x(ArrayIndex::aod(k), 0) / hw.spacing_um;
            row_pos.push((0..dims.rows).map(|r| r as f64 + fy).collect());
            col_pos.push((0..dims.cols).map(|c| c as f64 + fx).collect());
        }
        let mut atoms_on_line: HashMap<LineKey, Vec<u32>> = HashMap::new();
        let mut atoms_in_aod: Vec<Vec<u32>> = vec![Vec::new(); num_aods];
        for (slot, site) in mapping.site_of_slot.iter().enumerate() {
            if !site.array.is_slm() {
                let k = site.array.aod_number() as u8;
                atoms_on_line
                    .entry((k, true, site.row))
                    .or_default()
                    .push(slot as u32);
                atoms_on_line
                    .entry((k, false, site.col))
                    .or_default()
                    .push(slot as u32);
                atoms_in_aod[k as usize].push(slot as u32);
            }
        }
        Replay {
            hw,
            row_pos,
            col_pos,
            parked: vec![false; num_aods],
            atoms_on_line,
            atoms_in_aod,
            site_of_slot: &mapping.site_of_slot,
        }
    }

    fn line(&self, key: LineKey) -> f64 {
        let (k, is_row, i) = key;
        if is_row {
            self.row_pos[k as usize][i as usize]
        } else {
            self.col_pos[k as usize][i as usize]
        }
    }

    fn set_line(&mut self, key: LineKey, value: f64) {
        let (k, is_row, i) = key;
        if is_row {
            self.row_pos[k as usize][i as usize] = value;
        } else {
            self.col_pos[k as usize][i as usize] = value;
        }
    }

    fn pos(&self, slot: u32) -> (f64, f64) {
        let site = self.site_of_slot[slot as usize];
        if site.array.is_slm() {
            (site.row as f64, site.col as f64)
        } else {
            let k = site.array.aod_number();
            (
                self.row_pos[k][site.row as usize],
                self.col_pos[k][site.col as usize],
            )
        }
    }

    fn in_field(&self, slot: u32) -> bool {
        let site = self.site_of_slot[slot as usize];
        site.array.is_slm() || !self.parked[site.array.aod_number()]
    }

    /// Applies one recorded move (or unpark marker).
    fn apply_move(&mut self, mv: &LineMove) {
        if mv.line == u16::MAX {
            self.parked[mv.aod as usize] = false;
        } else {
            self.set_line((mv.aod, mv.axis_row, mv.line), mv.to_track);
            self.parked[mv.aod as usize] = false;
        }
    }

    /// Applies a stage's full state effect (moves, retractions, resets).
    fn apply_stage(&mut self, stage: &Stage) {
        match stage.kind {
            StageKind::Movement => {
                for mv in stage.moves.iter().chain(&stage.retract_moves) {
                    self.apply_move(mv);
                }
            }
            StageKind::Reset => {
                self.apply_reset(&stage.kept_aods);
            }
            StageKind::OneQubit | StageKind::TransferAssisted | StageKind::Cooling => {}
        }
    }

    /// Re-homes every AOD, parking all but `kept` — the state effect of
    /// [`StageKind::Reset`]. Returns which AODs were displaced or
    /// changed park state (the accounting replay charges those).
    fn apply_reset(&mut self, kept: &[u8]) -> Vec<bool> {
        let mut charged = vec![false; self.hw.num_aods()];
        for (k, charge) in charged.iter_mut().enumerate() {
            let keep_this = kept.contains(&(k as u8));
            let mut displaced = false;
            let dims = self.hw.dims(ArrayIndex::aod(k));
            let fy = self.hw.home_y(ArrayIndex::aod(k), 0) / self.hw.spacing_um;
            let fx = self.hw.home_x(ArrayIndex::aod(k), 0) / self.hw.spacing_um;
            for r in 0..dims.rows {
                let home = r as f64 + fy;
                if (self.row_pos[k][r] - home).abs() > 1e-12 {
                    displaced = true;
                }
                self.row_pos[k][r] = home;
            }
            for c in 0..dims.cols {
                let home = c as f64 + fx;
                if (self.col_pos[k][c] - home).abs() > 1e-12 {
                    displaced = true;
                }
                self.col_pos[k][c] = home;
            }
            let park_transition = if keep_this {
                self.parked[k]
            } else {
                !self.parked[k]
            };
            *charge = displaced || park_transition;
            self.parked[k] = !keep_this;
        }
        charged
    }
}

/// One layer being accumulated: the merged stage plus the bookkeeping
/// the compatibility checks need.
struct LayerAcc {
    stage: Stage,
    /// Every atom participating in a layer gate.
    slots: HashSet<u32>,
    /// Pulse-time positions of the layer's retracted lines: at the
    /// merged pulse those lines are still at their gate positions, not
    /// yet at their recorded retraction targets.
    overrides: HashMap<LineKey, f64>,
}

impl LayerAcc {
    fn new(stage: Stage) -> Self {
        let mut acc = LayerAcc {
            stage: Stage::movement(Vec::new(), Vec::new(), Vec::new()),
            slots: HashSet::new(),
            overrides: HashMap::new(),
        };
        acc.absorb(stage);
        acc
    }

    /// Folds one compatible stage into the layer.
    fn absorb(&mut self, stage: Stage) {
        for mv in &stage.retract_moves {
            self.overrides
                .insert((mv.aod, mv.axis_row, mv.line), mv.from_track);
        }
        for &(a, b) in &stage.gate_pairs {
            self.slots.insert(a);
            self.slots.insert(b);
        }
        self.stage.moves.extend(stage.moves);
        self.stage.retract_moves.extend(stage.retract_moves);
        self.stage.gate_pairs.extend(stage.gate_pairs);
    }

    /// Structural compatibility of a follow-up stage: its gates must
    /// touch no atom already pulsed this layer (one pulse may not reuse
    /// an atom), and it must not move or re-retract a line the layer
    /// has already retracted — retracted lines are frozen until the
    /// layer ends, because their recorded retraction runs *after* the
    /// merged pulse and a later move of the same line would falsify the
    /// recorded move origins. Lines the layer merely approached may be
    /// re-moved freely; whether the result is legal is decided by the
    /// geometric merged-pulse check, not here.
    fn compatible_with(&self, stage: &Stage) -> bool {
        stage
            .moves
            .iter()
            .filter(|mv| mv.line != u16::MAX)
            .chain(&stage.retract_moves)
            .all(|mv| !self.overrides.contains_key(&(mv.aod, mv.axis_row, mv.line)))
            && stage
                .gate_pairs
                .iter()
                .all(|&(a, b)| !self.slots.contains(&a) && !self.slots.contains(&b))
    }
}

/// The layer-merging pass over a sequentially planned schedule.
fn merge_layers(stages: Vec<Stage>, mapping: &AtomMapping, hw: &RaaConfig) -> Vec<Stage> {
    let mut replay = Replay::new(mapping, hw);
    let mut out: Vec<Stage> = Vec::with_capacity(stages.len());
    let mut layer: Option<LayerAcc> = None;
    // The last emitted movement stage, while only position-neutral
    // (one-qubit) stages followed it — the candidate for round-trip
    // elision across the boundary. Reset, transfer and cooling stages
    // are barriers, mirroring the ISA cost model's barrier set.
    let mut fusible_prev: Option<usize> = None;

    let flush = |layer: &mut Option<LayerAcc>, out: &mut Vec<Stage>| -> Option<usize> {
        layer.take().map(|acc| {
            out.push(acc.stage);
            out.len() - 1
        })
    };

    for stage in stages {
        match stage.kind {
            StageKind::Movement => {
                if let Some(acc) = layer.as_mut() {
                    if acc.compatible_with(&stage) && merged_pulse_legal(&mut replay, acc, &stage) {
                        MERGED_STAGES.incr();
                        replay.apply_stage(&stage);
                        acc.absorb(stage);
                        continue;
                    }
                }
                if let Some(idx) = flush(&mut layer, &mut out) {
                    fusible_prev = Some(idx);
                }
                let mut stage = stage;
                if let Some(prev) = fusible_prev {
                    elide_round_trips(&mut out[prev], &mut stage, &mut replay);
                }
                replay.apply_stage(&stage);
                layer = Some(LayerAcc::new(stage));
            }
            StageKind::OneQubit => {
                // Position-neutral: the boundary stays fusible.
                if let Some(idx) = flush(&mut layer, &mut out) {
                    fusible_prev = Some(idx);
                }
                out.push(stage);
            }
            StageKind::Reset | StageKind::TransferAssisted | StageKind::Cooling => {
                flush(&mut layer, &mut out);
                fusible_prev = None;
                replay.apply_stage(&stage);
                out.push(stage);
            }
        }
    }
    flush(&mut layer, &mut out);
    out
}

/// Whether folding `stage` into `acc` keeps the merged pulse legal:
/// with `stage`'s approaches applied and the layer's retracted lines
/// back at their pulse positions, the configuration must satisfy the
/// ISA checker's pulse predicates. The replay state is temporarily
/// mutated and restored.
fn merged_pulse_legal(replay: &mut Replay<'_>, acc: &LayerAcc, stage: &Stage) -> bool {
    // Tentatively build the merged-pulse configuration.
    let mut line_undo: Vec<(LineKey, f64)> = Vec::new();
    let mut unparked: Vec<usize> = Vec::new();
    for mv in &stage.moves {
        if mv.line == u16::MAX {
            if replay.parked[mv.aod as usize] {
                replay.parked[mv.aod as usize] = false;
                unparked.push(mv.aod as usize);
            }
        } else {
            let key = (mv.aod, mv.axis_row, mv.line);
            line_undo.push((key, replay.line(key)));
            replay.set_line(key, mv.to_track);
        }
    }
    for (&key, &pos) in &acc.overrides {
        line_undo.push((key, replay.line(key)));
        replay.set_line(key, pos);
    }

    let mut desired: Vec<(u32, u32)> = acc
        .stage
        .gate_pairs
        .iter()
        .chain(&stage.gate_pairs)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    desired.sort_unstable();
    let ok = pulse_config_legal(replay, &desired);

    for (key, old) in line_undo.into_iter().rev() {
        replay.set_line(key, old);
    }
    for k in unparked {
        replay.parked[k] = true;
    }
    ok
}

/// The ISA checker's pulse predicates over the replay's current
/// configuration, delegated to the shared
/// [`raa_isa::opt::cost::pulse_configuration_legal`] predicate — the
/// same one the `parallelize` ISA pass applies post hoc, so the router
/// and the optimizer cannot drift apart on merged-pulse geometry.
fn pulse_config_legal(replay: &Replay<'_>, desired: &[(u32, u32)]) -> bool {
    let axes = replay
        .row_pos
        .iter()
        .chain(&replay.col_pos)
        .map(Vec::as_slice);
    let n = replay.site_of_slot.len() as u32;
    let in_field: Vec<(u32, (f64, f64))> = (0..n)
        .filter(|&s| replay.in_field(s))
        .map(|s| (s, replay.pos(s)))
        .collect();
    raa_isa::opt::cost::pulse_configuration_legal(INTERACT_R, axes, &in_field, desired)
}

/// Round-trip elision across a layer boundary: a retraction of `prev`
/// that `next`'s approach returns exactly to its pre-retraction
/// position (the same pair pulsed again at the same spot — the
/// sequential stream's dominant redundancy) is dropped from both
/// stages. Decided by the optimizer's own
/// [`raa_isa::opt::cost::round_trip_cancels`] predicate; the fuse pass
/// at `-O2` would cancel exactly these, so the layered `-O0` stream
/// simply never emits them. The configuration at `next`'s pulse is
/// unchanged — the line ends at the same position either way — so the
/// elision cannot affect any legality verdict.
fn elide_round_trips(prev: &mut Stage, next: &mut Stage, replay: &mut Replay<'_>) {
    let mut i = 0;
    while i < prev.retract_moves.len() {
        let m1 = prev.retract_moves[i];
        let key = (m1.aod, m1.axis_row, m1.line);
        let undone = next.moves.iter().position(|m2| {
            m2.line != u16::MAX
                && (m2.aod, m2.axis_row, m2.line) == key
                && raa_isa::opt::cost::round_trip_cancels(m1.from_track, m2.to_track)
        });
        if let Some(j) = undone {
            ROUND_TRIPS_ELIDED.incr();
            prev.retract_moves.remove(i);
            next.moves.remove(j);
            // The line never left its pulse position.
            replay.set_line(key, m1.from_track);
        } else {
            i += 1;
        }
    }
}

/// Re-derives [`RouterStats`] by replaying a (possibly merged) stage
/// schedule through a fresh [`MovementLedger`], mirroring the
/// sequential router's accounting rules stage kind by stage kind. A
/// merged layer is one move phase: one `record_move` with the combined
/// per-atom distances and a single `t_move` interval.
fn account(
    stages: &[Stage],
    mapping: &AtomMapping,
    hw: &RaaConfig,
    params: &HardwareParams,
    num_qubits: usize,
    overlap_rejections: usize,
) -> RouterStats {
    let mut replay = Replay::new(mapping, hw);
    let mut ledger = MovementLedger::new(params);
    let spacing = hw.spacing_um;

    let mut exec_time = 0.0f64;
    let mut one_q = 0usize;
    let mut two_q = 0usize;
    let mut one_q_layers = 0usize;
    let mut two_q_stages = 0usize;
    let mut transfers = 0usize;
    let mut total_move_um = 0.0f64;

    for stage in stages {
        match stage.kind {
            StageKind::OneQubit => {
                one_q += stage.one_qubit_gates.len();
                one_q_layers += 1;
                exec_time += params.one_qubit_time_s;
            }
            StageKind::Movement => {
                let mut row_delta: HashMap<u32, f64> = HashMap::new();
                let mut col_delta: HashMap<u32, f64> = HashMap::new();
                for mv in stage.moves.iter().chain(&stage.retract_moves) {
                    if mv.line == u16::MAX {
                        // Unpark: the array travels in from the parking
                        // zone.
                        for &atom in &replay.atoms_in_aod[mv.aod as usize] {
                            row_delta.insert(atom, PARK_TRAVEL);
                        }
                    } else {
                        let key = (mv.aod, mv.axis_row, mv.line);
                        let delta = (mv.to_track - replay.line(key)).abs();
                        if let Some(atoms) = replay.atoms_on_line.get(&key) {
                            let map = if mv.axis_row {
                                &mut row_delta
                            } else {
                                &mut col_delta
                            };
                            for &atom in atoms {
                                *map.entry(atom).or_insert(0.0) += delta;
                            }
                        }
                    }
                    replay.apply_move(mv);
                }
                let mut moved: Vec<(u32, f64)> = Vec::new();
                let all_atoms: HashSet<u32> =
                    row_delta.keys().chain(col_delta.keys()).copied().collect();
                for atom in all_atoms {
                    let dr = row_delta.get(&atom).copied().unwrap_or(0.0);
                    let dc = col_delta.get(&atom).copied().unwrap_or(0.0);
                    let d_um = (dr * dr + dc * dc).sqrt() * spacing;
                    if d_um > 0.0 {
                        moved.push((atom, d_um * 1e-6));
                        total_move_um += d_um;
                    }
                }
                moved.sort_by_key(|&(a, _)| a);
                ledger.record_move(&moved, params.t_move_s, num_qubits);
                exec_time += params.t_move_s + params.two_qubit_time_s;
                two_q_stages += 1;
                for &(a, b) in &stage.gate_pairs {
                    let aod_atoms: Vec<u32> = [a, b]
                        .into_iter()
                        .filter(|&s| !replay.site_of_slot[s as usize].array.is_slm())
                        .collect();
                    ledger.record_two_qubit_gate(&aod_atoms);
                    two_q += 1;
                }
            }
            StageKind::Reset => {
                let charged = replay.apply_reset(&stage.kept_aods);
                let mut moved: Vec<(u32, f64)> = Vec::new();
                for (k, &c) in charged.iter().enumerate() {
                    if c {
                        for &atom in &replay.atoms_in_aod[k] {
                            moved.push((atom, PARK_TRAVEL * spacing * 1e-6));
                        }
                    }
                }
                moved.sort_by_key(|&(a, _)| a);
                total_move_um += moved.len() as f64 * PARK_TRAVEL * spacing;
                ledger.record_move(&moved, params.t_move_s, num_qubits);
                exec_time += params.t_move_s;
            }
            StageKind::TransferAssisted => {
                let (a, b) = stage.gate_pairs[0];
                transfers += 2;
                exec_time += 2.0 * params.t_transfer_s + params.two_qubit_time_s;
                let aod_atoms: Vec<u32> = [a, b]
                    .into_iter()
                    .filter(|&s| !replay.site_of_slot[s as usize].array.is_slm())
                    .collect();
                ledger.record_two_qubit_gate(&aod_atoms);
                two_q += 1;
                two_q_stages += 1;
            }
            StageKind::Cooling => {
                let k = stage.cooled_aod.unwrap_or(0) as usize;
                ledger.cool_array(&replay.atoms_in_aod[k]);
                exec_time += params.t_move_s + 2.0 * params.two_qubit_time_s;
            }
        }
    }

    RouterStats {
        one_qubit_gates: one_q,
        two_qubit_gates: two_q,
        one_qubit_layers: one_q_layers,
        two_qubit_stages: two_q_stages,
        execution_time_s: exec_time,
        total_move_distance_um: total_move_um,
        num_move_stages: ledger.num_stages(),
        cooling_events: ledger.cooling_events(),
        overlap_rejections,
        transfers,
        f_heating: ledger.f_heating(),
        f_loss: ledger.f_loss(),
        f_cooling: ledger.f_cooling(),
        f_decoherence: ledger.f_decoherence(),
        max_n_vib: ledger.max_n_vib(),
    }
}
