//! Lowering of compiled programs to the `raa-isa` instruction stream.
//!
//! The router's stage schedule is an in-memory structure; [`emit_isa`]
//! flattens it into the serializable, independently-verifiable
//! instruction stream of the `raa_isa` crate. The mapping is direct:
//!
//! | Stage kind          | Instructions                                        |
//! |---------------------|-----------------------------------------------------|
//! | `OneQubit`          | one `RamanLayer`                                    |
//! | `Movement`          | `MoveRow`/`MoveCol`/`Unpark`, `RydbergPulse`, then the retraction moves |
//! | `Reset`             | one `Park` keeping the stage's kept AODs            |
//! | `TransferAssisted`  | one `Transfer`                                      |
//! | `Cooling`           | one `Cool`                                          |
//!
//! A `Movement` stage emits exactly one `RydbergPulse` whatever its
//! size, so a layered schedule
//! ([`RouterStrategy::Layered`](crate::RouterStrategy)) lowers each
//! merged layer to one coordinated move/unpark group, a single pulse
//! driving every pair of the layer, and one combined retraction group —
//! no special casing here. `Unpark` markers may sit anywhere in the
//! move group (a later-merged stage's array enters the field mid-group);
//! the checker's machine model handles them positionally.
//!
//! The emitted program embeds the transpiled slot-level circuit as its
//! reference, so `raa_isa::replay_verify` can prove gate-set
//! equivalence without trusting any router bookkeeping.

use raa_arch::{ArrayIndex, RaaConfig};
use raa_isa::{Instr, IsaProgram, ProgramHeader, SiteSpec, FORMAT_VERSION};

use crate::program::{CompiledProgram, LineMove, StageKind};

fn line_move_instr(mv: &LineMove, retract: bool) -> Instr {
    if mv.axis_row {
        Instr::MoveRow {
            aod: mv.aod,
            row: mv.line,
            from: mv.from_track,
            to: mv.to_track,
            retract,
        }
    } else {
        Instr::MoveCol {
            aod: mv.aod,
            col: mv.line,
            from: mv.from_track,
            to: mv.to_track,
            retract,
        }
    }
}

/// Lowers `program` (compiled for `hw`) into an instruction stream
/// named `name`.
///
/// The result carries everything a consumer needs: the machine
/// declaration, the atom loading map, the logical-qubit placement, the
/// reference circuit and the flat stream. Verify it with
/// [`raa_isa::check_legality`] and [`raa_isa::replay_verify`], or let
/// [`compile`](crate::compile) do both via
/// [`AtomiqueConfig::verify_isa`](crate::AtomiqueConfig).
pub fn emit_isa(program: &CompiledProgram, hw: &RaaConfig, name: &str) -> IsaProgram {
    let mut instrs: Vec<Instr> = vec![Instr::InitSlm {
        rows: hw.slm.rows as u16,
        cols: hw.slm.cols as u16,
    }];
    for k in 0..hw.num_aods() {
        let aod = ArrayIndex::aod(k);
        let dims = hw.dims(aod);
        instrs.push(Instr::InitAod {
            aod: k as u8,
            rows: dims.rows as u16,
            cols: dims.cols as u16,
            fx: hw.home_x(aod, 0) / hw.spacing_um,
            fy: hw.home_y(aod, 0) / hw.spacing_um,
        });
    }

    for stage in &program.stages {
        match stage.kind {
            StageKind::OneQubit => {
                instrs.push(Instr::RamanLayer {
                    gates: stage.one_qubit_gates.clone(),
                });
            }
            StageKind::Movement => {
                for mv in &stage.moves {
                    if mv.line == u16::MAX {
                        instrs.push(Instr::Unpark { aod: mv.aod });
                    } else {
                        instrs.push(line_move_instr(mv, false));
                    }
                }
                instrs.push(Instr::RydbergPulse {
                    pairs: stage.gate_pairs.clone(),
                });
                for mv in &stage.retract_moves {
                    instrs.push(line_move_instr(mv, true));
                }
            }
            StageKind::Reset => {
                instrs.push(Instr::Park {
                    kept: stage.kept_aods.clone(),
                });
            }
            StageKind::TransferAssisted => {
                let (a, b) = stage.gate_pairs[0];
                instrs.push(Instr::Transfer { a, b });
            }
            StageKind::Cooling => {
                instrs.push(Instr::Cool {
                    aod: stage.cooled_aod.unwrap_or(0),
                });
            }
        }
    }

    IsaProgram {
        version: FORMAT_VERSION,
        header: ProgramHeader::new("atomique", name)
            .with_physics(hw.spacing_um, hw.rydberg_radius_um),
        slot_of_qubit: program.slot_of_qubit.clone(),
        sites: program
            .mapping
            .site_of_slot
            .iter()
            .map(|s| SiteSpec {
                array: s.array.0,
                row: s.row,
                col: s.col,
            })
            .collect(),
        reference: program.slot_circuit.clone(),
        instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::config::AtomiqueConfig;
    use raa_circuit::{Circuit, Gate, Qubit};
    use raa_isa::{check_legality, replay_verify, IsaStats};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::h(Qubit(0)));
        for i in 0..n as u32 - 1 {
            c.push(Gate::cx(Qubit(i), Qubit(i + 1)));
        }
        c
    }

    #[test]
    fn emitted_stream_passes_the_oracle() {
        let cfg = AtomiqueConfig::default();
        let out = compile(&ghz(10), &cfg).unwrap();
        let isa = emit_isa(&out, &cfg.hardware, "ghz-10");
        check_legality(&isa).unwrap();
        let report = replay_verify(&isa).unwrap();
        assert_eq!(report.two_qubit_gates, out.stats.two_qubit_gates);
        assert_eq!(report.one_qubit_gates, out.stats.one_qubit_gates);
    }

    #[test]
    fn stream_stats_match_router_stats() {
        let cfg = AtomiqueConfig::default();
        let out = compile(&ghz(8), &cfg).unwrap();
        let isa = emit_isa(&out, &cfg.hardware, "ghz-8");
        let stats = IsaStats::of(&isa);
        assert_eq!(stats.two_qubit_gates, out.stats.two_qubit_gates);
        assert_eq!(stats.one_qubit_gates, out.stats.one_qubit_gates);
        assert_eq!(stats.transfers * 2, out.stats.transfers);
        assert_eq!(stats.cools, out.stats.cooling_events);
        // Pulses = stages that fired the Rydberg laser via movement.
        let movement_stages = out
            .stages
            .iter()
            .filter(|s| s.kind == StageKind::Movement)
            .count();
        assert_eq!(stats.pulses, movement_stages);
    }

    #[test]
    fn tampered_stream_fails_the_oracle() {
        let cfg = AtomiqueConfig::default();
        let out = compile(&ghz(6), &cfg).unwrap();
        let mut isa = emit_isa(&out, &cfg.hardware, "ghz-6");
        // Drop one pulsed pair: replay must notice the missing gate.
        let pulse = isa
            .instrs
            .iter_mut()
            .find_map(|i| match i {
                Instr::RydbergPulse { pairs } if !pairs.is_empty() => Some(pairs),
                _ => None,
            })
            .expect("some pulse");
        pulse.pop();
        assert!(replay_verify(&isa).is_err());

        // Shift one in-move: legality must notice the stray pair/atom.
        let mut isa = emit_isa(&out, &cfg.hardware, "ghz-6");
        let mv = isa
            .instrs
            .iter_mut()
            .find_map(|i| match i {
                Instr::MoveRow {
                    to, retract: false, ..
                } => Some(to),
                _ => None,
            })
            .expect("some in-move");
        *mv += 3.0;
        assert!(check_legality(&isa).is_err());
    }
}
