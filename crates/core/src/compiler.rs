//! The full Atomique pipeline (paper Fig. 3): qubit-array mapper →
//! multipartite SWAP insertion → qubit-atom mapper → high-parallelism
//! router → fidelity estimation.

use std::time::Instant;

use raa_circuit::Circuit;
use raa_physics::{gate_phase_fidelity, transfer_fidelity, FidelityBreakdown, GatePhaseStats};

use crate::array_mapper::map_to_arrays;
use crate::atom_mapper::map_to_atoms;
use crate::config::AtomiqueConfig;
use crate::error::CompileError;
use crate::program::{CompileStats, CompiledProgram};
use crate::router::route_movements;
use crate::transpile::transpile;

/// Compiles `circuit` for the configured reconfigurable atom array.
///
/// # Errors
///
/// * [`CompileError::Capacity`] if the circuit exceeds the machine;
/// * [`CompileError::Routing`] if intra-array SWAP insertion fails.
///
/// # Examples
///
/// ```
/// use atomique::{compile, AtomiqueConfig};
/// use raa_circuit::{Circuit, Gate, Qubit};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::h(Qubit(0)));
/// bell.push(Gate::cx(Qubit(0), Qubit(1)));
/// let out = compile(&bell, &AtomiqueConfig::default())?;
/// assert_eq!(out.stats.two_qubit_gates, 1);
/// assert!(out.total_fidelity() > 0.99);
/// # Ok::<(), atomique::CompileError>(())
/// ```
pub fn compile(
    circuit: &Circuit,
    config: &AtomiqueConfig,
) -> Result<CompiledProgram, CompileError> {
    let start = Instant::now();
    let mut timings = crate::program::StageTimings::default();

    // 0. Peephole optimization (the paper preprocesses with Qiskit
    // Optimization Level 3; see raa_circuit::optimize).
    let t = Instant::now();
    let circuit = &raa_circuit::optimize(circuit);
    timings.transpile_s += t.elapsed().as_secs_f64();

    // 1. Qubit-array mapper (Alg. 1).
    let t = Instant::now();
    let array_mapping =
        map_to_arrays(circuit, &config.hardware, config.array_mapper, config.gamma)?;
    timings.map_s += t.elapsed().as_secs_f64();

    // 2. SWAP insertion on the complete multipartite graph (Fig. 5).
    let t = Instant::now();
    let transpiled = transpile(circuit, &array_mapping, &config.sabre)?;
    timings.transpile_s += t.elapsed().as_secs_f64();

    // 3. Qubit-atom mapper (Figs. 6–7).
    let t = Instant::now();
    let atom_mapping = map_to_atoms(
        &transpiled,
        &config.hardware,
        config.atom_mapper,
        config.seed,
    )?;
    timings.map_s += t.elapsed().as_secs_f64();

    // 4. High-parallelism router (Figs. 8–11).
    let t = Instant::now();
    let routed = route_movements(
        &transpiled,
        &atom_mapping,
        &config.hardware,
        &config.params,
        config.relaxation,
        config.router_mode,
        config.router_strategy,
        config.proximity_index,
    )?;
    timings.route_s = t.elapsed().as_secs_f64();

    // 5. Fidelity estimation (Sec. V-A).
    let r = &routed.stats;
    let phase = GatePhaseStats {
        num_qubits: circuit.num_qubits(),
        one_qubit_gates: r.one_qubit_gates,
        two_qubit_gates: r.two_qubit_gates,
        one_qubit_time_s: r.one_qubit_layers as f64 * config.params.one_qubit_time_s,
        two_qubit_time_s: r.two_qubit_stages as f64 * config.params.two_qubit_time_s,
    };
    let (one_qubit, two_qubit) = gate_phase_fidelity(&config.params, &phase);
    let transfer = transfer_fidelity(
        &config.params,
        r.transfers,
        r.transfers as f64 * config.params.t_transfer_s,
        circuit.num_qubits(),
    );
    let fidelity = FidelityBreakdown {
        one_qubit,
        two_qubit,
        transfer,
        move_heating: r.f_heating,
        move_cooling: r.f_cooling,
        move_loss: r.f_loss,
        move_decoherence: r.f_decoherence,
    };

    let stats = CompileStats {
        num_qubits: circuit.num_qubits(),
        two_qubit_gates: r.two_qubit_gates,
        one_qubit_gates: r.one_qubit_gates,
        depth: r.two_qubit_stages,
        swaps_inserted: transpiled.swaps_inserted,
        additional_cnots: transpiled.additional_cnots(),
        execution_time_s: r.execution_time_s,
        total_move_distance_mm: r.total_move_distance_um / 1000.0,
        avg_move_distance_mm: if r.num_move_stages > 0 {
            r.total_move_distance_um / 1000.0 / r.num_move_stages as f64
        } else {
            0.0
        },
        num_move_stages: r.num_move_stages,
        cooling_events: r.cooling_events,
        overlap_rejections: r.overlap_rejections,
        transfers: r.transfers,
        compile_time_s: start.elapsed().as_secs_f64(),
    };
    let mut out = CompiledProgram {
        stages: routed.stages,
        mapping: atom_mapping,
        slot_of_qubit: transpiled.slot_of_qubit.clone(),
        slot_circuit: transpiled.circuit,
        stats,
        fidelity,
        isa: None,
        timings: crate::program::StageTimings::default(),
    };

    // 6. Opt-in ISA lowering, optimization and independent verification.
    if config.emit_isa || config.verify_isa {
        let t = Instant::now();
        let mut isa = crate::lower::emit_isa(&out, &config.hardware, "");
        timings.lower_s = t.elapsed().as_secs_f64();
        // Optimize only when the stream is attached (emit_isa): with
        // verify_isa alone the optimized result would be discarded and
        // the fixpoint run would be pure wasted compile time.
        if config.emit_isa && config.opt_level != raa_isa::OptLevel::None {
            // The optimizer is verified internally (every pass re-runs
            // the oracle and unsafe rewrites are refused), so this can
            // only shrink the stream, never corrupt it.
            let t = Instant::now();
            isa = raa_isa::optimize(&isa, config.opt_level).0;
            timings.opt_s = t.elapsed().as_secs_f64();
        }
        if config.verify_isa {
            let t = Instant::now();
            raa_isa::check_legality(&isa).map_err(CompileError::IsaLegality)?;
            raa_isa::replay_verify(&isa).map_err(CompileError::IsaReplay)?;
            timings.verify_s = t.elapsed().as_secs_f64();
        }
        if config.emit_isa {
            out.isa = Some(isa);
        }
    }
    out.stats.compile_time_s = start.elapsed().as_secs_f64();
    out.timings = timings;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArrayMapperKind, AtomMapperKind, RouterMode};
    use raa_arch::{ArrayDims, RaaConfig};
    use raa_circuit::{Gate, Qubit};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            if rng.random::<f64>() < 0.3 {
                c.push(Gate::rz(Qubit(a), 0.3));
            } else {
                c.push(Gate::cz(Qubit(a), Qubit(b)));
            }
        }
        c
    }

    #[test]
    fn compiles_bell_pair() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        assert_eq!(out.stats.two_qubit_gates, 1);
        assert_eq!(out.stats.depth, 1);
        assert!(out.total_fidelity() > 0.99);
        assert!(out.stats.compile_time_s >= 0.0);
    }

    #[test]
    fn compiles_random_20q() {
        let c = random_circuit(20, 100, 1);
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        // Every optimized logical CZ plus 3 per swap.
        let logical_2q = raa_circuit::optimize(&c)
            .decompose_to(raa_circuit::NativeGateSet::Cz)
            .two_qubit_count();
        assert_eq!(
            out.stats.two_qubit_gates,
            logical_2q + 3 * out.stats.swaps_inserted
        );
        assert_eq!(out.stats.additional_cnots, 3 * out.stats.swaps_inserted);
        assert!(out.stats.depth >= 1);
        assert!(out.total_fidelity() > 0.0 && out.total_fidelity() <= 1.0);
    }

    #[test]
    fn rejects_oversized_circuit() {
        let c = Circuit::new(400);
        assert!(matches!(
            compile(&c, &AtomiqueConfig::default()),
            Err(CompileError::Capacity { .. })
        ));
    }

    #[test]
    fn small_hardware_works() {
        let hw = RaaConfig::new(
            ArrayDims::new(3, 3),
            vec![ArrayDims::new(3, 3), ArrayDims::new(3, 3)],
        )
        .unwrap();
        let c = random_circuit(12, 40, 2);
        let out = compile(&c, &AtomiqueConfig::for_hardware(hw)).unwrap();
        assert!(out.stats.two_qubit_gates >= c.two_qubit_count());
    }

    #[test]
    fn parallel_router_no_deeper_than_serial() {
        let c = random_circuit(16, 60, 3);
        let cfg = AtomiqueConfig::default();
        let par = compile(&c, &cfg).unwrap();
        let ser = compile(
            &c,
            &AtomiqueConfig {
                router_mode: RouterMode::Serial,
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        assert!(par.stats.depth <= ser.stats.depth);
        assert_eq!(par.stats.two_qubit_gates, ser.stats.two_qubit_gates);
    }

    #[test]
    fn max_k_cut_no_more_swaps_than_dense() {
        let c = random_circuit(24, 120, 4);
        let smart = compile(&c, &AtomiqueConfig::default()).unwrap();
        let dense = compile(
            &c,
            &AtomiqueConfig {
                array_mapper: ArrayMapperKind::Dense,
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        assert!(
            smart.stats.swaps_inserted <= dense.stats.swaps_inserted,
            "max-k-cut {} swaps vs dense {}",
            smart.stats.swaps_inserted,
            dense.stats.swaps_inserted
        );
    }

    #[test]
    fn load_balance_fidelity_at_least_random() {
        let c = random_circuit(20, 80, 5);
        let lb = compile(&c, &AtomiqueConfig::default()).unwrap();
        let rnd = compile(
            &c,
            &AtomiqueConfig {
                atom_mapper: AtomMapperKind::Random,
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        // Same gate counts; load balance should not be worse on depth by
        // more than a small factor (it is a heuristic, so allow slack).
        assert_eq!(lb.stats.two_qubit_gates, rnd.stats.two_qubit_gates);
        assert!(lb.stats.depth as f64 <= rnd.stats.depth as f64 * 1.5 + 5.0);
    }

    #[test]
    fn deterministic_compilation() {
        let c = random_circuit(15, 50, 6);
        let cfg = AtomiqueConfig::default();
        let a = compile(&c, &cfg).unwrap();
        let b = compile(&c, &cfg).unwrap();
        assert_eq!(a.stats.two_qubit_gates, b.stats.two_qubit_gates);
        assert_eq!(a.stats.depth, b.stats.depth);
        assert!((a.total_fidelity() - b.total_fidelity()).abs() < 1e-12);
    }

    #[test]
    fn opt_level_shrinks_the_attached_stream() {
        let c = random_circuit(14, 60, 7);
        let base = AtomiqueConfig {
            emit_isa: true,
            verify_isa: true,
            ..AtomiqueConfig::default()
        };
        let opt = AtomiqueConfig {
            opt_level: raa_isa::OptLevel::Aggressive,
            ..base.clone()
        };
        let plain = compile(&c, &base).unwrap().isa.unwrap();
        let optimized = compile(&c, &opt).unwrap().isa.unwrap();
        let before = raa_isa::IsaStats::of(&plain);
        let after = raa_isa::IsaStats::of(&optimized);
        assert!(after.instructions < before.instructions);
        assert!(after.line_travel_tracks <= before.line_travel_tracks + 1e-9);
        // verify_isa already ran the oracle on the optimized stream
        // inside compile; gate content is intact.
        assert_eq!(after.two_qubit_gates, before.two_qubit_gates);
        assert_eq!(after.one_qubit_gates, before.one_qubit_gates);
    }

    #[test]
    fn empty_circuit_compiles() {
        let c = Circuit::new(5);
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        assert_eq!(out.stats.two_qubit_gates, 0);
        assert_eq!(out.stats.depth, 0);
        assert!((out.total_fidelity() - 1.0).abs() < 1e-12);
    }
}
