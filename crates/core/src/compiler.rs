//! The full Atomique pipeline (paper Fig. 3): qubit-array mapper →
//! multipartite SWAP insertion → qubit-atom mapper → high-parallelism
//! router → fidelity estimation.
//!
//! Timing comes exclusively from `raa-trace` spans: every stage runs
//! under a named span and both `CompileStats::compile_time_s` and
//! `StageTimings` are read back off the span tree, so the trace, the
//! timings struct and the total can never disagree (the pre-trace
//! implementation kept two independent `Instant::now` ladders that
//! could).

use std::time::Instant;

use raa_circuit::Circuit;
use raa_physics::{gate_phase_fidelity, transfer_fidelity, FidelityBreakdown, GatePhaseStats};
use raa_trace::{Counter, Level};

use crate::array_mapper::map_to_arrays_with;
use crate::atom_mapper::map_to_atoms;
use crate::config::AtomiqueConfig;
use crate::error::CompileError;
use crate::program::{CompileReport, CompileStats, CompiledProgram};
use crate::router::route_movements;
use crate::transpile::transpile_with;

/// Detail-level telemetry: faults injected into compile stage gates by
/// an armed `raa-fault` schedule (always 0 in production).
static FAULT_INJECTED: Counter = Counter::new("compile.fault.injected");

/// Caller-imposed resource limits for one compile.
///
/// Deliberately *not* part of [`AtomiqueConfig`]: limits shape when a
/// compile is allowed to finish, never what it produces, so they must
/// stay out of the config fingerprint that keys the serve cache —
/// otherwise two requests for the same artifact with different
/// deadlines would compile twice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileLimits {
    /// Absolute wall-clock deadline. Checked at stage boundaries (the
    /// granularity at which partial work can be abandoned cleanly);
    /// once passed, the compile returns [`CompileError::Deadline`]
    /// naming the stage where the overrun was observed.
    pub deadline: Option<Instant>,
}

impl CompileLimits {
    /// No limits: the compile runs to completion.
    pub const fn none() -> CompileLimits {
        CompileLimits { deadline: None }
    }
}

/// Stage-boundary gate: evaluates the stage's `raa-fault` point, then
/// the caller deadline. With no schedule armed and no deadline set this
/// is one relaxed atomic load and a `None` check.
fn stage_gate(stage: &'static str, limits: &CompileLimits) -> Result<(), CompileError> {
    let point = match stage {
        "transpile" => "compile.transpile",
        "map" => "compile.map",
        "route" => "compile.route",
        "lower" => "compile.lower",
        "opt" => "compile.opt",
        _ => "compile.verify",
    };
    match raa_fault::evaluate(point) {
        raa_fault::Action::None => {}
        raa_fault::Action::Delay(d) => {
            FAULT_INJECTED.incr();
            std::thread::sleep(d);
        }
        raa_fault::Action::Error => {
            FAULT_INJECTED.incr();
            return Err(CompileError::Injected { point });
        }
        raa_fault::Action::Panic => {
            FAULT_INJECTED.incr();
            panic!("injected fault at {point}");
        }
        raa_fault::Action::Deadline => {
            FAULT_INJECTED.incr();
            return Err(CompileError::Deadline { stage });
        }
    }
    if let Some(deadline) = limits.deadline {
        if Instant::now() >= deadline {
            return Err(CompileError::Deadline { stage });
        }
    }
    Ok(())
}

/// Compiles `circuit` for the configured reconfigurable atom array.
///
/// # Errors
///
/// * [`CompileError::Capacity`] if the circuit exceeds the machine;
/// * [`CompileError::Routing`] if intra-array SWAP insertion fails.
///
/// # Examples
///
/// ```
/// use atomique::{compile, AtomiqueConfig};
/// use raa_circuit::{Circuit, Gate, Qubit};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::h(Qubit(0)));
/// bell.push(Gate::cx(Qubit(0), Qubit(1)));
/// let out = compile(&bell, &AtomiqueConfig::default())?;
/// assert_eq!(out.stats.two_qubit_gates, 1);
/// assert!(out.total_fidelity() > 0.99);
/// # Ok::<(), atomique::CompileError>(())
/// ```
pub fn compile(
    circuit: &Circuit,
    config: &AtomiqueConfig,
) -> Result<CompiledProgram, CompileError> {
    compile_with_limits(circuit, config, CompileLimits::none())
}

/// [`compile`] under caller-imposed [`CompileLimits`].
///
/// The deadline is enforced at stage boundaries: the pipeline finishes
/// the stage it is in, checks the clock, and aborts with
/// [`CompileError::Deadline`] if the deadline has passed. A compile
/// that completes within its deadline is bit-identical to an unlimited
/// one — limits never change what is produced, only whether.
///
/// # Errors
///
/// Everything [`compile`] can return, plus [`CompileError::Deadline`]
/// on overrun and [`CompileError::Injected`] when an armed `raa-fault`
/// schedule fires at a `compile.<stage>` point.
pub fn compile_with_limits(
    circuit: &Circuit,
    config: &AtomiqueConfig,
    limits: CompileLimits,
) -> Result<CompiledProgram, CompileError> {
    // Record into the caller's raa-trace session when one is active
    // (the scaling bench owns one session across a whole suite, so all
    // its compiles share a clock); otherwise run a session of our own.
    let owns_session = !raa_trace::active();
    if owns_session {
        let level = if config.trace {
            Level::Detail
        } else {
            Level::Stages
        };
        raa_trace::begin(level);
    }
    let mark = raa_trace::mark();
    let result = compile_under_trace(circuit, config, &limits);
    let trace = if owns_session {
        raa_trace::end()
    } else {
        raa_trace::report_since(&mark)
    };
    let report = CompileReport { trace };
    result.map(|mut out| {
        out.stats.compile_time_s = report.total_s();
        out.timings = report.stage_timings();
        out.report = report;
        out
    })
}

/// The pipeline body; every stage runs under its span, and the caller
/// derives all timing from the resulting tree.
fn compile_under_trace(
    circuit: &Circuit,
    config: &AtomiqueConfig,
    limits: &CompileLimits,
) -> Result<CompiledProgram, CompileError> {
    let _compile_span = raa_trace::span_at("compile", Level::Stages);

    // The intra-compile work-pool. `threads = 1` (the default) keeps
    // every stage on its original sequential code path; larger counts
    // fan out the independent per-item work inside transpile, map,
    // opt and verify while producing bit-identical output (see
    // docs/PARALLELISM.md).
    let pool = raa_par::WorkPool::new(config.threads);

    // 0. Peephole optimization (the paper preprocesses with Qiskit
    // Optimization Level 3; see raa_circuit::optimize).
    let circuit = &{
        let _s = raa_trace::span_at("transpile", Level::Stages);
        raa_circuit::optimize(circuit)
    };

    // 1. Qubit-array mapper (Alg. 1).
    let array_mapping = {
        let _s = raa_trace::span_at("map", Level::Stages);
        map_to_arrays_with(
            circuit,
            &config.hardware,
            config.array_mapper,
            config.gamma,
            config.transpile_index,
            &pool,
        )?
    };

    // 2. SWAP insertion on the complete multipartite graph (Fig. 5).
    let transpiled = {
        let _s = raa_trace::span_at("transpile", Level::Stages);
        transpile_with(
            circuit,
            &array_mapping,
            &config.sabre,
            config.transpile_index,
            &pool,
        )?
    };
    stage_gate("transpile", limits)?;

    // 3. Qubit-atom mapper (Figs. 6–7).
    let atom_mapping = {
        let _s = raa_trace::span_at("map", Level::Stages);
        map_to_atoms(
            &transpiled,
            &config.hardware,
            config.atom_mapper,
            config.seed,
        )?
    };
    stage_gate("map", limits)?;

    // 4. High-parallelism router (Figs. 8–11).
    let routed = {
        let _s = raa_trace::span_at("route", Level::Stages);
        route_movements(
            &transpiled,
            &atom_mapping,
            &config.hardware,
            &config.params,
            config.relaxation,
            config.router_mode,
            config.router_strategy,
            config.proximity_index,
        )?
    };
    stage_gate("route", limits)?;

    // 5. Fidelity estimation (Sec. V-A).
    let finalize_span = raa_trace::span_at("finalize", Level::Stages);
    let r = &routed.stats;
    let phase = GatePhaseStats {
        num_qubits: circuit.num_qubits(),
        one_qubit_gates: r.one_qubit_gates,
        two_qubit_gates: r.two_qubit_gates,
        one_qubit_time_s: r.one_qubit_layers as f64 * config.params.one_qubit_time_s,
        two_qubit_time_s: r.two_qubit_stages as f64 * config.params.two_qubit_time_s,
    };
    let (one_qubit, two_qubit) = gate_phase_fidelity(&config.params, &phase);
    let transfer = transfer_fidelity(
        &config.params,
        r.transfers,
        r.transfers as f64 * config.params.t_transfer_s,
        circuit.num_qubits(),
    );
    let fidelity = FidelityBreakdown {
        one_qubit,
        two_qubit,
        transfer,
        move_heating: r.f_heating,
        move_cooling: r.f_cooling,
        move_loss: r.f_loss,
        move_decoherence: r.f_decoherence,
    };

    let stats = CompileStats {
        num_qubits: circuit.num_qubits(),
        two_qubit_gates: r.two_qubit_gates,
        one_qubit_gates: r.one_qubit_gates,
        depth: r.two_qubit_stages,
        swaps_inserted: transpiled.swaps_inserted,
        additional_cnots: transpiled.additional_cnots(),
        execution_time_s: r.execution_time_s,
        total_move_distance_mm: r.total_move_distance_um / 1000.0,
        avg_move_distance_mm: if r.num_move_stages > 0 {
            r.total_move_distance_um / 1000.0 / r.num_move_stages as f64
        } else {
            0.0
        },
        num_move_stages: r.num_move_stages,
        cooling_events: r.cooling_events,
        overlap_rejections: r.overlap_rejections,
        transfers: r.transfers,
        // Filled in by `compile` from the root span once it closes.
        compile_time_s: 0.0,
    };
    let mut out = CompiledProgram {
        stages: routed.stages,
        mapping: atom_mapping,
        slot_of_qubit: transpiled.slot_of_qubit.clone(),
        slot_circuit: transpiled.circuit,
        stats,
        fidelity,
        isa: None,
        timings: crate::program::StageTimings::default(),
        report: CompileReport::default(),
    };
    drop(finalize_span);

    // 6. Opt-in ISA lowering, optimization and independent verification.
    if config.emit_isa || config.verify_isa {
        let mut isa = {
            let _s = raa_trace::span_at("lower", Level::Stages);
            crate::lower::emit_isa(&out, &config.hardware, "")
        };
        stage_gate("lower", limits)?;
        // Optimize only when the stream is attached (emit_isa): with
        // verify_isa alone the optimized result would be discarded and
        // the fixpoint run would be pure wasted compile time.
        if config.emit_isa && config.opt_level != raa_isa::OptLevel::None {
            // The optimizer is verified internally (every pass re-runs
            // the oracle and unsafe rewrites are refused), so this can
            // only shrink the stream, never corrupt it.
            let _s = raa_trace::span_at("opt", Level::Stages);
            isa = raa_isa::optimize_pooled(
                &isa,
                config.opt_level,
                raa_isa::VerifyStrategy::default(),
                &pool,
            )
            .0;
            stage_gate("opt", limits)?;
        }
        if config.verify_isa {
            let _s = raa_trace::span_at("verify", Level::Stages);
            raa_isa::check_legality_with(&isa, raa_isa::CheckMode::default(), pool)
                .map_err(CompileError::IsaLegality)?;
            raa_isa::replay_verify(&isa).map_err(CompileError::IsaReplay)?;
            drop(_s);
            stage_gate("verify", limits)?;
        }
        if config.emit_isa {
            out.isa = Some(isa);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArrayMapperKind, AtomMapperKind, RouterMode};
    use raa_arch::{ArrayDims, RaaConfig};
    use raa_circuit::{Gate, Qubit};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            if rng.random::<f64>() < 0.3 {
                c.push(Gate::rz(Qubit(a), 0.3));
            } else {
                c.push(Gate::cz(Qubit(a), Qubit(b)));
            }
        }
        c
    }

    #[test]
    fn compiles_bell_pair() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cx(Qubit(0), Qubit(1)));
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        assert_eq!(out.stats.two_qubit_gates, 1);
        assert_eq!(out.stats.depth, 1);
        assert!(out.total_fidelity() > 0.99);
        assert!(out.stats.compile_time_s >= 0.0);
    }

    #[test]
    fn compiles_random_20q() {
        let c = random_circuit(20, 100, 1);
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        // Every optimized logical CZ plus 3 per swap.
        let logical_2q = raa_circuit::optimize(&c)
            .decompose_to(raa_circuit::NativeGateSet::Cz)
            .two_qubit_count();
        assert_eq!(
            out.stats.two_qubit_gates,
            logical_2q + 3 * out.stats.swaps_inserted
        );
        assert_eq!(out.stats.additional_cnots, 3 * out.stats.swaps_inserted);
        assert!(out.stats.depth >= 1);
        assert!(out.total_fidelity() > 0.0 && out.total_fidelity() <= 1.0);
    }

    #[test]
    fn rejects_oversized_circuit() {
        let c = Circuit::new(400);
        assert!(matches!(
            compile(&c, &AtomiqueConfig::default()),
            Err(CompileError::Capacity { .. })
        ));
    }

    #[test]
    fn small_hardware_works() {
        let hw = RaaConfig::new(
            ArrayDims::new(3, 3),
            vec![ArrayDims::new(3, 3), ArrayDims::new(3, 3)],
        )
        .unwrap();
        let c = random_circuit(12, 40, 2);
        let out = compile(&c, &AtomiqueConfig::for_hardware(hw)).unwrap();
        assert!(out.stats.two_qubit_gates >= c.two_qubit_count());
    }

    #[test]
    fn parallel_router_no_deeper_than_serial() {
        let c = random_circuit(16, 60, 3);
        let cfg = AtomiqueConfig::default();
        let par = compile(&c, &cfg).unwrap();
        let ser = compile(
            &c,
            &AtomiqueConfig {
                router_mode: RouterMode::Serial,
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        assert!(par.stats.depth <= ser.stats.depth);
        assert_eq!(par.stats.two_qubit_gates, ser.stats.two_qubit_gates);
    }

    #[test]
    fn max_k_cut_no_more_swaps_than_dense() {
        let c = random_circuit(24, 120, 4);
        let smart = compile(&c, &AtomiqueConfig::default()).unwrap();
        let dense = compile(
            &c,
            &AtomiqueConfig {
                array_mapper: ArrayMapperKind::Dense,
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        assert!(
            smart.stats.swaps_inserted <= dense.stats.swaps_inserted,
            "max-k-cut {} swaps vs dense {}",
            smart.stats.swaps_inserted,
            dense.stats.swaps_inserted
        );
    }

    #[test]
    fn load_balance_fidelity_at_least_random() {
        let c = random_circuit(20, 80, 5);
        let lb = compile(&c, &AtomiqueConfig::default()).unwrap();
        let rnd = compile(
            &c,
            &AtomiqueConfig {
                atom_mapper: AtomMapperKind::Random,
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        // Same gate counts; load balance should not be worse on depth by
        // more than a small factor (it is a heuristic, so allow slack).
        assert_eq!(lb.stats.two_qubit_gates, rnd.stats.two_qubit_gates);
        assert!(lb.stats.depth as f64 <= rnd.stats.depth as f64 * 1.5 + 5.0);
    }

    #[test]
    fn deterministic_compilation() {
        let c = random_circuit(15, 50, 6);
        let cfg = AtomiqueConfig::default();
        let a = compile(&c, &cfg).unwrap();
        let b = compile(&c, &cfg).unwrap();
        assert_eq!(a.stats.two_qubit_gates, b.stats.two_qubit_gates);
        assert_eq!(a.stats.depth, b.stats.depth);
        assert!((a.total_fidelity() - b.total_fidelity()).abs() < 1e-12);
    }

    #[test]
    fn opt_level_shrinks_the_attached_stream() {
        let c = random_circuit(14, 60, 7);
        let base = AtomiqueConfig {
            emit_isa: true,
            verify_isa: true,
            ..AtomiqueConfig::default()
        };
        let opt = AtomiqueConfig {
            opt_level: raa_isa::OptLevel::Aggressive,
            ..base.clone()
        };
        let plain = compile(&c, &base).unwrap().isa.unwrap();
        let optimized = compile(&c, &opt).unwrap().isa.unwrap();
        let before = raa_isa::IsaStats::of(&plain);
        let after = raa_isa::IsaStats::of(&optimized);
        assert!(after.instructions < before.instructions);
        assert!(after.line_travel_tracks <= before.line_travel_tracks + 1e-9);
        // verify_isa already ran the oracle on the optimized stream
        // inside compile; gate content is intact.
        assert_eq!(after.two_qubit_gates, before.two_qubit_gates);
        assert_eq!(after.one_qubit_gates, before.one_qubit_gates);
    }

    #[test]
    fn empty_circuit_compiles() {
        let c = Circuit::new(5);
        let out = compile(&c, &AtomiqueConfig::default()).unwrap();
        assert_eq!(out.stats.two_qubit_gates, 0);
        assert_eq!(out.stats.depth, 0);
        assert!((out.total_fidelity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stage_spans_sum_to_compile_total() {
        let c = random_circuit(20, 100, 8);
        let cfg = AtomiqueConfig {
            emit_isa: true,
            verify_isa: true,
            opt_level: raa_isa::OptLevel::Aggressive,
            ..AtomiqueConfig::default()
        };
        let out = compile(&c, &cfg).unwrap();
        // One source of truth: the struct is exactly the tree-derived
        // view, and the total is exactly the root span.
        assert_eq!(out.timings, out.report.stage_timings());
        assert!((out.stats.compile_time_s - out.report.total_s()).abs() < 1e-12);
        for stage in ["lower", "opt", "verify"] {
            assert!(out.report.trace.find(stage).is_some(), "missing {stage}");
        }
        // The stage spans (plus the finalize glue span) tile the root:
        // their sum reaches the total to within epsilon. This is the
        // property the old double-Instant ladders could violate.
        let attributed = out.timings.sum_s() + out.report.trace.span_total_s("finalize");
        let total = out.stats.compile_time_s;
        assert!(attributed <= total + 1e-9);
        let eps = (total * 0.05).max(0.010);
        assert!(
            total - attributed < eps,
            "unattributed {:.6}s exceeds epsilon {:.6}s",
            total - attributed,
            eps
        );
    }

    #[test]
    fn detail_trace_attaches_counters() {
        let c = random_circuit(15, 50, 9);
        let traced = compile(
            &c,
            &AtomiqueConfig {
                trace: true,
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        // The default router runs on the spatial grid, so detail mode
        // must have seen queries.
        assert!(traced.report.counter("grid.query") > 0);
        // Stage-level (default) mode records spans but no counters.
        let plain = compile(&c, &AtomiqueConfig::default()).unwrap();
        assert!(plain.report.counters().is_empty());
        assert!(plain.report.root().is_some());
        assert_eq!(plain.timings, plain.report.stage_timings());
    }

    #[test]
    fn expired_deadline_aborts_at_the_first_stage_boundary() {
        let c = random_circuit(10, 30, 11);
        let limits = CompileLimits {
            deadline: Some(Instant::now()),
        };
        match compile_with_limits(&c, &AtomiqueConfig::default(), limits) {
            Err(CompileError::Deadline { stage }) => assert_eq!(stage, "transpile"),
            other => panic!("expected a deadline overrun, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let c = random_circuit(12, 40, 12);
        let cfg = AtomiqueConfig {
            emit_isa: true,
            verify_isa: true,
            ..AtomiqueConfig::default()
        };
        let limits = CompileLimits {
            deadline: Some(Instant::now() + std::time::Duration::from_secs(3600)),
        };
        let plain = compile(&c, &cfg).unwrap();
        let limited = compile_with_limits(&c, &cfg, limits).unwrap();
        assert_eq!(
            raa_isa::codec::to_bytes(plain.isa.as_ref().unwrap()),
            raa_isa::codec::to_bytes(limited.isa.as_ref().unwrap()),
        );
    }

    #[test]
    fn compile_records_into_an_enclosing_session() {
        let c = random_circuit(10, 30, 10);
        raa_trace::begin(raa_trace::Level::Detail);
        let first = compile(&c, &AtomiqueConfig::default()).unwrap();
        let second = compile(&c, &AtomiqueConfig::default()).unwrap();
        let outer = raa_trace::end();
        // Each call extracted only its own window...
        assert!(first.report.counter("grid.query") > 0);
        assert_eq!(
            first.report.counter("grid.query"),
            second.report.counter("grid.query"),
            "deterministic compile, identical windows"
        );
        // ...while the enclosing session kept both compiles on one clock.
        assert_eq!(outer.spans.len(), 2);
        assert_eq!(
            outer.counter("grid.query"),
            first.report.counter("grid.query") + second.report.counter("grid.query")
        );
        // The second window's offsets are relative to the outer session,
        // strictly after the first's.
        assert!(second.report.root().unwrap().start_ns > first.report.root().unwrap().start_ns);
    }
}
