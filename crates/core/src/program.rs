//! Compiled-program representation: the movement/gate schedule the router
//! emits, plus aggregate statistics and the fidelity estimate.

use raa_circuit::Gate;
use raa_physics::FidelityBreakdown;

use crate::atom_mapper::AtomMapping;

/// What one stage of the schedule does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// A layer of simultaneous one-qubit (Raman) gates.
    OneQubit,
    /// AOD movement followed by a global Rydberg pulse.
    Movement,
    /// Reset fallback: AOD arrays park / return home, no gates.
    Reset,
    /// A gate executed by re-grabbing an atom (two SLM↔AOD transfers).
    TransferAssisted,
    /// An AOD array is swapped with a pre-cooled spare.
    Cooling,
}

/// One row/column movement within a stage. For unpark events the line is
/// `u16::MAX` and the track coordinates are NaN.
#[derive(Debug, Clone, Copy)]
pub struct LineMove {
    /// Which AOD (0-based).
    pub aod: u8,
    /// `true` for a row (y) move, `false` for a column (x) move.
    pub axis_row: bool,
    /// Row/column index within the AOD.
    pub line: u16,
    /// Position before the move, in track units.
    pub from_track: f64,
    /// Position after the move, in track units.
    pub to_track: f64,
}

/// One step of the compiled schedule.
#[derive(Debug, Clone)]
pub struct Stage {
    /// The stage kind.
    pub kind: StageKind,
    /// Row/column moves performed before the Rydberg pulse (empty for
    /// one-qubit layers).
    pub moves: Vec<LineMove>,
    /// Retraction moves after the pulse: gate atoms step back out of the
    /// Rydberg radius so the next pulse does not re-execute the pair.
    pub retract_moves: Vec<LineMove>,
    /// Two-qubit gates executed, as slot pairs.
    pub gate_pairs: Vec<(u32, u32)>,
    /// One-qubit gates executed (only for [`StageKind::OneQubit`]).
    pub one_qubit_gates: Vec<Gate>,
    /// The cooled AOD (only for [`StageKind::Cooling`]).
    pub cooled_aod: Option<u8>,
    /// For [`StageKind::Reset`]: the AODs kept in the field (all others
    /// park).
    pub kept_aods: Vec<u8>,
}

impl Stage {
    fn empty(kind: StageKind) -> Self {
        Stage {
            kind,
            moves: Vec::new(),
            retract_moves: Vec::new(),
            gate_pairs: Vec::new(),
            one_qubit_gates: Vec::new(),
            cooled_aod: None,
            kept_aods: Vec::new(),
        }
    }

    /// A one-qubit layer.
    pub fn one_qubit(gates: Vec<Gate>) -> Self {
        Stage {
            one_qubit_gates: gates,
            ..Stage::empty(StageKind::OneQubit)
        }
    }

    /// A movement stage executing `gate_pairs` after `moves`, with the
    /// post-pulse `retract_moves`.
    pub fn movement(
        moves: Vec<LineMove>,
        retract_moves: Vec<LineMove>,
        gate_pairs: Vec<(u32, u32)>,
    ) -> Self {
        Stage {
            moves,
            retract_moves,
            gate_pairs,
            ..Stage::empty(StageKind::Movement)
        }
    }

    /// A reset (re-homing/parking) stage keeping `kept_aods` in the field.
    pub fn reset(kept_aods: Vec<u8>) -> Self {
        Stage {
            kept_aods,
            ..Stage::empty(StageKind::Reset)
        }
    }

    /// A transfer-assisted gate between two slots.
    pub fn transfer_assisted(a: u32, b: u32) -> Self {
        Stage {
            gate_pairs: vec![(a, b)],
            ..Stage::empty(StageKind::TransferAssisted)
        }
    }

    /// A cooling stage for AOD `k`.
    pub fn cooling(k: u8) -> Self {
        Stage {
            cooled_aod: Some(k),
            ..Stage::empty(StageKind::Cooling)
        }
    }
}

/// Aggregate counters produced by the movement router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterStats {
    /// One-qubit gates executed.
    pub one_qubit_gates: usize,
    /// Two-qubit (CZ) gates executed, including SWAP decompositions.
    pub two_qubit_gates: usize,
    /// Number of parallel one-qubit layers.
    pub one_qubit_layers: usize,
    /// Number of stages that executed ≥ 1 two-qubit gate — the paper's
    /// depth metric for RAA.
    pub two_qubit_stages: usize,
    /// Estimated wall-clock execution time, seconds.
    pub execution_time_s: f64,
    /// Total distance moved by all atoms, µm.
    pub total_move_distance_um: f64,
    /// Number of movement stages recorded by the physics ledger.
    pub num_move_stages: usize,
    /// Cooling procedures performed.
    pub cooling_events: usize,
    /// Gates rejected because rows/columns would overlap (Fig. 24).
    pub overlap_rejections: usize,
    /// SLM↔AOD transfers performed (fallback path only).
    pub transfers: usize,
    /// Movement-heating fidelity factor.
    pub f_heating: f64,
    /// Movement atom-loss fidelity factor.
    pub f_loss: f64,
    /// Cooling-overhead fidelity factor.
    pub f_cooling: f64,
    /// Movement-decoherence fidelity factor.
    pub f_decoherence: f64,
    /// Hottest vibrational quantum number reached.
    pub max_n_vib: f64,
}

/// Wall-clock breakdown of one [`compile`](crate::compile) call,
/// seconds per pipeline stage. Derived from the compile's trace span
/// tree ([`CompileReport::stage_timings`]); sums to slightly less than
/// [`CompileStats::compile_time_s`] (inter-stage glue — fidelity
/// estimation, stats assembly — is accounted by the `finalize` span
/// rather than any of these fields).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Peephole optimization + multipartite SABRE SWAP insertion.
    pub transpile_s: f64,
    /// Qubit-array mapping (MAX k-Cut) + qubit-atom mapping.
    pub map_s: f64,
    /// The high-parallelism movement router.
    pub route_s: f64,
    /// Lowering the routed schedule to the `raa-isa` stream
    /// (0 unless `emit_isa`/`verify_isa` is set).
    pub lower_s: f64,
    /// ISA optimization (0 unless `opt_level` > `None` with `emit_isa`).
    pub opt_s: f64,
    /// The independent ISA oracle — `check_legality` + `replay_verify`
    /// (0 unless `verify_isa` is set).
    pub verify_s: f64,
}

impl StageTimings {
    /// Sum of every attributed stage, seconds.
    pub fn sum_s(&self) -> f64 {
        self.transpile_s + self.map_s + self.route_s + self.lower_s + self.opt_s + self.verify_s
    }
}

/// The `raa-trace` record of one [`compile`](crate::compile) call: the
/// span tree rooted at the `compile` span plus every telemetry counter
/// the compile incremented. Always attached to the output; the coarse
/// stage spans are recorded unconditionally, while inner phase spans
/// and counters need [`AtomiqueConfig::trace`](crate::AtomiqueConfig)
/// (or an enclosing caller-owned `raa-trace` session at
/// [`raa_trace::Level::Detail`]). Span and counter names are catalogued
/// in `docs/OBSERVABILITY.md`; export with
/// [`raa_trace::export::to_chrome`] / [`raa_trace::export::to_jsonl`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompileReport {
    /// The raw trace window of this compile. When the caller owned an
    /// enclosing session, span offsets are relative to *that* session's
    /// start (so multi-compile traces share one clock); otherwise to
    /// this compile's start.
    pub trace: raa_trace::TraceReport,
}

impl CompileReport {
    /// The root `compile` span.
    pub fn root(&self) -> Option<&raa_trace::SpanNode> {
        self.trace.find("compile")
    }

    /// Wall-clock duration of the whole compile, seconds — the root
    /// span's duration, the same number as
    /// [`CompileStats::compile_time_s`].
    pub fn total_s(&self) -> f64 {
        self.root().map(raa_trace::SpanNode::dur_s).unwrap_or(0.0)
    }

    /// [`StageTimings`] re-derived from the span tree — the single
    /// source of truth for the per-stage breakdown (the `transpile` and
    /// `map` spans each occur twice — peephole + SABRE, array + atom
    /// mapper — and sum).
    pub fn stage_timings(&self) -> StageTimings {
        StageTimings {
            transpile_s: self.trace.span_total_s("transpile"),
            map_s: self.trace.span_total_s("map"),
            route_s: self.trace.span_total_s("route"),
            lower_s: self.trace.span_total_s("lower"),
            opt_s: self.trace.span_total_s("opt"),
            verify_s: self.trace.span_total_s("verify"),
        }
    }

    /// The total of counter `name` within this compile (0 when absent —
    /// in particular, whenever detail tracing was off).
    pub fn counter(&self, name: &str) -> u64 {
        self.trace.counter(name)
    }

    /// All `(name, value)` counters, sorted by name.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.trace.counters
    }
}

/// Everything [`compile`](crate::compile) returns.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The full stage schedule (movements, pulses, cooling).
    pub stages: Vec<Stage>,
    /// The atom mapping the schedule refers to (slot → trap site).
    pub mapping: AtomMapping,
    /// Initial slot of each logical qubit.
    pub slot_of_qubit: Vec<u32>,
    /// The transpiled slot-level circuit the schedule executes (every
    /// two-qubit gate inter-array, SWAPs decomposed). This is the
    /// reference the ISA replay verifier checks the stream against.
    pub slot_circuit: raa_circuit::Circuit,
    /// Compilation and execution statistics.
    pub stats: CompileStats,
    /// The per-source fidelity estimate.
    pub fidelity: FidelityBreakdown,
    /// The lowered instruction stream, when requested via
    /// [`AtomiqueConfig::emit_isa`](crate::AtomiqueConfig).
    pub isa: Option<raa_isa::IsaProgram>,
    /// Per-stage wall-clock breakdown of this compile (derived from
    /// [`CompiledProgram::report`]).
    pub timings: StageTimings,
    /// The full trace of this compile: stage span tree, plus inner
    /// phase spans and counters when detail tracing was on.
    pub report: CompileReport,
}

impl CompiledProgram {
    /// The estimated total circuit fidelity.
    pub fn total_fidelity(&self) -> f64 {
        self.fidelity.total()
    }
}

/// Statistics of one compilation (the quantities the paper's figures
/// report).
#[derive(Debug, Clone, PartialEq)]
pub struct CompileStats {
    /// Logical qubits in the input circuit.
    pub num_qubits: usize,
    /// Two-qubit gates executed (after SWAP decomposition).
    pub two_qubit_gates: usize,
    /// One-qubit gates executed.
    pub one_qubit_gates: usize,
    /// The paper's depth metric: parallel two-qubit stages.
    pub depth: usize,
    /// SWAPs inserted by the multipartite router.
    pub swaps_inserted: usize,
    /// Additional CNOT-equivalents from SWAP insertion (3 per SWAP,
    /// Fig. 25).
    pub additional_cnots: usize,
    /// Estimated execution time, seconds.
    pub execution_time_s: f64,
    /// Total atom movement distance, mm (Fig. 20/22's "Move Dist.").
    pub total_move_distance_mm: f64,
    /// Mean movement distance per movement stage, mm.
    pub avg_move_distance_mm: f64,
    /// Movement stages performed.
    pub num_move_stages: usize,
    /// Cooling procedures performed.
    pub cooling_events: usize,
    /// Overlap-caused scheduling rejections (Fig. 24).
    pub overlap_rejections: usize,
    /// SLM↔AOD transfers (fallback path only; 0 in normal operation).
    pub transfers: usize,
    /// Wall-clock compile time, seconds.
    pub compile_time_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use raa_circuit::Qubit;

    #[test]
    fn stage_constructors_set_kinds() {
        assert_eq!(
            Stage::one_qubit(vec![Gate::h(Qubit(0))]).kind,
            StageKind::OneQubit
        );
        assert_eq!(
            Stage::movement(vec![], vec![], vec![(0, 1)]).kind,
            StageKind::Movement
        );
        let r = Stage::reset(vec![1]);
        assert_eq!(r.kind, StageKind::Reset);
        assert_eq!(r.kept_aods, vec![1]);
        let t = Stage::transfer_assisted(2, 5);
        assert_eq!(t.kind, StageKind::TransferAssisted);
        assert_eq!(t.gate_pairs, vec![(2, 5)]);
        assert_eq!(Stage::cooling(1).cooled_aod, Some(1));
    }
}
