//! Compiler configuration: hardware, physics, pass selection and the
//! constraint-relaxation toggles of paper Fig. 22.

use raa_arch::RaaConfig;
use raa_isa::OptLevel;
use raa_physics::HardwareParams;
use raa_sabre::SabreConfig;

/// Which qubit-array mapper to use (paper Fig. 21's first ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrayMapperKind {
    /// The paper's greedy MAX k-Cut on the γ-decayed gate-frequency graph
    /// (Alg. 1).
    #[default]
    MaxKCut,
    /// Qiskit-style dense mapping: fill arrays in index order, ignoring the
    /// interaction structure (the Fig. 21 baseline).
    Dense,
}

/// Which qubit-atom mapper to use (Fig. 21's second ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AtomMapperKind {
    /// Load-balance diagonal-spiral SLM mapping plus frequency-aligned AOD
    /// mapping (paper Sec. III-B).
    #[default]
    LoadBalance,
    /// Uniformly random placement (the Fig. 21 baseline).
    Random,
}

/// Router scheduling mode (Fig. 21's third ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterMode {
    /// Greedy maximal legal parallel gate set per stage (paper Sec. III-C).
    #[default]
    Parallel,
    /// One two-qubit gate per movement stage (the Fig. 21 baseline).
    Serial,
}

/// How the router turns its planned gate groups into movement stages.
///
/// Unlike [`ProximityIndex`], the two strategies produce *different*
/// schedules — layered batching merges stages — but provably the same
/// computation: the flattened gate-execution sequence is identical, and
/// every layered stream passes the same ISA legality + replay oracle
/// (`tests/layered_differential.rs` proves both over the benchmark
/// suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterStrategy {
    /// One movement stage (move in, pulse, retract) per planned gate
    /// group — the paper's Sec. III-C scheduling, kept as the
    /// differential baseline.
    #[default]
    Sequential,
    /// Arctic-style layer batching on top of the same gate planner:
    /// consecutive stages whose moves touch disjoint lines and whose
    /// merged configuration stays blockade-exact fuse into one
    /// coordinated Move/Unpark group with a single merged Rydberg
    /// pulse, and retract/approach round trips that the ISA optimizer's
    /// fuse pass would cancel (same [`raa_isa::opt::cost`] predicates)
    /// are never emitted at all. Strictly fewer pulses and less travel,
    /// never more.
    Layered,
}

/// How the router's constraint checks enumerate proximity candidates.
///
/// Both modes produce bit-identical schedules and ISA streams (proven by
/// `tests/router_differential.rs`): the grid only restricts which atoms a
/// check *looks at* — to those that can possibly be within range — never
/// the accept/reject predicates themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProximityIndex {
    /// Spatial-hash neighbor index ([`SpatialGrid`](crate::SpatialGrid)),
    /// maintained incrementally as lines move: O(neighbors) per check.
    /// The default — required for interactive compile times on
    /// 1000+-atom machines (paper Fig. 20 extrapolations).
    #[default]
    Grid,
    /// The original exhaustive all-atoms scan: O(atoms) per check. Kept
    /// as the oracle the differential router tests compare against.
    Exhaustive,
}

/// How the transpile stage (MAX k-Cut array mapping + SABRE routing)
/// evaluates its heuristics.
///
/// Like [`ProximityIndex`], both modes produce bit-identical outputs —
/// mappings, schedules, ISA bytes, stage spans — proven by
/// `tests/transpile_differential.rs`. The indexed mode only changes *how*
/// scores are obtained (cached integer deltas, analytic multipartite
/// distances, adjacency-list degrees), never the arithmetic that turns
/// them into the floats the tie-breaks compare (see
/// `docs/PARALLELISM.md`, "Transpile indexing").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranspileIndex {
    /// Incremental score maintenance: SABRE keeps a per-candidate
    /// `ScoreCache` across rounds and invalidates exactly the candidates
    /// whose inputs changed, the coupling graph's distance table is built
    /// analytically for the complete-multipartite geometry, and MAX k-Cut
    /// maintains weighted degrees from adjacency lists instead of
    /// rescanning. The default — O(affected candidates) per round.
    #[default]
    Indexed,
    /// The original from-scratch evaluation every round: O(all
    /// candidates) per SABRE round, BFS-built distance tables, full
    /// interaction-graph rescans in MAX k-Cut. Kept untouched as the
    /// differential baseline.
    Naive,
}

/// Constraint-relaxation toggles (paper Fig. 22). All `false` = the real
/// hardware; each flag disables one router check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Relaxation {
    /// Relax constraint 1: pretend two-qubit gates are individually
    /// addressable, so unwanted Rydberg-range pairs are ignored.
    pub individual_addressing: bool,
    /// Relax constraint 2: allow AOD row/column order violations.
    pub allow_order_violation: bool,
    /// Relax constraint 3: allow rows/columns of one AOD to overlap.
    pub allow_overlap: bool,
}

impl Relaxation {
    /// No relaxation: all three hardware constraints enforced.
    pub const NONE: Relaxation = Relaxation {
        individual_addressing: false,
        allow_order_violation: false,
        allow_overlap: false,
    };
}

/// Full configuration of one [`compile`](crate::compile) run.
///
/// # Examples
///
/// ```
/// use atomique::AtomiqueConfig;
/// let cfg = AtomiqueConfig::default(); // paper defaults: 10×10, 2 AODs
/// assert_eq!(cfg.hardware.num_aods(), 2);
/// assert!((cfg.gamma - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AtomiqueConfig {
    /// The machine to compile for.
    pub hardware: RaaConfig,
    /// Physical constants for the fidelity model.
    pub params: HardwareParams,
    /// Layer-decay factor γ of the gate-frequency graph (Alg. 1).
    pub gamma: f64,
    /// Constraint relaxations (Fig. 22); default none.
    pub relaxation: Relaxation,
    /// Qubit-array mapper selection.
    pub array_mapper: ArrayMapperKind,
    /// Qubit-atom mapper selection.
    pub atom_mapper: AtomMapperKind,
    /// Router scheduling mode.
    pub router_mode: RouterMode,
    /// How planned gate groups become movement stages:
    /// [`RouterStrategy::Sequential`] (default, the paper's one stage
    /// per group) or [`RouterStrategy::Layered`] (Arctic-style move
    /// batching — merged pulses, elided round trips).
    pub router_strategy: RouterStrategy,
    /// Proximity-candidate enumeration used by the router's constraint
    /// checks; [`ProximityIndex::Grid`] unless you are running the
    /// differential oracle.
    pub proximity_index: ProximityIndex,
    /// Transpile-stage heuristic evaluation: [`TranspileIndex::Indexed`]
    /// (default — incremental SABRE score cache, analytic multipartite
    /// distances, O(Δ) k-Cut degrees) or [`TranspileIndex::Naive`] (the
    /// original from-scratch path, kept as the differential baseline).
    /// Bit-identical outputs either way.
    pub transpile_index: TranspileIndex,
    /// SABRE tunables for intra-array SWAP insertion.
    pub sabre: SabreConfig,
    /// Seed for the random atom mapper (ablation only).
    pub seed: u64,
    /// Lower the compiled schedule to a `raa-isa` instruction stream and
    /// attach it to the output (`CompiledProgram::isa`). The attached
    /// stream's header name is empty — use
    /// [`emit_isa`](crate::emit_isa) directly to produce a named stream.
    pub emit_isa: bool,
    /// Run the independent ISA oracle after compilation: the stream must
    /// pass `raa_isa::check_legality` (C1/C2/C3 re-verified from the
    /// stream alone) and `raa_isa::replay_verify` (every reference gate
    /// executed exactly once, DAG order respected). Compilation fails if
    /// either check does. Implies lowering; the stream is attached only
    /// when [`AtomiqueConfig::emit_isa`] is also set.
    pub verify_isa: bool,
    /// ISA optimization level applied to the lowered stream
    /// (`raa_isa::opt`): move coalescing, retract/approach fusion, park
    /// elision and dead-move elimination, each rewrite re-verified by
    /// the stream oracle before acceptance. Applied (and then verified,
    /// when [`AtomiqueConfig::verify_isa`] is also set) only when
    /// [`AtomiqueConfig::emit_isa`] attaches the stream; default
    /// [`OptLevel::None`].
    pub opt_level: OptLevel,
    /// Worker threads for intra-compile parallel waves (`raa-par`):
    /// SABRE lookahead scoring, MAX k-Cut group refinement, and the
    /// sharded ISA legality replay all scatter over a
    /// [`raa_par::WorkPool`] of this size. `1` (the default) *is* the
    /// original sequential code path; any other value produces
    /// bit-identical schedules, ISA bytes and telemetry counters —
    /// proven by `tests/parallel_differential.rs` — so the knob only
    /// trades wall clock. The default honors the `ATOMIQUE_THREADS`
    /// environment variable (CI's thread-matrix leg), falling back to 1
    /// when unset or unparsable.
    pub threads: usize,
    /// Detail-level tracing: record inner router/optimizer/checker phase
    /// spans and all telemetry counters into the compile's
    /// [`CompileReport`](crate::CompileReport) (see
    /// `docs/OBSERVABILITY.md`). Off by default — the coarse stage spans
    /// behind [`StageTimings`](crate::StageTimings) are always recorded
    /// — and proven output-identical either way by
    /// `tests/router_differential.rs`. When the caller already owns a
    /// `raa-trace` session, that session's level wins and this flag is
    /// ignored.
    pub trace: bool,
}

impl Default for AtomiqueConfig {
    fn default() -> Self {
        AtomiqueConfig {
            hardware: RaaConfig::default(),
            params: HardwareParams::neutral_atom(),
            gamma: 0.9,
            relaxation: Relaxation::NONE,
            array_mapper: ArrayMapperKind::default(),
            atom_mapper: AtomMapperKind::default(),
            router_mode: RouterMode::default(),
            router_strategy: RouterStrategy::default(),
            proximity_index: ProximityIndex::default(),
            transpile_index: TranspileIndex::default(),
            sabre: SabreConfig::default(),
            seed: 0,
            emit_isa: false,
            verify_isa: false,
            opt_level: OptLevel::None,
            threads: threads_from_env(),
            trace: false,
        }
    }
}

/// The largest worker count [`parse_threads`] accepts (and the
/// fallback when `ATOMIQUE_THREADS` asks for more).
pub const MAX_THREADS: usize = 256;

/// Why a thread-count string (an `ATOMIQUE_THREADS` value, or a
/// service request's `threads` override) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadsParseError {
    /// The value is not an unsigned integer.
    NotANumber {
        /// The offending text.
        value: String,
    },
    /// The value is `0`; waves need at least one worker.
    Zero,
    /// The value exceeds [`MAX_THREADS`].
    TooLarge {
        /// The requested count.
        value: usize,
    },
}

impl ThreadsParseError {
    /// The safe worker count to run with when the requested one was
    /// rejected: [`MAX_THREADS`] for an over-large request (the host
    /// asked for parallelism — give it as much as supported), 1
    /// otherwise.
    pub fn fallback(&self) -> usize {
        match self {
            ThreadsParseError::TooLarge { .. } => MAX_THREADS,
            _ => 1,
        }
    }
}

impl std::fmt::Display for ThreadsParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadsParseError::NotANumber { value } => {
                write!(f, "`{value}` is not an unsigned integer")
            }
            ThreadsParseError::Zero => write!(f, "thread count must be at least 1"),
            ThreadsParseError::TooLarge { value } => {
                write!(
                    f,
                    "thread count {value} exceeds the supported maximum {MAX_THREADS}"
                )
            }
        }
    }
}

impl std::error::Error for ThreadsParseError {}

/// Parses a worker-thread count: an integer in `[1, MAX_THREADS]`,
/// surrounding whitespace tolerated.
///
/// # Errors
///
/// [`ThreadsParseError`] describing exactly why the value was
/// rejected; [`ThreadsParseError::fallback`] gives the safe count to
/// degrade to.
///
/// # Examples
///
/// ```
/// use atomique::{parse_threads, ThreadsParseError, MAX_THREADS};
/// assert_eq!(parse_threads(" 8 "), Ok(8));
/// assert_eq!(parse_threads("0"), Err(ThreadsParseError::Zero));
/// assert_eq!(parse_threads("9999"), Err(ThreadsParseError::TooLarge { value: 9999 }));
/// assert_eq!(parse_threads("abc").unwrap_err().fallback(), 1);
/// assert_eq!(parse_threads("9999").unwrap_err().fallback(), MAX_THREADS);
/// ```
pub fn parse_threads(value: &str) -> Result<usize, ThreadsParseError> {
    let trimmed = value.trim();
    let n = trimmed
        .parse::<usize>()
        .map_err(|_| ThreadsParseError::NotANumber {
            value: trimmed.to_string(),
        })?;
    if n == 0 {
        return Err(ThreadsParseError::Zero);
    }
    if n > MAX_THREADS {
        return Err(ThreadsParseError::TooLarge { value: n });
    }
    Ok(n)
}

/// Default worker count: `ATOMIQUE_THREADS` parsed by
/// [`parse_threads`] when set, else 1. An invalid value no longer
/// degrades silently — a misconfigured service host must not discover
/// at traffic time that it has been running single-threaded — it
/// emits one deterministic stderr warning per process and falls back
/// to [`ThreadsParseError::fallback`]. Read per call — it is a
/// handful of nanoseconds against a compile, and tests that set the
/// variable see it immediately.
fn threads_from_env() -> usize {
    match std::env::var("ATOMIQUE_THREADS") {
        Err(_) => 1,
        Ok(raw) => parse_threads(&raw).unwrap_or_else(|e| {
            let fallback = e.fallback();
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!("warning: ignoring ATOMIQUE_THREADS={raw}: {e}; using {fallback}");
            });
            fallback
        }),
    }
}

impl AtomiqueConfig {
    /// Configuration with a specific machine, paper defaults elsewhere.
    pub fn for_hardware(hardware: RaaConfig) -> Self {
        AtomiqueConfig {
            hardware,
            ..AtomiqueConfig::default()
        }
    }

    /// Configuration for a square machine sized to hold `num_qubits`
    /// qubits at the paper's 1:3 qubit-to-trap occupancy: side
    /// `⌈√num_qubits⌉` (at least the default 10), one SLM plus two AODs.
    /// This is the machine the Fig. 20-style 256/512/1024-atom scaling
    /// workloads compile on.
    ///
    /// # Examples
    ///
    /// ```
    /// use atomique::AtomiqueConfig;
    /// let cfg = AtomiqueConfig::scaled_to(1024);
    /// assert_eq!(cfg.hardware.total_capacity(), 3 * 32 * 32);
    /// assert_eq!(AtomiqueConfig::scaled_to(50).hardware.total_capacity(), 300);
    /// ```
    pub fn scaled_to(num_qubits: usize) -> Self {
        let side = ((num_qubits as f64).sqrt().ceil() as usize).max(10);
        let hardware = RaaConfig::square(side, 2).expect("square machine is always valid");
        AtomiqueConfig::for_hardware(hardware)
    }

    /// The Fig. 21 "all baselines" configuration: dense array mapper,
    /// random atom mapper, serial router.
    pub fn ablation_baseline(mut self) -> Self {
        self.array_mapper = ArrayMapperKind::Dense;
        self.atom_mapper = AtomMapperKind::Random;
        self.router_mode = RouterMode::Serial;
        self
    }

    /// A process- and platform-stable 64-bit fingerprint covering
    /// *every* field of the configuration, used (with
    /// [`Circuit::stable_hash`](raa_circuit::Circuit::stable_hash)) as
    /// the compile-cache key of the serving layer.
    ///
    /// Implemented as FNV-1a over a versioned salt plus each field's
    /// canonical encoding — `f64::to_bits` for floats (so NaNs with
    /// different payloads, and `-0.0` vs `0.0`, separate), explicit
    /// tags for enums — exactly like `Circuit::stable_hash`. Hashing
    /// every field is deliberately conservative: fields that provably
    /// do not change output bytes (`threads`, `proximity_index`,
    /// `trace`) still separate cache entries — an over-split cache
    /// costs a duplicate compile, while an under-split one would serve
    /// stale results. The exhaustive destructuring below makes a field
    /// added later a compile error until it joins the key.
    pub fn fingerprint(&self) -> u64 {
        let AtomiqueConfig {
            hardware,
            params,
            gamma,
            relaxation,
            array_mapper,
            atom_mapper,
            router_mode,
            router_strategy,
            proximity_index,
            transpile_index,
            sabre,
            seed,
            emit_isa,
            verify_isa,
            opt_level,
            threads,
            trace,
        } = self;
        let HardwareParams {
            two_qubit_fidelity,
            one_qubit_fidelity,
            two_qubit_time_s,
            one_qubit_time_s,
            coherence_time_s,
            atom_distance_um,
            t_move_s,
            t_transfer_s,
            transfer_loss_prob,
            x_zpf_m,
            omega0_rad_s,
            lambda,
            n_vib_max,
            n_vib_cool_threshold,
        } = params;
        let Relaxation {
            individual_addressing,
            allow_order_violation,
            allow_overlap,
        } = relaxation;
        let SabreConfig {
            extended_set_size,
            extended_set_weight,
            decay_increment,
            decay_reset_interval,
        } = sabre;

        let mut h = Fnv::new(b"atomique-config-v2");
        // Hardware: array shapes + physics. The AOD home offsets are a
        // pure function of the AOD count, so the shapes cover them.
        h.put(hardware.slm.rows as u64);
        h.put(hardware.slm.cols as u64);
        h.put(hardware.aods.len() as u64);
        for dims in &hardware.aods {
            h.put(dims.rows as u64);
            h.put(dims.cols as u64);
        }
        h.put_f64(hardware.spacing_um);
        h.put_f64(hardware.rydberg_radius_um);
        for &v in &[
            two_qubit_fidelity,
            one_qubit_fidelity,
            two_qubit_time_s,
            one_qubit_time_s,
            coherence_time_s,
            atom_distance_um,
            t_move_s,
            t_transfer_s,
            transfer_loss_prob,
            x_zpf_m,
            omega0_rad_s,
            lambda,
            n_vib_max,
            n_vib_cool_threshold,
        ] {
            h.put_f64(*v);
        }
        h.put_f64(*gamma);
        h.put(*individual_addressing as u64);
        h.put(*allow_order_violation as u64);
        h.put(*allow_overlap as u64);
        h.put(match array_mapper {
            ArrayMapperKind::MaxKCut => 0,
            ArrayMapperKind::Dense => 1,
        });
        h.put(match atom_mapper {
            AtomMapperKind::LoadBalance => 0,
            AtomMapperKind::Random => 1,
        });
        h.put(match router_mode {
            RouterMode::Parallel => 0,
            RouterMode::Serial => 1,
        });
        h.put(match router_strategy {
            RouterStrategy::Sequential => 0,
            RouterStrategy::Layered => 1,
        });
        h.put(match proximity_index {
            ProximityIndex::Grid => 0,
            ProximityIndex::Exhaustive => 1,
        });
        h.put(match transpile_index {
            TranspileIndex::Indexed => 0,
            TranspileIndex::Naive => 1,
        });
        h.put(*extended_set_size as u64);
        h.put_f64(*extended_set_weight);
        h.put_f64(*decay_increment);
        h.put(*decay_reset_interval as u64);
        h.put(*seed);
        h.put(*emit_isa as u64);
        h.put(*verify_isa as u64);
        h.put(match opt_level {
            OptLevel::None => 0,
            OptLevel::Basic => 1,
            OptLevel::Aggressive => 2,
        });
        h.put(*threads as u64);
        h.put(*trace as u64);
        h.finish()
    }
}

/// FNV-1a accumulator over canonical little-endian field encodings
/// (the same scheme as `Circuit::stable_hash`).
struct Fnv(u64);

impl Fnv {
    fn new(salt: &[u8]) -> Fnv {
        let mut h = Fnv(0xcbf29ce484222325);
        for &b in salt {
            h.byte(b);
        }
        h
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
    }

    fn put(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn put_f64(&mut self, v: f64) {
        self.put(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_defaults() {
        let c = AtomiqueConfig::default();
        assert_eq!(c.array_mapper, ArrayMapperKind::MaxKCut);
        assert_eq!(c.atom_mapper, AtomMapperKind::LoadBalance);
        assert_eq!(c.router_mode, RouterMode::Parallel);
        assert_eq!(c.router_strategy, RouterStrategy::Sequential);
        assert_eq!(c.proximity_index, ProximityIndex::Grid);
        assert_eq!(c.transpile_index, TranspileIndex::Indexed);
        assert_eq!(c.relaxation, Relaxation::NONE);
        assert_eq!(c.opt_level, OptLevel::None);
        assert_eq!(c.hardware.total_capacity(), 300);
    }

    #[test]
    fn ablation_baseline_flips_all_axes() {
        let c = AtomiqueConfig::default().ablation_baseline();
        assert_eq!(c.array_mapper, ArrayMapperKind::Dense);
        assert_eq!(c.atom_mapper, AtomMapperKind::Random);
        assert_eq!(c.router_mode, RouterMode::Serial);
    }

    #[test]
    fn relaxation_default_enforces_all() {
        let r = Relaxation::default();
        assert!(!r.individual_addressing && !r.allow_order_violation && !r.allow_overlap);
    }

    #[test]
    fn parse_threads_accepts_the_valid_range() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 16\n"), Ok(16));
        assert_eq!(parse_threads("256"), Ok(256));
    }

    #[test]
    fn parse_threads_rejects_zero() {
        assert_eq!(parse_threads("0"), Err(ThreadsParseError::Zero));
        assert_eq!(parse_threads("0").unwrap_err().fallback(), 1);
    }

    #[test]
    fn parse_threads_rejects_non_numbers() {
        for bad in ["abc", "", "-2", "1.5", "4 threads"] {
            match parse_threads(bad) {
                Err(ThreadsParseError::NotANumber { value }) => {
                    assert_eq!(value, bad.trim());
                }
                other => panic!("`{bad}` parsed as {other:?}"),
            }
        }
        assert_eq!(parse_threads("abc").unwrap_err().fallback(), 1);
    }

    #[test]
    fn parse_threads_rejects_oversized_counts() {
        assert_eq!(
            parse_threads("9999"),
            Err(ThreadsParseError::TooLarge { value: 9999 })
        );
        // An over-large request degrades to full supported
        // parallelism, not to 1.
        assert_eq!(parse_threads("9999").unwrap_err().fallback(), MAX_THREADS);
        assert_eq!(parse_threads("257").unwrap_err().fallback(), MAX_THREADS);
    }

    #[test]
    fn fingerprint_separates_every_compilation_axis() {
        let base = AtomiqueConfig::default();
        assert_eq!(base.fingerprint(), base.clone().fingerprint());

        let mut opt = base.clone();
        opt.opt_level = OptLevel::Aggressive;
        let mut layered = base.clone();
        layered.router_strategy = RouterStrategy::Layered;
        let mut threads = base.clone();
        threads.threads = 4;
        let mut prox = base.clone();
        prox.proximity_index = ProximityIndex::Exhaustive;
        let mut tidx = base.clone();
        tidx.transpile_index = TranspileIndex::Naive;
        let mut gamma = base.clone();
        gamma.gamma = 0.8;
        let mut hw = base.clone();
        hw.hardware = raa_arch::RaaConfig::square(20, 2).unwrap();

        let prints = [
            base.fingerprint(),
            opt.fingerprint(),
            layered.fingerprint(),
            threads.fingerprint(),
            prox.fingerprint(),
            tidx.fingerprint(),
            gamma.fingerprint(),
            hw.fingerprint(),
        ];
        for (i, a) in prints.iter().enumerate() {
            for b in prints.iter().skip(i + 1) {
                assert_ne!(a, b, "two distinct configs share a fingerprint");
            }
        }
    }

    #[test]
    fn fingerprint_hashes_exact_float_bits_not_renderings() {
        // NaNs with different payloads render identically (`NaN`) but
        // are different bit patterns; the key must keep them apart.
        let with_gamma = |gamma: f64| AtomiqueConfig {
            gamma,
            ..AtomiqueConfig::default()
        };
        let a = with_gamma(f64::from_bits(0x7ff8_0000_0000_0001));
        let b = with_gamma(f64::from_bits(0x7ff8_0000_0000_0002));
        assert!(a.gamma.is_nan() && b.gamma.is_nan());
        assert_ne!(a.fingerprint(), b.fingerprint());

        // Same for the sign of zero, which `==` would conflate.
        assert_ne!(
            with_gamma(-0.0).fingerprint(),
            with_gamma(0.0).fingerprint()
        );
    }
}
