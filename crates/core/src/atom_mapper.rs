//! Qubit-atom mapper: choosing the concrete trap inside each array
//! (paper Sec. III-B, Figs. 6–7).
//!
//! Two sub-passes:
//!
//! 1. **Load-balance SLM mapping** — SLM qubits sorted by two-qubit gate
//!    involvement are placed along a diagonal-first spiral so that the
//!    per-row/per-column interaction load stays balanced, which minimizes
//!    later conflicts with the order (C2) and overlap (C3) constraints.
//! 2. **Aligned AOD mapping** — the most frequent interaction pairs get the
//!    *same* (row, column) position in their respective arrays, so a single
//!    small aligned displacement of the whole AOD executes many gates in
//!    parallel.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use raa_arch::{ArrayIndex, RaaConfig, TrapSite};
use raa_circuit::InteractionGraph;

use crate::config::AtomMapperKind;
use crate::error::CompileError;
use crate::transpile::TranspiledCircuit;

/// The result of the atom-mapping pass: a trap site for every slot.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomMapping {
    /// Trap site of each slot.
    pub site_of_slot: Vec<TrapSite>,
}

impl AtomMapping {
    /// The slots mapped into `array`, with their sites.
    pub fn slots_in(&self, array: ArrayIndex) -> Vec<(u32, TrapSite)> {
        self.site_of_slot
            .iter()
            .enumerate()
            .filter(|(_, s)| s.array == array)
            .map(|(i, s)| (i as u32, *s))
            .collect()
    }
}

/// Visit order for placing qubits in one array: main diagonal first, then
/// increasingly distant off-diagonals (paper Fig. 6's spiral).
pub fn diagonal_spiral_order(rows: usize, cols: usize) -> Vec<(u16, u16)> {
    let mut cells: Vec<(u16, u16)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r as u16, c as u16)))
        .collect();
    cells.sort_by_key(|&(r, c)| {
        let d = (r as i32 - c as i32).unsigned_abs();
        (d, r.max(c), r)
    });
    cells
}

/// Runs the configured atom mapper.
///
/// # Errors
///
/// [`CompileError::Capacity`] if any array holds more slots than traps
/// (cannot happen after a capacity-respecting array mapper).
pub fn map_to_atoms(
    transpiled: &TranspiledCircuit,
    hardware: &RaaConfig,
    kind: AtomMapperKind,
    seed: u64,
) -> Result<AtomMapping, CompileError> {
    // Group slots by array and verify capacity.
    let num_arrays = hardware.num_arrays();
    let mut slots_by_array: Vec<Vec<u32>> = vec![Vec::new(); num_arrays];
    for (slot, &a) in transpiled.slot_array.iter().enumerate() {
        slots_by_array[a as usize].push(slot as u32);
    }
    for (a, slots) in slots_by_array.iter().enumerate() {
        let cap = hardware.dims(ArrayIndex(a as u8)).capacity();
        if slots.len() > cap {
            return Err(CompileError::Capacity {
                required: slots.len(),
                available: cap,
            });
        }
    }
    match kind {
        AtomMapperKind::LoadBalance => Ok(load_balance(transpiled, hardware, &slots_by_array)),
        AtomMapperKind::Random => Ok(random(hardware, &slots_by_array, seed)),
    }
}

fn load_balance(
    transpiled: &TranspiledCircuit,
    hardware: &RaaConfig,
    slots_by_array: &[Vec<u32>],
) -> AtomMapping {
    let n = transpiled.num_slots();
    let counts = InteractionGraph::involvement_counts(&transpiled.circuit);
    let mut site_of_slot: Vec<Option<TrapSite>> = vec![None; n];

    // --- Pass 1: SLM load-balance mapping (Fig. 6). ---
    let slm = ArrayIndex::SLM;
    let dims = hardware.dims(slm);
    let mut slm_slots = slots_by_array[0].clone();
    slm_slots.sort_by_key(|&s| std::cmp::Reverse(counts[s as usize]));
    for (&slot, &(r, c)) in slm_slots
        .iter()
        .zip(diagonal_spiral_order(dims.rows, dims.cols).iter())
    {
        site_of_slot[slot as usize] = Some(TrapSite::new(slm, r, c));
    }

    // Pair frequencies over the transpiled circuit, sorted descending
    // (rank order of Fig. 7).
    let mut pair_freq: HashMap<(u32, u32), usize> = HashMap::new();
    for (a, b) in transpiled.circuit.two_qubit_pairs() {
        *pair_freq.entry((a.0, b.0)).or_insert(0) += 1;
    }
    let mut ranked: Vec<((u32, u32), usize)> = pair_freq.into_iter().collect();
    ranked.sort_by_key(|&((a, b), f)| (std::cmp::Reverse(f), a, b));

    // --- Pass 2: aligned AOD mapping, one AOD at a time (Fig. 7). ---
    for (k, array_slots) in slots_by_array.iter().enumerate().skip(1) {
        let array = ArrayIndex(k as u8);
        let dims = hardware.dims(array);
        let mut free = vec![vec![true; dims.cols]; dims.rows];
        let mut remaining: Vec<u32> = array_slots.clone();

        for &((a, b), _) in &ranked {
            // One endpoint placed (anywhere), the other an unplaced slot of
            // this array.
            let (anchor, cand) = match (site_of_slot[a as usize], site_of_slot[b as usize]) {
                (Some(site), None) if transpiled.slot_array[b as usize] as usize == k => (site, b),
                (None, Some(site)) if transpiled.slot_array[a as usize] as usize == k => (site, a),
                _ => continue,
            };
            if site_of_slot[cand as usize].is_some() {
                continue;
            }
            let target = (
                (anchor.row as usize).min(dims.rows - 1),
                (anchor.col as usize).min(dims.cols - 1),
            );
            if let Some((r, c)) = nearest_free(&free, target) {
                free[r][c] = false;
                site_of_slot[cand as usize] = Some(TrapSite::new(array, r as u16, c as u16));
                remaining.retain(|&s| s != cand);
            }
        }

        // Leftovers (qubits with no placed partner): diagonal order, by
        // involvement.
        remaining.sort_by_key(|&s| std::cmp::Reverse(counts[s as usize]));
        let mut order = diagonal_spiral_order(dims.rows, dims.cols).into_iter();
        for slot in remaining {
            let site = loop {
                let (r, c) = order.next().expect("capacity was validated");
                if free[r as usize][c as usize] {
                    free[r as usize][c as usize] = false;
                    break TrapSite::new(array, r, c);
                }
            };
            site_of_slot[slot as usize] = Some(site);
        }
    }

    AtomMapping {
        site_of_slot: site_of_slot
            .into_iter()
            .map(|s| s.expect("every slot placed"))
            .collect(),
    }
}

/// The free cell minimizing Euclidean distance to `target` (ties: lowest
/// row, then column). `None` if the grid is full.
fn nearest_free(free: &[Vec<bool>], target: (usize, usize)) -> Option<(usize, usize)> {
    let mut best: Option<((usize, usize), f64)> = None;
    for (r, row) in free.iter().enumerate() {
        for (c, &is_free) in row.iter().enumerate() {
            if !is_free {
                continue;
            }
            let d = ((r as f64 - target.0 as f64).powi(2) + (c as f64 - target.1 as f64).powi(2))
                .sqrt();
            let better = match best {
                None => true,
                Some((_, bd)) => d < bd - 1e-12,
            };
            if better {
                best = Some(((r, c), d));
            }
        }
    }
    best.map(|(cell, _)| cell)
}

/// Fig. 21 ablation baseline: uniformly random placement per array.
fn random(hardware: &RaaConfig, slots_by_array: &[Vec<u32>], seed: u64) -> AtomMapping {
    let n: usize = slots_by_array.iter().map(|s| s.len()).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut site_of_slot = vec![TrapSite::new(ArrayIndex::SLM, 0, 0); n];
    for (a, slots) in slots_by_array.iter().enumerate() {
        let array = ArrayIndex(a as u8);
        let dims = hardware.dims(array);
        let mut cells: Vec<(u16, u16)> = (0..dims.rows as u16)
            .flat_map(|r| (0..dims.cols as u16).map(move |c| (r, c)))
            .collect();
        cells.shuffle(&mut rng);
        for (&slot, &(r, c)) in slots.iter().zip(cells.iter()) {
            site_of_slot[slot as usize] = TrapSite::new(array, r, c);
        }
    }
    AtomMapping { site_of_slot }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array_mapper::ArrayMapping;
    use crate::transpile::transpile;
    use raa_circuit::Qubit;
    use raa_circuit::{Circuit, Gate};
    use raa_sabre::SabreConfig;

    fn make_transpiled(c: &Circuit, array_of: Vec<u8>) -> TranspiledCircuit {
        let mapping = ArrayMapping {
            array_of,
            num_arrays: 3,
        };
        transpile(c, &mapping, &SabreConfig::default()).unwrap()
    }

    #[test]
    fn diagonal_spiral_starts_on_diagonal() {
        let order = diagonal_spiral_order(4, 4);
        assert_eq!(&order[..4], &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert_eq!(order.len(), 16);
        // Every cell exactly once.
        let mut set: Vec<_> = order.clone();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn diagonal_spiral_balances_rows() {
        // Load balance is approximate: after placing any prefix, the
        // per-row occupancy spread stays small (≤ 3 on a 5×5 array).
        let order = diagonal_spiral_order(5, 5);
        for k in 1..=25 {
            let mut per_row = [0usize; 5];
            for &(r, _) in &order[..k] {
                per_row[r as usize] += 1;
            }
            let max = *per_row.iter().max().unwrap();
            let min = *per_row.iter().min().unwrap();
            assert!(max - min <= 3, "imbalance {max}-{min} at k={k}");
        }
    }

    #[test]
    fn busiest_slm_qubit_gets_top_left_diagonal() {
        let mut c = Circuit::new(4);
        // Slot for qubit 1 (SLM) is the busiest.
        for _ in 0..5 {
            c.push(Gate::cz(Qubit(1), Qubit(2)));
        }
        c.push(Gate::cz(Qubit(0), Qubit(3)));
        let t = make_transpiled(&c, vec![0, 0, 1, 1]);
        let m = map_to_atoms(&t, &RaaConfig::default(), AtomMapperKind::LoadBalance, 0).unwrap();
        let busiest_slot = t.slot_of_qubit[1] as usize;
        let site = m.site_of_slot[busiest_slot];
        assert_eq!((site.row, site.col), (0, 0));
        assert!(site.array.is_slm());
    }

    #[test]
    fn frequent_pair_is_aligned() {
        let mut c = Circuit::new(4);
        for _ in 0..5 {
            c.push(Gate::cz(Qubit(1), Qubit(2)));
        }
        c.push(Gate::cz(Qubit(0), Qubit(3)));
        let t = make_transpiled(&c, vec![0, 0, 1, 1]);
        let m = map_to_atoms(&t, &RaaConfig::default(), AtomMapperKind::LoadBalance, 0).unwrap();
        let s1 = m.site_of_slot[t.slot_of_qubit[1] as usize];
        let s2 = m.site_of_slot[t.slot_of_qubit[2] as usize];
        // The hot pair shares (row, col) across arrays.
        assert_eq!((s1.row, s1.col), (s2.row, s2.col));
        assert_ne!(s1.array, s2.array);
    }

    #[test]
    fn all_slots_placed_uniquely() {
        let mut c = Circuit::new(9);
        for i in 0..8u32 {
            c.push(Gate::cz(Qubit(i), Qubit(i + 1)));
        }
        let t = make_transpiled(&c, vec![0, 0, 0, 1, 1, 1, 2, 2, 2]);
        for kind in [AtomMapperKind::LoadBalance, AtomMapperKind::Random] {
            let m = map_to_atoms(&t, &RaaConfig::default(), kind, 7).unwrap();
            assert_eq!(m.site_of_slot.len(), 9);
            let mut sites = m.site_of_slot.clone();
            sites.sort_by_key(|s| (s.array.0, s.row, s.col));
            sites.dedup();
            assert_eq!(sites.len(), 9, "duplicate trap assignment");
            // Every slot in its assigned array.
            for (slot, site) in m.site_of_slot.iter().enumerate() {
                assert_eq!(site.array.0, t.slot_array[slot]);
            }
        }
    }

    #[test]
    fn random_mapper_is_seed_deterministic() {
        let mut c = Circuit::new(6);
        c.push(Gate::cz(Qubit(0), Qubit(5)));
        let t = make_transpiled(&c, vec![0, 0, 1, 1, 2, 2]);
        let hw = RaaConfig::default();
        let a = map_to_atoms(&t, &hw, AtomMapperKind::Random, 42).unwrap();
        let b = map_to_atoms(&t, &hw, AtomMapperKind::Random, 42).unwrap();
        let c2 = map_to_atoms(&t, &hw, AtomMapperKind::Random, 43).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c2);
    }

    #[test]
    fn nearest_free_prefers_exact_cell() {
        let mut free = vec![vec![true; 3]; 3];
        assert_eq!(nearest_free(&free, (1, 1)), Some((1, 1)));
        free[1][1] = false;
        let (r, c) = nearest_free(&free, (1, 1)).unwrap();
        assert_eq!((r as i32 - 1).abs() + (c as i32 - 1).abs(), 1);
        let full = vec![vec![false; 2]; 2];
        assert_eq!(nearest_free(&full, (0, 0)), None);
    }
}
