//! Error type for the Atomique compiler pipeline.

use std::error::Error;
use std::fmt;

use raa_arch::ArchError;
use raa_circuit::CircuitError;
use raa_sabre::SabreError;

/// Errors produced by [`compile`](crate::compile).
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The circuit does not fit on the configured hardware.
    Capacity {
        /// Qubits in the circuit.
        required: usize,
        /// Total traps available.
        available: usize,
    },
    /// Hardware description problem.
    Arch(ArchError),
    /// Circuit validation problem.
    Circuit(CircuitError),
    /// Intra-array SWAP insertion failed.
    Routing(SabreError),
    /// The movement router could not make progress: some front-layer gate
    /// is unschedulable even from a fully reset configuration.
    RouterStuck {
        /// Gates that remained unscheduled.
        remaining: usize,
    },
    /// The emitted instruction stream failed the independent legality
    /// checker (requested via `AtomiqueConfig::verify_isa`).
    IsaLegality(raa_isa::LegalityError),
    /// The emitted instruction stream failed the replay verifier
    /// (requested via `AtomiqueConfig::verify_isa`).
    IsaReplay(raa_isa::ReplayError),
    /// The compile exceeded the caller-imposed wall-clock deadline
    /// (see [`CompileLimits`](crate::CompileLimits)); names the stage
    /// boundary where the overrun was observed.
    Deadline {
        /// Stage boundary at which the overrun was detected.
        stage: &'static str,
    },
    /// A deterministic fault schedule (`raa-fault`) injected a failure
    /// at the named fault point. Only ever produced while a schedule is
    /// armed; callers classify it as transient and may retry.
    Injected {
        /// The fault point that fired.
        point: &'static str,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Capacity { required, available } => write!(
                f,
                "circuit needs {required} qubits but the machine holds {available} atoms"
            ),
            CompileError::Arch(e) => write!(f, "hardware error: {e}"),
            CompileError::Circuit(e) => write!(f, "circuit error: {e}"),
            CompileError::Routing(e) => write!(f, "swap insertion failed: {e}"),
            CompileError::RouterStuck { remaining } => write!(
                f,
                "movement router stalled with {remaining} gates left (hardware constraints unsatisfiable)"
            ),
            CompileError::IsaLegality(e) => write!(f, "ISA legality check failed: {e}"),
            CompileError::IsaReplay(e) => write!(f, "ISA replay verification failed: {e}"),
            CompileError::Deadline { stage } => {
                write!(f, "compile deadline exceeded at stage `{stage}`")
            }
            CompileError::Injected { point } => write!(f, "injected fault at {point}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Arch(e) => Some(e),
            CompileError::Circuit(e) => Some(e),
            CompileError::Routing(e) => Some(e),
            CompileError::IsaLegality(e) => Some(e),
            CompileError::IsaReplay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for CompileError {
    fn from(e: ArchError) -> Self {
        CompileError::Arch(e)
    }
}

impl From<CircuitError> for CompileError {
    fn from(e: CircuitError) -> Self {
        CompileError::Circuit(e)
    }
}

impl From<SabreError> for CompileError {
    fn from(e: SabreError) -> Self {
        CompileError::Routing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CompileError::Capacity {
            required: 400,
            available: 300,
        };
        assert!(e.to_string().contains("400"));
        assert!(e.source().is_none());
        let e: CompileError = SabreError::Disconnected.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}
