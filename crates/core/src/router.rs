//! High-parallelism AOD router (paper Sec. III-C, Figs. 8–11).
//!
//! The router iterates over the circuit DAG's front layer. Each iteration
//! executes all frontier one-qubit gates (Raman laser), then greedily
//! builds a *maximal legal parallel set* of two-qubit gates: starting from
//! one gate, candidates are added while three hardware constraints hold,
//! then the AOD rows/columns move and the global Rydberg laser fires.
//!
//! # Geometry ("track" model)
//!
//! Coordinates are measured in trap-spacing units (1 track = `d` = 15 µm).
//! SLM atom `(r, c)` sits at `(r, c)`; AOD *k*'s row `r` / column `c` rest
//! at `r + fy_k` / `c + fx_k` (staggered fractional homes, see
//! [`raa_arch::RaaConfig`]). Executing a gate parks the movable atom at its
//! partner's position plus a small diagonal offset (`0.05, 0.08`) — within
//! the Rydberg radius `r_b = 1/6` track.
//!
//! # Constraints
//!
//! * **C1 — global Rydberg addressing** (Fig. 9): after the move, the set
//!   of atom pairs within `r_b` must be *exactly* the scheduled gate set;
//!   additionally gate participants must keep the paper's 2.5 `r_b` safety
//!   margin from SLM atoms and from other participants. Resting atoms of
//!   un-involved arrays are treated as parked (see DESIGN.md §5).
//! * **C2 — row/column order** (Fig. 10): within one AOD, row and column
//!   coordinates must remain strictly increasing.
//! * **C3 — no overlap** (Fig. 11): adjacent rows/columns of one AOD must
//!   stay at least one Rydberg radius apart (closer means their atoms
//!   blockade each other); violations are counted as *overlaps* (Fig. 24's
//!   metric).
//!
//! Each constraint can be individually relaxed (Fig. 22).

use std::collections::{HashMap, HashSet};

use raa_arch::{ArrayIndex, RaaConfig, TrapSite};
use raa_circuit::{DagSchedule, Gate, GateIdx};
use raa_physics::{HardwareParams, MovementLedger};

use crate::atom_mapper::AtomMapping;
use crate::config::{ProximityIndex, Relaxation, RouterMode, RouterStrategy};
use crate::error::CompileError;
use crate::program::{LineMove, RouterStats, Stage};
use crate::transpile::TranspiledCircuit;
use raa_spatial::{FastMap, FastSet, SpatialGrid};
use raa_trace::Counter;

// Detail-level telemetry (see docs/OBSERVABILITY.md). `route.try_add`
// counts speculative gate-admission attempts — the hot path PR 5's
// profiling traced the QAOA-1024 route time to — and the
// `route.reject.*` family splits the failures by violated constraint.
static TRY_ADD: Counter = Counter::new("route.try_add");
static GATES_PLANNED: Counter = Counter::new("route.gates_planned");
static REJECT_TARGET: Counter = Counter::new("route.reject.target_conflict");
static REJECT_ADDRESSING: Counter = Counter::new("route.reject.addressing");
static REJECT_ORDER: Counter = Counter::new("route.reject.order");
static REJECT_OVERLAP: Counter = Counter::new("route.reject.overlap");
static RETRACT_LINES: Counter = Counter::new("route.retract.lines");
static RETRACT_MEMO_SCANS: Counter = Counter::new("route.retract.memo_scan");
static RETRACT_UNRESOLVED: Counter = Counter::new("route.retract.unresolved");
static RESET_STAGES: Counter = Counter::new("route.reset_stages");
static TRANSFER_FALLBACKS: Counter = Counter::new("route.transfer_fallbacks");

/// Rydberg radius in track units (`r_b = d/6`).
pub(crate) const INTERACT_R: f64 = 1.0 / 6.0;
/// Safety band in track units (2.5 `r_b`).
const BAND_R: f64 = 5.0 / 12.0;
/// Row offset of a parked interacting atom relative to its partner.
const DELTA_ROW: f64 = 0.05;
/// Column offset of a parked interacting atom relative to its partner.
const DELTA_COL: f64 = 0.08;
/// Distance (in tracks) charged for parking or unparking one array.
pub(crate) const PARK_TRAVEL: f64 = 2.0;

/// Identifies one movable line: `(aod index 0-based, axis, line index)`.
type LineKey = (u8, Axis, u16);

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Axis {
    Row,
    Col,
}

/// Why a candidate gate was rejected from the current stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reject {
    /// A required row/column already has a different target.
    TargetConflict,
    /// C1: unwanted Rydberg-range pair or safety-band violation.
    Addressing,
    /// C2: row/column order violation.
    Order,
    /// C3: rows/columns of one AOD would overlap.
    Overlap,
}

/// Output of the movement-routing pass.
#[derive(Debug, Clone)]
pub struct RoutedProgram {
    /// The executed stages, in order.
    pub stages: Vec<Stage>,
    /// Aggregate statistics.
    pub stats: RouterStats,
}

struct RouterState<'a> {
    hw: &'a RaaConfig,
    relax: Relaxation,
    /// Which proximity-candidate enumeration the constraint checks use.
    index: ProximityIndex,
    /// Committed line positions, indexed `[aod][line]`.
    cur_row: Vec<Vec<f64>>,
    cur_col: Vec<Vec<f64>>,
    /// Effective positions = committed plus tentative plan targets.
    eff_row: Vec<Vec<f64>>,
    eff_col: Vec<Vec<f64>>,
    parked: Vec<bool>,
    site_of_slot: Vec<TrapSite>,
    /// Atoms grouped by (aod, axis, line) for dirty-set computation.
    atoms_on_line: FastMap<LineKey, Vec<u32>>,
    /// Atoms per AOD array (for parking/cooling).
    atoms_in_aod: Vec<Vec<u32>>,
    /// Spatial index over every slot's *effective* position, kept in sync
    /// with `eff_row`/`eff_col` by the axis-mutation helpers. Cell size is
    /// [`BAND_R`], the largest radius any constraint check queries.
    grid: SpatialGrid,
}

/// Tentative stage plan with an undo journal.
///
/// Explicit `targets` pin the lines that gates need at exact positions;
/// every other line of an affected axis is *repositioned* by
/// [`solve_axis`] so that order (C2) and minimum separation (C3) hold —
/// modelling the physical ability of an AOD to compress or shift its
/// un-involved rows/columns within the same movement.
#[derive(Default)]
struct Plan {
    /// Explicit line targets required by the planned gates.
    targets: FastMap<LineKey, f64>,
    /// Rollback journal for `targets`: `(key, previous value if any)`.
    target_journal: Vec<(LineKey, Option<f64>)>,
    /// Rollback snapshots of solved axis positions.
    axis_journal: Vec<((u8, Axis), Vec<f64>)>,
    /// Arrays being unparked this stage.
    unparked: FastSet<u8>,
    gates: Vec<(GateIdx, u32, u32)>,
    participants: FastSet<u32>,
    desired: FastSet<(u32, u32)>,
}

impl Plan {
    fn checkpoint(&self) -> (usize, usize, usize) {
        (
            self.target_journal.len(),
            self.axis_journal.len(),
            self.gates.len(),
        )
    }
}

/// Minimum separation between two lines of one AOD (C3): one Rydberg
/// radius plus slack.
const LINE_GAP: f64 = INTERACT_R + 0.01;

/// First candidate of the fallback retraction scan: just beyond the
/// blockade radius — the smallest displacement that can separate a
/// pulsed pair.
const RETRACT_MIN: f64 = INTERACT_R + 0.01;
/// Step of the fallback retraction scan: a sixth of the blockade radius
/// (≈0.028 tracks, denser sampling than the legacy hard-coded
/// 0.03-track ladder, though on a different lattice). Any clear
/// interval wider than one step is guaranteed to contain a candidate;
/// narrower slivers between two blockers can fall between samples —
/// the reset fallback covers those.
const RETRACT_STEP: f64 = INTERACT_R / 6.0;
/// Last candidate of the fallback retraction scan: one trap pitch plus
/// the safety band. A line displaced farther than that sits beyond the
/// adjacent track's safety band, where re-homing the array (the reset
/// fallback) is always the cheaper recovery.
const RETRACT_MAX: f64 = 1.0 + BAND_R;

/// Fallback retraction scan, outward in |amount|: `±(RETRACT_MIN +
/// i·RETRACT_STEP)` up to [`RETRACT_MAX`]. All three bounds are derived
/// from the hardware geometry ([`INTERACT_R`]/[`BAND_R`]) rather than
/// hard-coded; the previous fixed 28-step ladder capped at ±1.02 tracks
/// and missed clear slots that only exist beyond one trap pitch (see the
/// `fallback_ladder_separates_beyond_legacy_cap` regression test).
fn fallback_amounts() -> impl Iterator<Item = f64> {
    let steps = ((RETRACT_MAX - RETRACT_MIN) / RETRACT_STEP).floor() as usize;
    (0..=steps).flat_map(|i| {
        let a = RETRACT_MIN + i as f64 * RETRACT_STEP;
        [a, -a]
    })
}

/// Repositions the untargeted lines of one axis around the pinned targets.
///
/// Returns the full position vector, or the violated constraint. Pinned
/// lines must be strictly increasing in index order (C2); untargeted lines
/// in between are squeezed into the gap with at least [`LINE_GAP`]
/// separation (C3), preferring half-cell offsets that keep their atoms
/// away from the SLM lattice; lines outside the pinned range walk outward
/// at one-cell pitch on half-cell offsets.
fn solve_axis(
    cur: &[f64],
    targets: &FastMap<LineKey, f64>,
    key_of: impl Fn(u16) -> LineKey,
    relax: Relaxation,
) -> Result<Vec<f64>, Reject> {
    let n = cur.len();
    let pinned: Vec<(usize, f64)> = (0..n)
        .filter_map(|i| targets.get(&key_of(i as u16)).map(|&t| (i, t)))
        .collect();
    if pinned.is_empty() {
        return Ok(cur.to_vec());
    }
    // C2 among pinned lines.
    if !relax.allow_order_violation {
        for w in pinned.windows(2) {
            if w[1].1 - w[0].1 <= 1e-9 {
                return Err(Reject::Order);
            }
        }
    }
    // C3 among pinned lines.
    if !relax.allow_overlap {
        for w in pinned.windows(2) {
            if (w[1].1 - w[0].1).abs() < ((w[1].0 - w[0].0) as f64) * LINE_GAP {
                return Err(Reject::Overlap);
            }
        }
    }
    let mut out = cur.to_vec();
    for &(i, t) in &pinned {
        out[i] = t;
    }
    // Left of the first pinned line: keep current when legal, else walk
    // outward at one-cell pitch on a half-cell offset.
    let (first_i, first_t) = pinned[0];
    let mut bound = first_t;
    for i in (0..first_i).rev() {
        if out[i] < bound - LINE_GAP {
            bound = out[i];
        } else {
            out[i] = (bound - 0.55).floor() + 0.5;
            if out[i] >= bound - LINE_GAP {
                out[i] = bound - 1.0;
            }
            bound = out[i];
        }
    }
    // Right of the last pinned line: mirror image.
    let (last_i, last_t) = *pinned.last().expect("nonempty");
    let mut bound = last_t;
    for slot in out.iter_mut().take(n).skip(last_i + 1) {
        if *slot > bound + LINE_GAP {
            bound = *slot;
        } else {
            *slot = (bound + 0.55).ceil() + 0.5;
            if *slot <= bound + LINE_GAP {
                *slot = bound + 1.0;
            }
            bound = *slot;
        }
    }
    // Between consecutive pinned lines: keep current when legal, else
    // spread evenly.
    for w in pinned.windows(2) {
        let (li, lt) = w[0];
        let (ri, rt) = w[1];
        let k = ri - li - 1;
        if k == 0 {
            continue;
        }
        let legal = (li + 1..ri)
            .all(|i| out[i] > out[i - 1] + LINE_GAP && out[i] < rt - LINE_GAP * ((ri - i) as f64));
        if legal {
            continue;
        }
        if !relax.allow_overlap && rt - lt < (k as f64 + 1.0) * LINE_GAP {
            return Err(Reject::Overlap);
        }
        let step = (rt - lt) / (k as f64 + 1.0);
        for (m, i) in (li + 1..ri).enumerate() {
            out[i] = lt + step * (m as f64 + 1.0);
        }
    }
    // Full order re-check (untargeted placements included).
    if !relax.allow_order_violation {
        for i in 1..n {
            if out[i] - out[i - 1] <= 1e-9 {
                return Err(Reject::Order);
            }
        }
    }
    Ok(out)
}

/// One hypothetical retraction position being tested for clearance:
/// `atom` (at `site`, on line `key`) moved to `p`.
#[derive(Clone, Copy)]
struct RetractionProbe {
    key: LineKey,
    site: TrapSite,
    p: (f64, f64),
    atom: u32,
}

impl<'a> RouterState<'a> {
    fn new(
        hw: &'a RaaConfig,
        mapping: &AtomMapping,
        relax: Relaxation,
        index: ProximityIndex,
    ) -> Self {
        let num_aods = hw.num_aods();
        let mut cur_row = Vec::with_capacity(num_aods);
        let mut cur_col = Vec::with_capacity(num_aods);
        for k in 0..num_aods {
            let dims = hw.dims(ArrayIndex::aod(k));
            let fy = hw.home_y(ArrayIndex::aod(k), 0) / hw.spacing_um;
            let fx = hw.home_x(ArrayIndex::aod(k), 0) / hw.spacing_um;
            cur_row.push((0..dims.rows).map(|r| r as f64 + fy).collect());
            cur_col.push((0..dims.cols).map(|c| c as f64 + fx).collect());
        }
        let mut atoms_on_line: FastMap<LineKey, Vec<u32>> = FastMap::default();
        let mut atoms_in_aod: Vec<Vec<u32>> = vec![Vec::new(); num_aods];
        for (slot, site) in mapping.site_of_slot.iter().enumerate() {
            if !site.array.is_slm() {
                let k = site.array.aod_number() as u8;
                atoms_on_line
                    .entry((k, Axis::Row, site.row))
                    .or_default()
                    .push(slot as u32);
                atoms_on_line
                    .entry((k, Axis::Col, site.col))
                    .or_default()
                    .push(slot as u32);
                atoms_in_aod[k as usize].push(slot as u32);
            }
        }
        let mut state = RouterState {
            hw,
            relax,
            index,
            eff_row: cur_row.clone(),
            eff_col: cur_col.clone(),
            cur_row,
            cur_col,
            parked: vec![false; num_aods],
            site_of_slot: mapping.site_of_slot.clone(),
            atoms_on_line,
            atoms_in_aod,
            grid: SpatialGrid::new(BAND_R),
        };
        for slot in 0..state.site_of_slot.len() as u32 {
            let p = state.pos(slot);
            state.grid.insert(slot, p);
        }
        state
    }

    /// Effective position (track units) of a slot under the current plan.
    fn pos(&self, slot: u32) -> (f64, f64) {
        let site = self.site_of_slot[slot as usize];
        if site.array.is_slm() {
            (site.row as f64, site.col as f64)
        } else {
            let k = site.array.aod_number();
            (
                self.eff_row[k][site.row as usize],
                self.eff_col[k][site.col as usize],
            )
        }
    }

    fn home_row(&self, k: usize, r: usize) -> f64 {
        r as f64 + self.hw.home_y(ArrayIndex::aod(k), 0) / self.hw.spacing_um
    }

    fn home_col(&self, k: usize, c: usize) -> f64 {
        c as f64 + self.hw.home_x(ArrayIndex::aod(k), 0) / self.hw.spacing_um
    }

    fn is_parked_slot(&self, slot: u32, plan: &Plan) -> bool {
        let site = self.site_of_slot[slot as usize];
        if site.array.is_slm() {
            return false;
        }
        let k = site.array.aod_number();
        self.parked[k] && !plan.unparked.contains(&(k as u8))
    }

    /// Refreshes the spatial index for every atom on line `key` (and
    /// collects them into `dirty`, when given) after the line's effective
    /// position changed.
    fn sync_line_grid(&mut self, key: LineKey, mut dirty: Option<&mut FastSet<u32>>) {
        let Some(atoms) = self.atoms_on_line.get(&key) else {
            return;
        };
        let grid = &mut self.grid;
        let (eff_row, eff_col) = (&self.eff_row, &self.eff_col);
        let sites = &self.site_of_slot;
        for &atom in atoms {
            let site = sites[atom as usize];
            let k = site.array.aod_number();
            grid.update(
                atom,
                (eff_row[k][site.row as usize], eff_col[k][site.col as usize]),
            );
            if let Some(d) = dirty.as_deref_mut() {
                d.insert(atom);
            }
        }
    }

    /// Replaces one axis's effective positions, keeping the spatial index
    /// in sync for every atom whose line actually moved (optionally
    /// collecting those atoms into `dirty`).
    fn set_eff_axis(
        &mut self,
        k: u8,
        axis: Axis,
        new_vals: Vec<f64>,
        mut dirty: Option<&mut FastSet<u32>>,
    ) {
        let old = match axis {
            Axis::Row => &self.eff_row[k as usize],
            Axis::Col => &self.eff_col[k as usize],
        };
        let changed: Vec<u16> = old
            .iter()
            .zip(new_vals.iter())
            .enumerate()
            .filter(|&(_, (&o, &n))| (o - n).abs() > 1e-12)
            .map(|(i, _)| i as u16)
            .collect();
        match axis {
            Axis::Row => self.eff_row[k as usize] = new_vals,
            Axis::Col => self.eff_col[k as usize] = new_vals,
        }
        for i in changed {
            self.sync_line_grid((k, axis, i), dirty.as_deref_mut());
        }
    }

    /// Refreshes the spatial index for every atom of AOD `k` (used by the
    /// whole-array re-homing of [`RouterState::reset`]).
    fn resync_aod_grid(&mut self, k: usize) {
        let grid = &mut self.grid;
        let (eff_row, eff_col) = (&self.eff_row, &self.eff_col);
        let sites = &self.site_of_slot;
        for &atom in &self.atoms_in_aod[k] {
            let site = sites[atom as usize];
            let kk = site.array.aod_number();
            grid.update(
                atom,
                (
                    eff_row[kk][site.row as usize],
                    eff_col[kk][site.col as usize],
                ),
            );
        }
    }

    /// Records an explicit target; `false` on conflict with an existing
    /// different target for the same line.
    fn set_target(&mut self, plan: &mut Plan, key: LineKey, value: f64) -> bool {
        match plan.targets.get(&key) {
            Some(&t) => (t - value).abs() < 1e-9,
            None => {
                plan.target_journal.push((key, None));
                plan.targets.insert(key, value);
                true
            }
        }
    }

    /// Reverts the plan to a checkpoint taken before a failed `try_add`.
    fn rollback(
        &mut self,
        plan: &mut Plan,
        cp: (usize, usize, usize),
        desired_key: Option<(u32, u32)>,
        participants: &[u32],
    ) {
        while plan.target_journal.len() > cp.0 {
            let (key, old) = plan.target_journal.pop().expect("journal nonempty");
            match old {
                Some(v) => {
                    plan.targets.insert(key, v);
                }
                None => {
                    plan.targets.remove(&key);
                }
            }
        }
        while plan.axis_journal.len() > cp.1 {
            let ((k, axis), snapshot) = plan.axis_journal.pop().expect("journal nonempty");
            self.set_eff_axis(k, axis, snapshot, None);
        }
        plan.gates.truncate(cp.2);
        // Unparks are only kept if an accepted gate still needs them.
        let mut needed: FastSet<u8> = FastSet::default();
        for &(_, a, b) in &plan.gates {
            for s in [a, b] {
                let site = self.site_of_slot[s as usize];
                if !site.array.is_slm() {
                    let k = site.array.aod_number();
                    if self.parked[k] {
                        needed.insert(k as u8);
                    }
                }
            }
        }
        plan.unparked = needed;
        if let Some(key) = desired_key {
            plan.desired.remove(&key);
        }
        for p in participants {
            if !plan.gates.iter().any(|&(_, a, b)| a == *p || b == *p) {
                plan.participants.remove(p);
            }
        }
    }

    /// Attempts to add gate `g` between slots `a` and `b` to the plan.
    fn try_add(&mut self, plan: &mut Plan, g: GateIdx, a: u32, b: u32) -> Result<(), Reject> {
        let cp = plan.checkpoint();
        let site_a = self.site_of_slot[a as usize];
        let site_b = self.site_of_slot[b as usize];
        debug_assert_ne!(
            site_a.array, site_b.array,
            "intra-array gate reached router"
        );

        // Unpark any parked participant arrays.
        for site in [site_a, site_b] {
            if !site.array.is_slm() {
                let k = site.array.aod_number();
                if self.parked[k] {
                    plan.unparked.insert(k as u8);
                }
            }
        }

        // Compute explicit movement targets.
        let ok = if site_a.array.is_slm() || site_b.array.is_slm() {
            let (slm, aod) = if site_a.array.is_slm() {
                (site_a, site_b)
            } else {
                (site_b, site_a)
            };
            let k = aod.array.aod_number() as u8;
            self.set_target(plan, (k, Axis::Row, aod.row), slm.row as f64 + DELTA_ROW)
                && self.set_target(plan, (k, Axis::Col, aod.col), slm.col as f64 + DELTA_COL)
        } else {
            // AOD–AOD: the lower-indexed array anchors; the other moves to
            // the anchor's effective position plus the interaction offset.
            let (anchor, mover) = if site_a.array.0 < site_b.array.0 {
                (site_a, site_b)
            } else {
                (site_b, site_a)
            };
            let ka = anchor.array.aod_number();
            let km = mover.array.aod_number() as u8;
            let (ar, ac) = (
                self.eff_row[ka][anchor.row as usize],
                self.eff_col[ka][anchor.col as usize],
            );
            // Hold the anchor's lines so later gates can't move them away.
            self.set_target(plan, (ka as u8, Axis::Row, anchor.row), ar)
                && self.set_target(plan, (ka as u8, Axis::Col, anchor.col), ac)
                && self.set_target(plan, (km, Axis::Row, mover.row), ar + DELTA_ROW)
                && self.set_target(plan, (km, Axis::Col, mover.col), ac + DELTA_COL)
        };
        if !ok {
            self.rollback(plan, cp, None, &[]);
            return Err(Reject::TargetConflict);
        }

        let key = norm_pair(a, b);
        plan.desired.insert(key);
        plan.participants.insert(a);
        plan.participants.insert(b);
        plan.gates.push((g, a, b));

        // Re-solve every axis touched by the new targets: C2/C3 plus the
        // repositioning of untargeted lines. Sorted, not hashed: the loop
        // below early-exits on the first unsolvable axis, so a seeded
        // hash order would make the rejection returned (and the work
        // telemetry records) vary run to run.
        let mut affected: Vec<(u8, Axis)> = plan.target_journal[cp.0..]
            .iter()
            .map(|&((k, axis, _), _)| (k, axis))
            .collect();
        affected.sort_unstable();
        affected.dedup();
        let mut dirty: FastSet<u32> = FastSet::default();
        dirty.insert(a);
        dirty.insert(b);
        for &(k, axis) in &affected {
            let cur = match axis {
                Axis::Row => self.eff_row[k as usize].clone(),
                Axis::Col => self.eff_col[k as usize].clone(),
            };
            let solved = match solve_axis(&cur, &plan.targets, |i| (k, axis, i), self.relax) {
                Ok(v) => v,
                Err(rej) => {
                    self.rollback(plan, cp, Some(key), &[a, b]);
                    return Err(rej);
                }
            };
            plan.axis_journal.push(((k, axis), cur));
            // Assign, syncing the spatial index and collecting the atoms
            // whose line actually moved into the dirty set.
            self.set_eff_axis(k, axis, solved, Some(&mut dirty));
        }
        // Atoms of newly unparked arrays are dirty too.
        for &k in &plan.unparked {
            dirty.extend(self.atoms_in_aod[k as usize].iter().copied());
        }

        // C1: exact interaction set plus participant safety bands.
        if !self.relax.individual_addressing {
            if let Err(rej) = self.check_addressing(plan, &dirty) {
                self.rollback(plan, cp, Some(key), &[a, b]);
                return Err(rej);
            }
        }

        // Desired pairs must all still touch (an anchor may have moved).
        for &(da, db) in plan.desired.iter() {
            let (pa, pb) = (self.pos(da), self.pos(db));
            if dist(pa, pb) > INTERACT_R + 1e-9 {
                self.rollback(plan, cp, Some(key), &[a, b]);
                return Err(Reject::TargetConflict);
            }
        }
        Ok(())
    }

    /// C1 over the dirty set: exact interaction set plus participant
    /// safety bands.
    ///
    /// The per-pair predicate is [`RouterState::addressing_pair_ok`];
    /// this function only chooses which candidate atoms `y` to test
    /// against each dirty atom. The grid enumeration is a superset of
    /// every atom within [`BAND_R`] (the largest radius the predicate
    /// compares against), so both modes accept and reject identically.
    fn check_addressing(&self, plan: &Plan, dirty: &FastSet<u32>) -> Result<(), Reject> {
        let mut buf: Vec<u32> = Vec::new();
        for &x in dirty {
            if self.is_parked_slot(x, plan) {
                continue;
            }
            let px = self.pos(x);
            match self.index {
                ProximityIndex::Exhaustive => {
                    for y in 0..self.site_of_slot.len() as u32 {
                        self.addressing_pair_ok(plan, dirty, x, px, y)?;
                    }
                }
                ProximityIndex::Grid => {
                    buf.clear();
                    self.grid.candidates_into(px, BAND_R, &mut buf);
                    for &y in &buf {
                        self.addressing_pair_ok(plan, dirty, x, px, y)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// The C1 predicate for one ordered pair of the dirty scan: `Ok` when
    /// `y` is skippable or clear of `x`, `Err` on an unwanted interaction
    /// or a safety-band violation. Pairs farther apart than [`BAND_R`]
    /// always pass, which is what makes the grid enumeration above exact.
    #[inline]
    fn addressing_pair_ok(
        &self,
        plan: &Plan,
        dirty: &FastSet<u32>,
        x: u32,
        px: (f64, f64),
        y: u32,
    ) -> Result<(), Reject> {
        if y == x || self.is_parked_slot(y, plan) {
            return Ok(());
        }
        // Avoid double-checking dirty pairs.
        if dirty.contains(&y) && y < x {
            return Ok(());
        }
        let d = dist(px, self.pos(y));
        if plan.desired.contains(&norm_pair(x, y)) {
            return Ok(()); // validated separately
        }
        if d <= INTERACT_R {
            return Err(Reject::Addressing); // unwanted gate
        }
        let x_part = plan.participants.contains(&x);
        let y_part = plan.participants.contains(&y);
        let y_slm = self.site_of_slot[y as usize].array.is_slm();
        let x_slm = self.site_of_slot[x as usize].array.is_slm();
        let band_applies = (x_part && (y_part || y_slm)) || (y_part && x_slm);
        if band_applies && d < BAND_R {
            return Err(Reject::Addressing);
        }
        Ok(())
    }

    /// Commits the plan: updates committed positions and returns the
    /// per-line moves plus per-atom row/column track deltas (the ledger is
    /// fed once by the caller, after retraction is folded in).
    fn commit(&mut self, plan: &Plan) -> (Vec<LineMove>, HashMap<u32, f64>, HashMap<u32, f64>) {
        let mut moves = Vec::new();
        let mut row_delta: HashMap<u32, f64> = HashMap::new();
        let mut col_delta: HashMap<u32, f64> = HashMap::new();

        // Unparked arrays travel from the parking zone. Sorted so the
        // emitted move list (and thus the serialized stream) is
        // deterministic.
        let mut unparked: Vec<u8> = plan.unparked.iter().copied().collect();
        unparked.sort_unstable();
        for k in unparked {
            self.parked[k as usize] = false;
            for &atom in &self.atoms_in_aod[k as usize] {
                row_delta.insert(atom, PARK_TRAVEL);
            }
            moves.push(LineMove {
                aod: k,
                axis_row: true,
                line: u16::MAX,
                from_track: f64::NAN,
                to_track: f64::NAN,
            });
        }

        // Every line whose solved position differs from the committed one
        // moves (explicit targets and repositioned lines alike).
        for k in 0..self.hw.num_aods() {
            for axis in [Axis::Row, Axis::Col] {
                let (cur, eff) = match axis {
                    Axis::Row => (&mut self.cur_row[k], &self.eff_row[k]),
                    Axis::Col => (&mut self.cur_col[k], &self.eff_col[k]),
                };
                for idx in 0..cur.len() {
                    let old = cur[idx];
                    let new = eff[idx];
                    if (old - new).abs() < 1e-12 {
                        continue;
                    }
                    moves.push(LineMove {
                        aod: k as u8,
                        axis_row: axis == Axis::Row,
                        line: idx as u16,
                        from_track: old,
                        to_track: new,
                    });
                    let delta = (new - old).abs();
                    if let Some(atoms) = self.atoms_on_line.get(&(k as u8, axis, idx as u16)) {
                        for &atom in atoms {
                            match axis {
                                Axis::Row => *row_delta.entry(atom).or_insert(0.0) += delta,
                                Axis::Col => *col_delta.entry(atom).or_insert(0.0) += delta,
                            }
                        }
                    }
                    cur[idx] = new;
                }
            }
        }

        (moves, row_delta, col_delta)
    }

    /// Retracts the movable atom of each executed gate out of the Rydberg
    /// radius (move-in, pulse, move-out: the pulse must not re-fire on the
    /// next stage). Retraction distances are clamped so line order and the
    /// minimum separation survive. Returns the retraction moves plus
    /// whether every executed pair actually separated beyond the Rydberg
    /// radius — when dense neighborhoods leave no clear retraction slot,
    /// the caller must restore separation (reset fallback) before the
    /// next pulse.
    fn apply_retraction(
        &mut self,
        plan: &Plan,
        row_delta: &mut HashMap<u32, f64>,
        col_delta: &mut HashMap<u32, f64>,
    ) -> (Vec<LineMove>, bool) {
        /// Preferred retraction offsets; a finer ± scan follows when all
        /// of these are blocked by neighboring lines or resting atoms.
        const AMOUNTS: [f64; 8] = [0.3, -0.3, 0.45, -0.45, 0.2, -0.2, 0.6, -0.6];
        let mut lines: Vec<LineKey> = Vec::new();
        for &(_, a, b) in &plan.gates {
            let sa = self.site_of_slot[a as usize];
            let sb = self.site_of_slot[b as usize];
            let movable = if sa.array.is_slm() {
                sb
            } else if sb.array.is_slm() || sa.array.0 > sb.array.0 {
                sa
            } else {
                sb
            };
            let k = movable.array.aod_number() as u8;
            for key in [(k, Axis::Row, movable.row), (k, Axis::Col, movable.col)] {
                if !lines.contains(&key) {
                    lines.push(key);
                }
            }
        }
        // Lines queued for retraction after the current one: their atoms
        // will still move, so proximity to them is checked on their turn.
        let mut pending: FastSet<LineKey> = lines.iter().copied().collect();
        let mut moves = Vec::new();
        RETRACT_LINES.add(lines.len() as u64);
        for key in lines {
            let (k, axis, idx) = key;
            pending.remove(&key);
            let i = idx as usize;
            let pos = match axis {
                Axis::Row => self.cur_row[k as usize][i],
                Axis::Col => self.cur_col[k as usize][i],
            };
            let (upper, lower) = {
                let arr = match axis {
                    Axis::Row => &self.cur_row[k as usize],
                    Axis::Col => &self.cur_col[k as usize],
                };
                (
                    arr.get(i + 1).copied().unwrap_or(f64::INFINITY),
                    if i > 0 { arr[i - 1] } else { f64::NEG_INFINITY },
                )
            };
            let mut chosen = None;
            match self.index {
                ProximityIndex::Exhaustive => {
                    for amount in AMOUNTS.into_iter().chain(fallback_amounts()) {
                        let new = pos + amount;
                        if new >= upper - LINE_GAP || new <= lower + LINE_GAP {
                            continue;
                        }
                        if self.retraction_clear(key, new, plan, &pending) {
                            chosen = Some(amount);
                            break;
                        }
                    }
                }
                ProximityIndex::Grid => {
                    // Memoized probe scan: collect each atom's possible
                    // blockers once (one wide grid query per atom instead
                    // of one per atom × candidate amount), then test the
                    // exact clearance predicate per amount against those
                    // few positions. Decisions are identical to the
                    // per-probe enumeration — the wide query is a
                    // superset of anything any probe can see, and the
                    // predicate is unchanged.
                    let blockers = self.collect_retraction_blockers(key, plan, &pending);
                    'amounts: for amount in AMOUNTS.into_iter().chain(fallback_amounts()) {
                        let new = pos + amount;
                        if new >= upper - LINE_GAP || new <= lower + LINE_GAP {
                            continue;
                        }
                        for (site, atom_blockers) in &blockers {
                            let p = match axis {
                                Axis::Row => (new, self.eff_col[k as usize][site.col as usize]),
                                Axis::Col => (self.eff_row[k as usize][site.row as usize], new),
                            };
                            if atom_blockers
                                .iter()
                                .any(|&b| dist(p, b) <= INTERACT_R + 1e-9)
                            {
                                continue 'amounts;
                            }
                        }
                        chosen = Some(amount);
                        break;
                    }
                }
            }
            let Some(amount) = chosen else {
                RETRACT_UNRESOLVED.incr();
                continue;
            };
            let new = pos + amount;
            match axis {
                Axis::Row => {
                    self.cur_row[k as usize][i] = new;
                    self.eff_row[k as usize][i] = new;
                }
                Axis::Col => {
                    self.cur_col[k as usize][i] = new;
                    self.eff_col[k as usize][i] = new;
                }
            }
            self.sync_line_grid(key, None);
            moves.push(LineMove {
                aod: k,
                axis_row: axis == Axis::Row,
                line: idx,
                from_track: pos,
                to_track: new,
            });
            if let Some(atoms) = self.atoms_on_line.get(&key) {
                for &atom in atoms {
                    let map = match axis {
                        Axis::Row => &mut *row_delta,
                        Axis::Col => &mut *col_delta,
                    };
                    *map.entry(atom).or_insert(0.0) += amount.abs();
                }
            }
        }
        // Did every pulsed pair actually separate? A pair is clear when at
        // least one of its atoms' lines moved far enough.
        let separated = plan
            .desired
            .iter()
            .all(|&(a, b)| dist(self.pos(a), self.pos(b)) > INTERACT_R + 1e-9);
        (moves, separated)
    }

    /// Whether moving `key` to `new_pos` keeps every atom on the line out
    /// of the Rydberg radius of every other active atom (atoms on lines
    /// still pending retraction are exempt — they are checked when their
    /// own line retracts).
    fn retraction_clear(
        &self,
        key: LineKey,
        new_pos: f64,
        plan: &Plan,
        pending: &FastSet<LineKey>,
    ) -> bool {
        let (k, axis, _) = key;
        let Some(atoms) = self.atoms_on_line.get(&key) else {
            return true;
        };
        let mut buf: Vec<u32> = Vec::new();
        for &atom in atoms {
            let site = self.site_of_slot[atom as usize];
            let p = match axis {
                Axis::Row => (new_pos, self.eff_col[k as usize][site.col as usize]),
                Axis::Col => (self.eff_row[k as usize][site.row as usize], new_pos),
            };
            let probe = RetractionProbe { key, site, p, atom };
            match self.index {
                ProximityIndex::Exhaustive => {
                    for y in 0..self.site_of_slot.len() as u32 {
                        if self.retraction_blocked_by(&probe, plan, pending, y) {
                            return false;
                        }
                    }
                }
                ProximityIndex::Grid => {
                    buf.clear();
                    self.grid.candidates_into(p, INTERACT_R + 1e-9, &mut buf);
                    for &y in &buf {
                        if self.retraction_blocked_by(&probe, plan, pending, y) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Whether atom `y` is exempt from blocking any retraction of
    /// `atom` (on line `key`, loaded at `site`) — a position-independent
    /// predicate: `y` is the retracting atom itself, parked out of the
    /// field, on a line still pending its own retraction, or rides the
    /// retracting line (and so moves with it).
    #[inline]
    fn retraction_exempt(
        &self,
        key: LineKey,
        site: TrapSite,
        atom: u32,
        plan: &Plan,
        pending: &FastSet<LineKey>,
        y: u32,
    ) -> bool {
        let (k, axis, _) = key;
        if y == atom || self.is_parked_slot(y, plan) {
            return true;
        }
        let ysite = self.site_of_slot[y as usize];
        if !ysite.array.is_slm() {
            let yk = ysite.array.aod_number() as u8;
            if pending.contains(&(yk, Axis::Row, ysite.row))
                || pending.contains(&(yk, Axis::Col, ysite.col))
            {
                return true;
            }
            // Atoms sharing the retracting line move with it.
            if yk == k
                && ((axis == Axis::Row && ysite.row == site.row)
                    || (axis == Axis::Col && ysite.col == site.col))
            {
                return true;
            }
        }
        false
    }

    /// Whether active atom `y` blocks the retraction candidate `probe`.
    /// Atoms farther than `INTERACT_R + 1e-9` from the probed position
    /// never block, so enumerating only the grid candidates within that
    /// radius is exact.
    #[inline]
    fn retraction_blocked_by(
        &self,
        probe: &RetractionProbe,
        plan: &Plan,
        pending: &FastSet<LineKey>,
        y: u32,
    ) -> bool {
        let RetractionProbe { key, site, p, atom } = *probe;
        !self.retraction_exempt(key, site, atom, plan, pending, y)
            && dist(p, self.pos(y)) <= INTERACT_R + 1e-9
    }

    /// Memoization for the grid-mode retraction scan: for every atom on
    /// the retracting line, the positions of every non-exempt atom that
    /// *any* candidate amount could collide with — one grid query of
    /// radius [`RETRACT_MAX`]` + `[`INTERACT_R`] around the atom's
    /// current position per atom, instead of one query per atom ×
    /// candidate probe. A blocker of any probe lies within
    /// `INTERACT_R + 1e-9` of a position at most [`RETRACT_MAX`] from
    /// the atom's current one, so the wide query is a strict superset
    /// and the per-amount exact predicate keeps accept/reject identical
    /// to the unmemoized enumeration.
    fn collect_retraction_blockers(
        &self,
        key: LineKey,
        plan: &Plan,
        pending: &FastSet<LineKey>,
    ) -> Vec<(TrapSite, Vec<(f64, f64)>)> {
        let Some(atoms) = self.atoms_on_line.get(&key) else {
            return Vec::new();
        };
        RETRACT_MEMO_SCANS.add(atoms.len() as u64);
        let mut out = Vec::with_capacity(atoms.len());
        let mut buf: Vec<u32> = Vec::new();
        for &atom in atoms {
            let site = self.site_of_slot[atom as usize];
            let base = self.pos(atom);
            buf.clear();
            self.grid
                .candidates_into(base, RETRACT_MAX + INTERACT_R + 1e-9, &mut buf);
            let blockers: Vec<(f64, f64)> = buf
                .iter()
                .filter(|&&y| !self.retraction_exempt(key, site, atom, plan, pending, y))
                .map(|&y| self.pos(y))
                .collect();
            out.push((site, blockers));
        }
        out
    }

    /// Parks every AOD array except those in `keep`, and homes the kept
    /// ones. Used by the reset fallback when no gate is schedulable.
    fn reset(
        &mut self,
        keep: &HashSet<usize>,
        params: &HardwareParams,
        ledger: &mut MovementLedger<'_>,
        num_qubits: usize,
    ) -> f64 {
        let mut moved: Vec<(u32, f64)> = Vec::new();
        let spacing = self.hw.spacing_um;
        for k in 0..self.hw.num_aods() {
            let keep_this = keep.contains(&k);
            let mut displaced = false;
            for r in 0..self.cur_row[k].len() {
                let home = self.home_row(k, r);
                if (self.cur_row[k][r] - home).abs() > 1e-12 {
                    displaced = true;
                }
                self.cur_row[k][r] = home;
                self.eff_row[k][r] = home;
            }
            for c in 0..self.cur_col[k].len() {
                let home = self.home_col(k, c);
                if (self.cur_col[k][c] - home).abs() > 1e-12 {
                    displaced = true;
                }
                self.cur_col[k][c] = home;
                self.eff_col[k][c] = home;
            }
            let park_transition = if keep_this {
                self.parked[k]
            } else {
                !self.parked[k]
            };
            if displaced {
                self.resync_aod_grid(k);
            }
            if displaced || park_transition {
                for &atom in &self.atoms_in_aod[k] {
                    moved.push((atom, PARK_TRAVEL * spacing * 1e-6));
                }
            }
            self.parked[k] = !keep_this;
        }
        moved.sort_by_key(|&(a, _)| a);
        ledger.record_move(&moved, params.t_move_s, num_qubits);
        moved.len() as f64 * PARK_TRAVEL * spacing
    }
}

#[inline]
fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dr = a.0 - b.0;
    let dc = a.1 - b.1;
    (dr * dr + dc * dc).sqrt()
}

#[inline]
fn norm_pair(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Runs the movement router over a transpiled circuit.
///
/// The router is two-phase. Phase one, the *gate planner* (this
/// function's loop), greedily builds maximal legal parallel gate sets
/// and plans one movement stage per set. Phase two depends on
/// `strategy`: [`RouterStrategy::Sequential`] emits the planned stages
/// as-is (the paper's scheduling, and the differential baseline), while
/// [`RouterStrategy::Layered`] re-batches them through the
/// layer-batching module — compatible consecutive stages
/// fuse into one coordinated move group with a merged Rydberg pulse,
/// and retract/approach round trips the ISA optimizer would cancel are
/// elided up front.
///
/// `index` selects how the constraint checks enumerate proximity
/// candidates: [`ProximityIndex::Grid`] (the default in
/// [`AtomiqueConfig`](crate::AtomiqueConfig)) maintains a spatial-hash
/// index and queries only neighboring cells;
/// [`ProximityIndex::Exhaustive`] is the original all-atoms scan, kept as
/// the oracle for the differential router tests. Both produce identical
/// schedules — the grid only restricts candidate enumeration, never the
/// accept/reject predicates.
///
/// # Errors
///
/// Never fails for valid inputs: a gate that cannot be scheduled even from
/// a reset configuration falls back to a transfer-assisted stage (the atom
/// is re-grabbed next to its partner, charging two SLM↔AOD transfers to the
/// fidelity model). [`CompileError::RouterStuck`] is reserved for internal
/// inconsistencies.
#[allow(clippy::too_many_arguments)]
pub fn route_movements(
    transpiled: &TranspiledCircuit,
    mapping: &AtomMapping,
    hw: &RaaConfig,
    params: &HardwareParams,
    relax: Relaxation,
    mode: RouterMode,
    strategy: RouterStrategy,
    index: ProximityIndex,
) -> Result<RoutedProgram, CompileError> {
    let routed = plan_and_route(transpiled, mapping, hw, params, relax, mode, index)?;
    Ok(match strategy {
        RouterStrategy::Sequential => routed,
        RouterStrategy::Layered => {
            crate::layers::rebatch(routed, mapping, hw, params, transpiled.circuit.num_qubits())
        }
    })
}

/// Phase one: the greedy per-frontier gate planner, emitting one
/// movement stage per planned gate set with sequential accounting.
fn plan_and_route(
    transpiled: &TranspiledCircuit,
    mapping: &AtomMapping,
    hw: &RaaConfig,
    params: &HardwareParams,
    relax: Relaxation,
    mode: RouterMode,
    index: ProximityIndex,
) -> Result<RoutedProgram, CompileError> {
    let circuit = &transpiled.circuit;
    let num_qubits = circuit.num_qubits();
    let mut state = RouterState::new(hw, mapping, relax, index);
    let mut sched = DagSchedule::new(circuit);
    let mut ledger = MovementLedger::new(params);
    let mut stages: Vec<Stage> = Vec::new();

    let mut exec_time = 0.0f64;
    let mut one_q = 0usize;
    let mut two_q = 0usize;
    let mut one_q_layers = 0usize;
    let mut two_q_stages = 0usize;
    let mut overlap_rejections = 0usize;
    let mut transfers = 0usize;
    let mut total_move_um = 0.0f64;
    let mut last_was_reset = false;

    while !sched.is_done() {
        // --- one-qubit frontier (Raman laser, fully parallel) ---
        loop {
            let ones: Vec<GateIdx> = sched
                .front()
                .iter()
                .copied()
                .filter(|&g| circuit.gates()[g].is_one_qubit())
                .collect();
            if ones.is_empty() {
                break;
            }
            let gates: Vec<Gate> = ones.iter().map(|&g| circuit.gates()[g]).collect();
            one_q += gates.len();
            one_q_layers += 1;
            exec_time += params.one_qubit_time_s;
            sched.execute_all(&ones);
            stages.push(Stage::one_qubit(gates));
        }
        if sched.is_done() {
            break;
        }

        // --- two-qubit frontier: greedy maximal legal set ---
        let front: Vec<GateIdx> = sched.front().to_vec();
        let mut plan = Plan::default();
        {
            let _planning = raa_trace::span("route.plan");
            for &g in &front {
                if mode == RouterMode::Serial && !plan.gates.is_empty() {
                    break;
                }
                let (a, b) = circuit.gates()[g].pair().expect("front is 2Q only here");
                TRY_ADD.incr();
                match state.try_add(&mut plan, g, a.0, b.0) {
                    Ok(()) => GATES_PLANNED.incr(),
                    Err(rej) => {
                        match rej {
                            Reject::TargetConflict => REJECT_TARGET.incr(),
                            Reject::Addressing => REJECT_ADDRESSING.incr(),
                            Reject::Order => REJECT_ORDER.incr(),
                            Reject::Overlap => REJECT_OVERLAP.incr(),
                        }
                        if rej == Reject::Overlap {
                            overlap_rejections += 1;
                        }
                    }
                }
            }
        }

        if plan.gates.is_empty() {
            if !last_was_reset {
                // Reset fallback: park everything except the arrays of the
                // first pending gate, homing those.
                let (a, b) = circuit.gates()[front[0]].pair().expect("2Q");
                let keep: HashSet<usize> = [a.0, b.0]
                    .iter()
                    .filter_map(|&s| {
                        let site = state.site_of_slot[s as usize];
                        (!site.array.is_slm()).then(|| site.array.aod_number())
                    })
                    .collect();
                let moved_um = state.reset(&keep, params, &mut ledger, num_qubits);
                total_move_um += moved_um;
                exec_time += params.t_move_s;
                let mut kept: Vec<u8> = keep.iter().map(|&k| k as u8).collect();
                kept.sort_unstable();
                RESET_STAGES.incr();
                stages.push(Stage::reset(kept));
                last_was_reset = true;
                continue;
            }
            // Transfer-assisted fallback: re-grab the movable atom directly
            // next to its partner (2 transfers, paper Sec. V-A's
            // F_transfer model).
            let g = front[0];
            let (a, b) = circuit.gates()[g].pair().expect("2Q");
            TRANSFER_FALLBACKS.incr();
            transfers += 2;
            exec_time += 2.0 * params.t_transfer_s + params.two_qubit_time_s;
            let aod_atoms = aod_participants(&state, a.0, b.0);
            ledger.record_two_qubit_gate(&aod_atoms);
            two_q += 1;
            two_q_stages += 1;
            sched.execute(g);
            stages.push(Stage::transfer_assisted(a.0, b.0));
            last_was_reset = false;
            continue;
        }
        last_was_reset = false;

        // Commit: move in, fire the Rydberg laser, retract.
        let (moves, mut row_delta, mut col_delta) = {
            let _committing = raa_trace::span("route.commit");
            state.commit(&plan)
        };
        let (retract_moves, separated) = {
            let _retracting = raa_trace::span("route.retract");
            state.apply_retraction(&plan, &mut row_delta, &mut col_delta)
        };
        let spacing = state.hw.spacing_um;
        let mut moved: Vec<(u32, f64)> = Vec::new();
        let all_atoms: HashSet<u32> = row_delta.keys().chain(col_delta.keys()).copied().collect();
        for atom in all_atoms {
            let dr = row_delta.get(&atom).copied().unwrap_or(0.0);
            let dc = col_delta.get(&atom).copied().unwrap_or(0.0);
            let d_um = (dr * dr + dc * dc).sqrt() * spacing;
            if d_um > 0.0 {
                moved.push((atom, d_um * 1e-6));
                total_move_um += d_um;
            }
        }
        moved.sort_by_key(|&(a, _)| a);
        ledger.record_move(&moved, params.t_move_s, num_qubits);
        exec_time += params.t_move_s + params.two_qubit_time_s;
        two_q_stages += 1;
        let mut gate_pairs = Vec::with_capacity(plan.gates.len());
        for &(g, a, b) in &plan.gates {
            let aod_atoms = aod_participants(&state, a, b);
            ledger.record_two_qubit_gate(&aod_atoms);
            two_q += 1;
            sched.execute(g);
            gate_pairs.push((a, b));
        }
        stages.push(Stage::movement(moves, retract_moves, gate_pairs));

        // Retraction fallback: in dense neighborhoods every clear
        // retraction slot can be blocked, leaving a pulsed pair inside
        // the Rydberg radius. Re-home the in-field arrays before the
        // next pulse fires (home positions are mutually clear by
        // construction); parked arrays stay parked.
        if !separated {
            let keep: HashSet<usize> = (0..hw.num_aods()).filter(|&k| !state.parked[k]).collect();
            let moved_um = state.reset(&keep, params, &mut ledger, num_qubits);
            total_move_um += moved_um;
            exec_time += params.t_move_s;
            let mut kept: Vec<u8> = keep.iter().map(|&k| k as u8).collect();
            kept.sort_unstable();
            RESET_STAGES.incr();
            stages.push(Stage::reset(kept));
            last_was_reset = true;
        }

        // --- cooling (paper Sec. IV): swap any overheated AOD array with a
        // pre-cooled spare. ---
        for k in 0..hw.num_aods() {
            let atoms = &state.atoms_in_aod[k];
            if ledger.needs_cooling(atoms.iter().copied()) {
                ledger.cool_array(atoms);
                exec_time += params.t_move_s + 2.0 * params.two_qubit_time_s;
                stages.push(Stage::cooling(k as u8));
            }
        }
    }

    let stats = RouterStats {
        one_qubit_gates: one_q,
        two_qubit_gates: two_q,
        one_qubit_layers: one_q_layers,
        two_qubit_stages: two_q_stages,
        execution_time_s: exec_time,
        total_move_distance_um: total_move_um,
        num_move_stages: ledger.num_stages(),
        cooling_events: ledger.cooling_events(),
        overlap_rejections,
        transfers,
        f_heating: ledger.f_heating(),
        f_loss: ledger.f_loss(),
        f_cooling: ledger.f_cooling(),
        f_decoherence: ledger.f_decoherence(),
        max_n_vib: ledger.max_n_vib(),
    };
    Ok(RoutedProgram { stages, stats })
}

fn aod_participants(state: &RouterState<'_>, a: u32, b: u32) -> Vec<u32> {
    [a, b]
        .into_iter()
        .filter(|&s| !state.site_of_slot[s as usize].array.is_slm())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array_mapper::ArrayMapping;
    use crate::atom_mapper::{map_to_atoms, AtomMapping};
    use crate::config::AtomMapperKind;
    use crate::program::StageKind;
    use crate::transpile::transpile;
    use raa_arch::ArrayDims;
    use raa_circuit::Circuit;
    use raa_circuit::Qubit;
    use raa_sabre::SabreConfig;

    fn setup(c: &Circuit, array_of: Vec<u8>) -> (TranspiledCircuit, AtomMapping, RaaConfig) {
        let hw = RaaConfig::default();
        let mapping = ArrayMapping {
            array_of,
            num_arrays: hw.num_arrays(),
        };
        let t = transpile(c, &mapping, &SabreConfig::default()).unwrap();
        let am = map_to_atoms(&t, &hw, AtomMapperKind::LoadBalance, 0).unwrap();
        (t, am, hw)
    }

    fn run(c: &Circuit, array_of: Vec<u8>) -> RoutedProgram {
        let (t, am, hw) = setup(c, array_of);
        let params = HardwareParams::neutral_atom();
        route_movements(
            &t,
            &am,
            &hw,
            &params,
            Relaxation::NONE,
            RouterMode::Parallel,
            RouterStrategy::Sequential,
            ProximityIndex::Grid,
        )
        .unwrap()
    }

    #[test]
    fn single_slm_aod_gate_executes_in_one_stage() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        let out = run(&c, vec![0, 1]);
        assert_eq!(out.stats.two_qubit_gates, 1);
        assert_eq!(out.stats.two_qubit_stages, 1);
        assert_eq!(out.stats.transfers, 0);
        assert!(out.stats.execution_time_s > 0.0);
        assert!(out.stats.total_move_distance_um > 0.0);
    }

    #[test]
    fn independent_aligned_gates_run_in_parallel() {
        // Four disjoint SLM–AOD pairs; aligned mapping puts partners at the
        // same grid positions, so one stage should cover several gates.
        let mut c = Circuit::new(8);
        for i in 0..4 {
            c.push(Gate::cz(Qubit(i), Qubit(i + 4)));
        }
        let out = run(&c, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(out.stats.two_qubit_gates, 4);
        assert!(
            out.stats.two_qubit_stages < 4,
            "no parallelism: {} stages for 4 gates",
            out.stats.two_qubit_stages
        );
    }

    #[test]
    fn serial_mode_runs_one_gate_per_stage() {
        let mut c = Circuit::new(8);
        for i in 0..4 {
            c.push(Gate::cz(Qubit(i), Qubit(i + 4)));
        }
        let (t, am, hw) = setup(&c, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        let params = HardwareParams::neutral_atom();
        let out = route_movements(
            &t,
            &am,
            &hw,
            &params,
            Relaxation::NONE,
            RouterMode::Serial,
            RouterStrategy::Sequential,
            ProximityIndex::Grid,
        )
        .unwrap();
        assert_eq!(out.stats.two_qubit_gates, 4);
        assert_eq!(out.stats.two_qubit_stages, 4);
    }

    #[test]
    fn dependent_gates_are_ordered() {
        // q1 interacts with q0 then q2: two stages minimum.
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        let out = run(&c, vec![0, 1, 0]);
        assert_eq!(out.stats.two_qubit_gates, 2);
        assert!(out.stats.two_qubit_stages >= 2);
    }

    #[test]
    fn one_qubit_gates_execute_in_layers() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(Gate::h(Qubit(q)));
        }
        c.push(Gate::cz(Qubit(0), Qubit(2)));
        let out = run(&c, vec![0, 0, 1, 1]);
        assert_eq!(out.stats.one_qubit_gates, 4);
        assert_eq!(out.stats.one_qubit_layers, 1);
    }

    #[test]
    fn aod_aod_gate_executes() {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        let out = run(&c, vec![1, 2]);
        assert_eq!(out.stats.two_qubit_gates, 1);
        assert_eq!(out.stats.transfers, 0);
    }

    #[test]
    fn same_row_conflicting_targets_serialize() {
        // Two gates whose AOD atoms share a row but need different SLM rows
        // cannot share a stage (target conflict).
        let hw = RaaConfig::default();
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(2)));
        c.push(Gate::cz(Qubit(1), Qubit(3)));
        let mapping = ArrayMapping {
            array_of: vec![0, 0, 1, 1],
            num_arrays: 3,
        };
        let t = transpile(&c, &mapping, &SabreConfig::default()).unwrap();
        // Hand-build an atom mapping forcing the conflict: SLM atoms on
        // different rows, both AOD atoms on AOD row 0 with the same column
        // alignment requirement.
        let slm0 = t.slot_of_qubit[0];
        let slm1 = t.slot_of_qubit[1];
        let aod0 = t.slot_of_qubit[2];
        let aod1 = t.slot_of_qubit[3];
        let mut site_of_slot = vec![TrapSite::new(ArrayIndex::SLM, 0, 0); 4];
        site_of_slot[slm0 as usize] = TrapSite::new(ArrayIndex::SLM, 0, 0);
        site_of_slot[slm1 as usize] = TrapSite::new(ArrayIndex::SLM, 5, 0);
        site_of_slot[aod0 as usize] = TrapSite::new(ArrayIndex::aod(0), 0, 0);
        site_of_slot[aod1 as usize] = TrapSite::new(ArrayIndex::aod(0), 0, 1);
        let am = AtomMapping { site_of_slot };
        let params = HardwareParams::neutral_atom();
        let out = route_movements(
            &t,
            &am,
            &hw,
            &params,
            Relaxation::NONE,
            RouterMode::Parallel,
            RouterStrategy::Sequential,
            ProximityIndex::Grid,
        )
        .unwrap();
        assert_eq!(out.stats.two_qubit_gates, 2);
        assert_eq!(
            out.stats.two_qubit_stages, 2,
            "row-target conflict must serialize"
        );
    }

    #[test]
    fn order_constraint_blocks_row_crossing() {
        // AOD row 1 must not move above row 0: gate that requires crossing
        // is deferred to another stage (after repositioning) or transfers.
        let hw = RaaConfig::default();
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(2))); // SLM row 5 ← AOD row 0
        c.push(Gate::cz(Qubit(1), Qubit(3))); // SLM row 0 ← AOD row 1 (cross!)
        let mapping = ArrayMapping {
            array_of: vec![0, 0, 1, 1],
            num_arrays: 3,
        };
        let t = transpile(&c, &mapping, &SabreConfig::default()).unwrap();
        let slm0 = t.slot_of_qubit[0];
        let slm1 = t.slot_of_qubit[1];
        let aod0 = t.slot_of_qubit[2];
        let aod1 = t.slot_of_qubit[3];
        let mut site_of_slot = vec![TrapSite::new(ArrayIndex::SLM, 0, 0); 4];
        site_of_slot[slm0 as usize] = TrapSite::new(ArrayIndex::SLM, 5, 0);
        site_of_slot[slm1 as usize] = TrapSite::new(ArrayIndex::SLM, 0, 3);
        site_of_slot[aod0 as usize] = TrapSite::new(ArrayIndex::aod(0), 0, 0);
        site_of_slot[aod1 as usize] = TrapSite::new(ArrayIndex::aod(0), 1, 3);
        let am = AtomMapping { site_of_slot };
        let params = HardwareParams::neutral_atom();
        let out = route_movements(
            &t,
            &am,
            &hw,
            &params,
            Relaxation::NONE,
            RouterMode::Parallel,
            RouterStrategy::Sequential,
            ProximityIndex::Grid,
        )
        .unwrap();
        // Both gates still execute (correctness), but not in one stage.
        assert_eq!(out.stats.two_qubit_gates, 2);
        assert!(out.stats.two_qubit_stages >= 2);
    }

    #[test]
    fn relaxing_constraints_never_increases_stages() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 16;
        let mut c = Circuit::new(n);
        for _ in 0..40 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
        let array_of: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let (t, am, hw) = setup(&c, array_of);
        let params = HardwareParams::neutral_atom();
        let strict = route_movements(
            &t,
            &am,
            &hw,
            &params,
            Relaxation::NONE,
            RouterMode::Parallel,
            RouterStrategy::Sequential,
            ProximityIndex::Grid,
        )
        .unwrap();
        let relaxed = Relaxation {
            individual_addressing: true,
            allow_order_violation: true,
            allow_overlap: true,
        };
        let free = route_movements(
            &t,
            &am,
            &hw,
            &params,
            relaxed,
            RouterMode::Parallel,
            RouterStrategy::Sequential,
            ProximityIndex::Grid,
        )
        .unwrap();
        assert_eq!(strict.stats.two_qubit_gates, free.stats.two_qubit_gates);
        assert!(free.stats.two_qubit_stages <= strict.stats.two_qubit_stages);
    }

    #[test]
    fn fidelity_factors_within_bounds() {
        let mut c = Circuit::new(6);
        for i in 0..3 {
            c.push(Gate::cz(Qubit(i), Qubit(i + 3)));
        }
        let out = run(&c, vec![0, 0, 0, 1, 1, 2]);
        for f in [
            out.stats.f_heating,
            out.stats.f_loss,
            out.stats.f_cooling,
            out.stats.f_decoherence,
        ] {
            assert!(f > 0.0 && f <= 1.0, "factor {f} out of range");
        }
    }

    /// Regression test for the fallback retraction ladder's range
    /// (previously a hard-coded 28-step scan capped at ±1.02 tracks).
    ///
    /// Construction: one SLM–AOD0 gate pair just pulsed at (5.05, 5.08),
    /// with a dense curtain of AOD1 atoms positioned so that *every*
    /// retraction offset of the movable atom's row up to ±1.167 tracks
    /// lands within the blockade radius of some curtain atom (a column
    /// of blockers exactly aligned with the atom's x, at 0.3-track row
    /// pitch — tighter than 2·r_b, so the blocked windows overlap into a
    /// continuous band). The first clear slot is at +1.177 tracks —
    /// beyond the legacy ±1.02 cap, but within the geometry-derived
    /// [`RETRACT_MAX`]. The old ladder left the pair un-separated
    /// (forcing a whole-machine reset stage); the derived ladder must
    /// find the slot, in both proximity-index modes identically.
    #[test]
    fn fallback_ladder_separates_beyond_legacy_cap() {
        const LEGACY_CAP: f64 = 1.02;
        let hw = RaaConfig::new(
            ArrayDims::new(10, 10),
            vec![ArrayDims::new(1, 1), ArrayDims::new(8, 21)],
        )
        .unwrap();
        let mut sites = vec![
            TrapSite::new(ArrayIndex::SLM, 5, 5),
            TrapSite::new(ArrayIndex::aod(0), 0, 0),
        ];
        for r in 0..8u16 {
            for c in 0..21u16 {
                sites.push(TrapSite::new(ArrayIndex::aod(1), r, c));
            }
        }
        let am = AtomMapping {
            site_of_slot: sites,
        };
        let mut results = Vec::new();
        for index in [ProximityIndex::Grid, ProximityIndex::Exhaustive] {
            let mut state = RouterState::new(&hw, &am, Relaxation::NONE, index);
            // The movable atom sits at the gate position next to its SLM
            // partner (5, 5).
            state.cur_row[0][0] = 5.0 + DELTA_ROW;
            state.eff_row[0][0] = 5.0 + DELTA_ROW;
            state.cur_col[0][0] = 5.0 + DELTA_COL;
            state.eff_col[0][0] = 5.0 + DELTA_COL;
            // The curtain: AOD1 rows at 0.3-track pitch around the gate
            // row (top blocker at +1.0 ends the blocked band at +1.167),
            // one column exactly aligned with the movable atom's x and
            // the rest at 0.145-track pitch filling ±1.45.
            let row_offsets = [-1.05, -0.75, -0.45, -0.15, 0.15, 0.45, 0.75, 1.00];
            for (r, o) in row_offsets.iter().enumerate() {
                state.cur_row[1][r] = 5.0 + DELTA_ROW + o;
                state.eff_row[1][r] = 5.0 + DELTA_ROW + o;
            }
            for j in 0..21 {
                let x = 5.0 + DELTA_COL - 1.45 + 0.145 * j as f64;
                state.cur_col[1][j] = x;
                state.eff_col[1][j] = x;
            }
            state.resync_aod_grid(0);
            state.resync_aod_grid(1);

            let mut plan = Plan::default();
            plan.gates.push((0, 0, 1));
            plan.desired.insert(norm_pair(0, 1));
            plan.participants.insert(0);
            plan.participants.insert(1);

            let mut row_delta = HashMap::new();
            let mut col_delta = HashMap::new();
            let (moves, separated) = state.apply_retraction(&plan, &mut row_delta, &mut col_delta);
            assert!(separated, "{index:?}: pulsed pair failed to separate");
            let row_move = moves
                .iter()
                .find(|m| m.aod == 0 && m.axis_row)
                .expect("movable atom's row retracted");
            let amount = row_move.to_track - row_move.from_track;
            assert!(
                amount.abs() > LEGACY_CAP,
                "{index:?}: clear slot at {amount:+.3} is within the legacy \
                 ±{LEGACY_CAP} cap — curtain no longer blocks it"
            );
            assert!(
                amount.abs() <= RETRACT_MAX + 1e-9,
                "{index:?}: retraction {amount:+.3} beyond derived max"
            );
            let d = dist(state.pos(0), state.pos(1));
            assert!(d > INTERACT_R, "{index:?}: pair still at {d:.3}");
            results.push(
                moves
                    .iter()
                    .map(|m| (m.aod, m.axis_row, m.line, m.to_track.to_bits()))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(
            results[0], results[1],
            "grid and exhaustive modes retracted differently"
        );
    }

    #[test]
    fn every_gate_is_executed_exactly_once() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 12;
        let mut c = Circuit::new(n);
        for _ in 0..30 {
            let a = rng.random_range(0..n as u32);
            let mut b = rng.random_range(0..n as u32);
            while b == a {
                b = rng.random_range(0..n as u32);
            }
            if rng.random::<f64>() < 0.3 {
                c.push(Gate::h(Qubit(a)));
            } else {
                c.push(Gate::cz(Qubit(a), Qubit(b)));
            }
        }
        let array_of: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
        let (t, am, hw) = setup(&c, array_of);
        let params = HardwareParams::neutral_atom();
        let out = route_movements(
            &t,
            &am,
            &hw,
            &params,
            Relaxation::NONE,
            RouterMode::Parallel,
            RouterStrategy::Sequential,
            ProximityIndex::Grid,
        )
        .unwrap();
        assert_eq!(
            out.stats.two_qubit_gates + out.stats.one_qubit_gates,
            t.circuit.len()
        );
        // Stage gate lists cover every 2Q gate exactly once.
        let staged: usize = out
            .stages
            .iter()
            .map(|s| {
                if s.kind == StageKind::TransferAssisted {
                    1
                } else {
                    s.gate_pairs.len()
                }
            })
            .sum();
        assert_eq!(staged, t.circuit.two_qubit_count());
    }
}
