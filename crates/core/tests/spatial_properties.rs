//! Property tests of [`SpatialGrid`]: under arbitrary interleavings of
//! inserts, moves and removals, a neighbor query must return *exactly*
//! the ids the brute-force distance scan returns, and the candidate
//! enumeration must be a superset of it. This is the exactness argument
//! the router's grid mode rests on (the differential router test then
//! proves the end-to-end consequence: identical schedules).

use std::collections::HashMap;

use atomique::SpatialGrid;
use proptest::prelude::*;

/// One scripted operation against the grid and the brute-force mirror.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u32, (f64, f64)),
    Update(u32, (f64, f64)),
    Remove(u32),
    Query((f64, f64), f64),
}

/// Coordinates span negative and positive territory across many cells
/// (the router's track coordinates run roughly −3..32 and retractions go
/// below line homes).
fn point() -> impl Strategy<Value = (f64, f64)> {
    (-4.0f64..36.0, -4.0f64..36.0)
}

fn op() -> impl Strategy<Value = Op> {
    (0u8..4, 0u32..24, point(), 0.0f64..2.0).prop_map(|(kind, id, p, r)| match kind {
        0 => Op::Insert(id, p),
        1 => Op::Update(id, p),
        2 => Op::Remove(id),
        _ => Op::Query(p, r),
    })
}

/// Brute force: every mirrored id within distance `r` of `p`, sorted.
fn brute_force(mirror: &HashMap<u32, (f64, f64)>, p: (f64, f64), r: f64) -> Vec<u32> {
    let mut out: Vec<u32> = mirror
        .iter()
        .filter(|(_, q)| {
            let (dx, dy) = (q.0 - p.0, q.1 - p.1);
            dx * dx + dy * dy <= r * r
        })
        .map(|(&id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

/// Applies `ops`, checking every query against brute force. The cell
/// size is exercised both below and above the query radii.
fn check_script(cell: f64, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut grid = SpatialGrid::new(cell);
    let mut mirror: HashMap<u32, (f64, f64)> = HashMap::new();
    for &op in ops {
        match op {
            Op::Insert(id, p) => {
                grid.insert(id, p);
                mirror.insert(id, p);
            }
            Op::Update(id, p) => {
                grid.update(id, p);
                mirror.insert(id, p);
            }
            Op::Remove(id) => {
                grid.remove(id);
                mirror.remove(&id);
            }
            Op::Query(p, r) => {
                let expect = brute_force(&mirror, p, r);
                let got = grid.neighbors_within(p, r);
                prop_assert!(
                    got == expect,
                    "cell {cell} query at {p:?} r {r}: got {got:?}, expected {expect:?}"
                );
                let mut cand = Vec::new();
                grid.candidates_into(p, r, &mut cand);
                for id in &expect {
                    prop_assert!(
                        cand.contains(id),
                        "candidate superset missing {} (cell {}, r {})",
                        id,
                        cell,
                        r
                    );
                }
            }
        }
        prop_assert_eq!(grid.len(), mirror.len());
    }
    // Final sweep: positions agree id by id.
    for (&id, &p) in &mirror {
        prop_assert_eq!(grid.position(id), Some(p));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queries_match_brute_force_under_mutation(
        ops in proptest::collection::vec(op(), 1..120),
        cell_choice in 0usize..3,
    ) {
        // 5/12 is the router's BAND_R cell size; the others bracket it so
        // queries span both fewer and more cells than the radius.
        let cell = [5.0 / 12.0, 0.11, 1.7][cell_choice];
        check_script(cell, &ops)?;
    }

    #[test]
    fn dense_clusters_stay_exact(
        ids_and_offsets in proptest::collection::vec((0u32..12, -0.2f64..0.2, -0.2f64..0.2), 4..40),
        r in 0.0f64..0.5,
    ) {
        // Many atoms crammed around one point — the regime the router's
        // addressing check queries (everything within one or two cells).
        let mut grid = SpatialGrid::new(5.0 / 12.0);
        let mut mirror = HashMap::new();
        for &(id, dx, dy) in &ids_and_offsets {
            let p = (10.0 + dx, 10.0 + dy);
            grid.update(id, p);
            mirror.insert(id, p);
        }
        prop_assert_eq!(
            grid.neighbors_within((10.0, 10.0), r),
            brute_force(&mirror, (10.0, 10.0), r)
        );
    }

    #[test]
    fn cell_boundary_points_are_found(
        k in -8i64..8,
        r in 0.01f64..1.0,
    ) {
        // A point exactly on a cell boundary (a multiple of the cell
        // size) must be found by queries approaching from either side,
        // and never from beyond the radius. Distances stay off the exact
        // radius (0.9·r / 1.5·r) so the assertions are float-robust.
        let cell = 5.0 / 12.0;
        let x = k as f64 * cell;
        let mut grid = SpatialGrid::new(cell);
        grid.insert(0, (x, 0.0));
        prop_assert_eq!(grid.neighbors_within((x - 0.9 * r, 0.0), r), vec![0u32]);
        prop_assert_eq!(grid.neighbors_within((x + 0.9 * r, 0.0), r), vec![0u32]);
        prop_assert!(grid.neighbors_within((x + 1.5 * r, 0.0), r).is_empty());
    }
}
