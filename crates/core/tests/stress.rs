//! Stress and configuration-matrix tests for the Atomique compiler:
//! multi-AOD machines, varied array sizes, relaxation combinations, and
//! algorithmic workloads, each cross-checked by the independent stage
//! validator.

use atomique::{compile, validate_program, AtomiqueConfig, Relaxation};
use raa_arch::{ArrayDims, RaaConfig};
use raa_circuit::{Circuit, Gate, Qubit};
use rand::{rngs::StdRng, RngExt, SeedableRng};

fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let a = rng.random_range(0..n as u32);
        let mut b = rng.random_range(0..n as u32);
        while b == a {
            b = rng.random_range(0..n as u32);
        }
        if rng.random::<f64>() < 0.25 {
            c.push(Gate::ry(Qubit(a), 0.7));
        } else {
            c.push(Gate::cz(Qubit(a), Qubit(b)));
        }
    }
    c
}

/// Every AOD count the paper sweeps (Fig. 20c) compiles and validates.
#[test]
fn one_through_seven_aods() {
    let c = random_circuit(24, 80, 1);
    let mut prev_swaps = usize::MAX;
    for aods in 1..=7 {
        let hw = RaaConfig::square(8, aods).expect("valid machine");
        let cfg = AtomiqueConfig::for_hardware(hw);
        let out = compile(&c, &cfg).unwrap_or_else(|e| panic!("{aods} AODs: {e}"));
        validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot)
            .unwrap_or_else(|e| panic!("{aods} AODs: {e}"));
        // More partitions can only help the cut (weak monotonicity check
        // against the 1-AOD case).
        if aods >= 2 {
            assert!(
                out.stats.swaps_inserted <= prev_swaps.max(1) * 2,
                "{aods} AODs regressed badly on swaps"
            );
        }
        prev_swaps = prev_swaps.min(out.stats.swaps_inserted);
    }
}

/// Varied AOD dimensions (Fig. 23's configuration) compile and validate.
#[test]
fn varied_aod_dimensions() {
    let hw = RaaConfig::new(
        ArrayDims::new(10, 10),
        vec![ArrayDims::new(8, 8), ArrayDims::new(6, 6)],
    )
    .unwrap();
    let cfg = AtomiqueConfig::for_hardware(hw);
    let c = random_circuit(40, 150, 2);
    let out = compile(&c, &cfg).unwrap();
    validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot).unwrap();
    assert!(out.total_fidelity() > 0.0);
}

/// Rectangular (non-square) arrays work (Fig. 20a's shapes).
#[test]
fn extreme_aspect_ratios() {
    for (r, cdim) in [(16, 3), (3, 16), (24, 2)] {
        let hw = RaaConfig::new(ArrayDims::new(r, cdim), vec![ArrayDims::new(r, cdim); 2]).unwrap();
        let cfg = AtomiqueConfig::for_hardware(hw);
        let c = random_circuit(30, 60, 3);
        let out = compile(&c, &cfg).unwrap_or_else(|e| panic!("{r}x{cdim}: {e}"));
        validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot)
            .unwrap_or_else(|e| panic!("{r}x{cdim}: {e}"));
    }
}

/// Every single-constraint relaxation compiles; gate counts never change.
#[test]
fn relaxation_matrix() {
    let c = random_circuit(20, 70, 4);
    let base = compile(&c, &AtomiqueConfig::default()).unwrap();
    let settings = [
        Relaxation {
            individual_addressing: true,
            ..Relaxation::NONE
        },
        Relaxation {
            allow_order_violation: true,
            ..Relaxation::NONE
        },
        Relaxation {
            allow_overlap: true,
            ..Relaxation::NONE
        },
        Relaxation {
            individual_addressing: true,
            allow_order_violation: true,
            allow_overlap: false,
        },
    ];
    for relax in settings {
        let out = compile(
            &c,
            &AtomiqueConfig {
                relaxation: relax,
                ..AtomiqueConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            out.stats.two_qubit_gates, base.stats.two_qubit_gates,
            "{relax:?}"
        );
        assert!(out.stats.depth <= base.stats.depth + 5, "{relax:?}");
    }
}

/// Algorithmic workloads (QFT, Grover, W-state) compile and validate —
/// these exercise all-to-all, ladder, and chain interaction patterns.
#[test]
fn algorithmic_workloads_validate() {
    let cfg = AtomiqueConfig::default();
    for (name, c) in [
        ("qft-12", raa_benchmarks::qft(12)),
        ("grover-8", raa_benchmarks::grover(8, 2)),
        ("wstate-16", raa_benchmarks::w_state(16)),
    ] {
        let out = compile(&c, &cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(out.total_fidelity() > 0.0, "{name}");
    }
}

/// Near-capacity occupancy (Fig. 24's regime): 100 qubits on 172 traps.
#[test]
fn near_capacity_compiles() {
    let hw = RaaConfig::new(
        ArrayDims::new(10, 10),
        vec![ArrayDims::new(6, 6), ArrayDims::new(6, 6)],
    )
    .unwrap();
    let cfg = AtomiqueConfig::for_hardware(hw);
    let c = random_circuit(100, 200, 5);
    let out = compile(&c, &cfg).unwrap();
    validate_program(&out, &cfg.hardware, &out.mapping.site_of_slot).unwrap();
    assert_eq!(
        out.stats.two_qubit_gates,
        raa_circuit::optimize(&c).two_qubit_count() + 3 * out.stats.swaps_inserted
    );
}

/// The schedule renderer covers every stage of a large program.
#[test]
fn schedule_renders_completely() {
    let c = random_circuit(30, 120, 6);
    let out = compile(&c, &AtomiqueConfig::default()).unwrap();
    let text = atomique::render_schedule(&out);
    assert_eq!(
        text.matches("PULSE").count() + text.matches("XFER").count(),
        out.stats.depth
    );
    assert!(text.lines().count() >= out.stages.len());
    let summary = atomique::summarize(&out);
    assert!(summary.contains("30q"));
}
