//! Vibrational heating, atom loss and the movement ledger (paper Sec. IV).
//!
//! Movement heats atoms: each move adds
//! `Δn_vib = ½·(6D/(x_zpf·ω₀²·T_mov²))²` to the moved atom's vibrational
//! quantum number. Heating degrades two-qubit fidelity
//! (`1 − λ(1−f_2Q)·n_vib` per gate), raises the loss probability (erf
//! model), and is reset by a cooling procedure costing two CZ gates per
//! atom of the cooled AOD array.
//!
//! [`MovementLedger`] accumulates all four overhead factors
//! (`F_mov = F_heating · F_loss · F_cooling · F_decoherence`) while a
//! router executes, so the compiler never re-derives physics.

use std::collections::HashMap;

use crate::math::erf;
use crate::params::HardwareParams;

/// The heating increment of a single move of distance `distance_m` over
/// `duration_s` (paper Sec. IV):
/// `Δn_vib = ½·(6D/(x_zpf·ω₀²·T²))²`.
///
/// With the Table I constants, one 15 µm hop in 300 µs gives 0.0054.
pub fn delta_n_vib(params: &HardwareParams, distance_m: f64, duration_s: f64) -> f64 {
    if distance_m <= 0.0 {
        return 0.0;
    }
    let denom = params.x_zpf_m * params.omega0_rad_s.powi(2) * duration_s.powi(2);
    0.5 * (6.0 * distance_m / denom).powi(2)
}

/// Probability that an atom with vibrational number `n_vib` is lost during
/// a move: `P = 1 − ½(1 + erf[(n_max − n_vib)/√(2·n_vib)])`.
///
/// At `n_vib = 0` the probability is 0 by continuity.
pub fn loss_probability(params: &HardwareParams, n_vib: f64) -> f64 {
    if n_vib <= 0.0 {
        return 0.0;
    }
    let arg = (params.n_vib_max - n_vib) / (2.0 * n_vib).sqrt();
    1.0 - 0.5 * (1.0 + erf(arg))
}

/// Per-atom movement bookkeeping plus the four `F_mov` factors.
///
/// Atoms are identified by caller-chosen `u32` ids (the Atomique router
/// uses a dense id per trapped atom). All four factors are tracked in log
/// space so very deep circuits don't underflow intermediate products.
///
/// # Examples
///
/// ```
/// use raa_physics::{HardwareParams, MovementLedger};
/// let p = HardwareParams::neutral_atom();
/// let mut ledger = MovementLedger::new(&p);
/// ledger.record_move(&[(0, 15e-6)], 300e-6, 10); // atom 0 hops one site
/// assert!((ledger.n_vib(0) - 0.0054).abs() < 1e-3);
/// ledger.record_two_qubit_gate(&[0]);
/// assert!(ledger.f_mov() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct MovementLedger<'p> {
    params: &'p HardwareParams,
    n_vib: HashMap<u32, f64>,
    ln_heating: f64,
    ln_loss: f64,
    ln_cooling: f64,
    ln_decoherence: f64,
    total_distance_m: f64,
    num_stages: usize,
    num_atom_moves: usize,
    cooling_events: usize,
    total_move_time_s: f64,
}

impl<'p> MovementLedger<'p> {
    /// Creates an empty ledger over the given parameters.
    pub fn new(params: &'p HardwareParams) -> Self {
        MovementLedger {
            params,
            n_vib: HashMap::new(),
            ln_heating: 0.0,
            ln_loss: 0.0,
            ln_cooling: 0.0,
            ln_decoherence: 0.0,
            total_distance_m: 0.0,
            num_stages: 0,
            num_atom_moves: 0,
            cooling_events: 0,
            total_move_time_s: 0.0,
        }
    }

    /// Records one movement stage.
    ///
    /// `moved` lists `(atom id, distance in metres)` for every atom whose
    /// row or column moved; `duration_s` is the stage's move time (`T_mov`)
    /// and `active_qubits` the number of circuit qubits decohering during
    /// the stage (paper: `F_mov_deco = Π exp(−N_i·T_mov,i / T1)`).
    pub fn record_move(&mut self, moved: &[(u32, f64)], duration_s: f64, active_qubits: usize) {
        if moved.is_empty() {
            return;
        }
        self.num_stages += 1;
        self.total_move_time_s += duration_s;
        for &(atom, dist) in moved {
            if dist <= 0.0 {
                continue;
            }
            let dn = delta_n_vib(self.params, dist, duration_s);
            let n = self.n_vib.entry(atom).or_insert(0.0);
            *n += dn;
            // Loss is evaluated at the post-move n_vib, per atom per move.
            let p = loss_probability(self.params, *n);
            self.ln_loss += ln_clamped(1.0 - p);
            self.total_distance_m += dist;
            self.num_atom_moves += 1;
        }
        self.ln_decoherence -= active_qubits as f64 * duration_s / self.params.coherence_time_s;
    }

    /// Records a two-qubit gate's heating penalty.
    ///
    /// `aod_atoms` are the AOD-trapped atoms participating in the gate
    /// (one for SLM–AOD gates, two for AOD–AOD: the paper sums their
    /// n_vib). The factor per gate is `1 − λ(1−f_2Q)·n_vib`.
    pub fn record_two_qubit_gate(&mut self, aod_atoms: &[u32]) {
        let n: f64 = aod_atoms.iter().map(|a| self.n_vib(*a)).sum();
        let factor = 1.0 - self.params.lambda * (1.0 - self.params.two_qubit_fidelity) * n;
        self.ln_heating += ln_clamped(factor);
    }

    /// Whether any of `atoms` exceeds the cooling threshold.
    pub fn needs_cooling(&self, atoms: impl IntoIterator<Item = u32>) -> bool {
        atoms
            .into_iter()
            .any(|a| self.n_vib(a) > self.params.n_vib_cool_threshold)
    }

    /// Cools an entire AOD array: swaps its quantum state into a
    /// pre-cooled spare array at a cost of two CZ gates per atom
    /// (`F_cooling = f_2Q^{2·N}`), resetting every listed atom's n_vib.
    pub fn cool_array(&mut self, atoms: &[u32]) {
        self.cooling_events += 1;
        self.ln_cooling += 2.0 * atoms.len() as f64 * ln_clamped(self.params.two_qubit_fidelity);
        for a in atoms {
            self.n_vib.insert(*a, 0.0);
        }
    }

    /// The current vibrational quantum number of `atom` (0 if never moved).
    pub fn n_vib(&self, atom: u32) -> f64 {
        self.n_vib.get(&atom).copied().unwrap_or(0.0)
    }

    /// The maximum n_vib across all tracked atoms.
    pub fn max_n_vib(&self) -> f64 {
        self.n_vib.values().copied().fold(0.0, f64::max)
    }

    /// `F_mov_heating`.
    pub fn f_heating(&self) -> f64 {
        self.ln_heating.exp()
    }

    /// `F_mov_loss`.
    pub fn f_loss(&self) -> f64 {
        self.ln_loss.exp()
    }

    /// `F_mov_cooling`.
    pub fn f_cooling(&self) -> f64 {
        self.ln_cooling.exp()
    }

    /// `F_mov_deco`.
    pub fn f_decoherence(&self) -> f64 {
        self.ln_decoherence.exp()
    }

    /// The combined movement factor
    /// `F_mov = F_heating·F_loss·F_cooling·F_deco` (paper Eq. 1).
    pub fn f_mov(&self) -> f64 {
        (self.ln_heating + self.ln_loss + self.ln_cooling + self.ln_decoherence).exp()
    }

    /// Total distance moved by all atoms, metres.
    pub fn total_distance_m(&self) -> f64 {
        self.total_distance_m
    }

    /// Number of recorded movement stages.
    pub fn num_stages(&self) -> usize {
        self.num_stages
    }

    /// Number of individual atom moves (atoms × stages they moved in).
    pub fn num_atom_moves(&self) -> usize {
        self.num_atom_moves
    }

    /// Number of cooling procedures performed.
    pub fn cooling_events(&self) -> usize {
        self.cooling_events
    }

    /// Total wall-clock time spent moving, seconds.
    pub fn total_move_time_s(&self) -> f64 {
        self.total_move_time_s
    }
}

fn ln_clamped(x: f64) -> f64 {
    x.max(1e-300).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> HardwareParams {
        HardwareParams::neutral_atom()
    }

    #[test]
    fn delta_n_vib_matches_paper_constants() {
        let p = p();
        // Paper Sec. IV: 0.0054 for 1 hop (15 µm), 0.13 for 5, 0.54 for 10.
        let one = delta_n_vib(&p, 15e-6, 300e-6);
        assert!((one - 0.0054).abs() < 2e-4, "one hop: {one}");
        let five = delta_n_vib(&p, 75e-6, 300e-6);
        assert!((five - 0.13).abs() < 0.01, "five hops: {five}");
        let ten = delta_n_vib(&p, 150e-6, 300e-6);
        assert!((ten - 0.54).abs() < 0.03, "ten hops: {ten}");
    }

    #[test]
    fn loss_matches_paper_reference_points() {
        let p = p();
        // Paper: per-atom survival 0.708 at n_vib=30, 0.998 at 20,
        // 0.999998 at 15.
        assert!((1.0 - loss_probability(&p, 30.0) - 0.708).abs() < 5e-3);
        assert!((1.0 - loss_probability(&p, 20.0) - 0.998).abs() < 1e-3);
        assert!(1.0 - loss_probability(&p, 15.0) > 0.99999);
        assert_eq!(loss_probability(&p, 0.0), 0.0);
    }

    #[test]
    fn ledger_accumulates_n_vib() {
        let p = p();
        let mut l = MovementLedger::new(&p);
        l.record_move(&[(0, 15e-6)], 300e-6, 5);
        l.record_move(&[(0, 15e-6)], 300e-6, 5);
        assert!((l.n_vib(0) - 2.0 * 0.0054).abs() < 4e-4);
        assert_eq!(l.num_stages(), 2);
        assert_eq!(l.num_atom_moves(), 2);
        assert!((l.total_distance_m() - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn heating_penalty_grows_with_n_vib() {
        let p = p();
        let mut l = MovementLedger::new(&p);
        l.record_two_qubit_gate(&[0]); // cold atom: no penalty
        assert!((l.f_heating() - 1.0).abs() < 1e-12);
        l.record_move(&[(0, 150e-6)], 300e-6, 5); // hot
        let before = l.f_heating();
        l.record_two_qubit_gate(&[0]);
        assert!(l.f_heating() < before);
    }

    #[test]
    fn cooling_resets_and_costs_gates() {
        let p = p();
        let mut l = MovementLedger::new(&p);
        // heat atom 0 past the threshold
        for _ in 0..40 {
            l.record_move(&[(0, 150e-6)], 300e-6, 5);
        }
        assert!(l.needs_cooling([0]));
        l.cool_array(&[0, 1, 2]);
        assert_eq!(l.n_vib(0), 0.0);
        assert!(!l.needs_cooling([0]));
        assert_eq!(l.cooling_events(), 1);
        let expected = p.two_qubit_fidelity.powi(6);
        assert!((l.f_cooling() - expected).abs() < 1e-12);
    }

    #[test]
    fn decoherence_matches_closed_form() {
        let p = p();
        let mut l = MovementLedger::new(&p);
        l.record_move(&[(0, 15e-6)], 300e-6, 10);
        let expected = (-10.0 * 300e-6 / p.coherence_time_s).exp();
        assert!((l.f_decoherence() - expected).abs() < 1e-12);
        // Paper's example: one move, 10-qubit circuit → 0.998 at T1 = 1.5 s.
        let p2 = HardwareParams::neutral_atom().with_coherence_time(1.5);
        let mut l2 = MovementLedger::new(&p2);
        l2.record_move(&[(0, 15e-6)], 300e-6, 10);
        assert!((l2.f_decoherence() - 0.998).abs() < 1e-3);
    }

    #[test]
    fn f_mov_is_product_of_components() {
        let p = p();
        let mut l = MovementLedger::new(&p);
        for i in 0..5 {
            l.record_move(&[(i, 30e-6)], 300e-6, 8);
            l.record_two_qubit_gate(&[i]);
        }
        let prod = l.f_heating() * l.f_loss() * l.f_cooling() * l.f_decoherence();
        assert!((l.f_mov() - prod).abs() < 1e-12);
        assert!(l.f_mov() > 0.0 && l.f_mov() <= 1.0);
    }

    #[test]
    fn empty_move_is_ignored() {
        let p = p();
        let mut l = MovementLedger::new(&p);
        l.record_move(&[], 300e-6, 10);
        assert_eq!(l.num_stages(), 0);
        assert!((l.f_mov() - 1.0).abs() < 1e-12);
    }
}
