//! Small math helpers: the error function, which `std` does not provide.

/// The error function, via the Abramowitz & Stegun 7.1.26 rational
/// approximation (absolute error < 1.5·10⁻⁷ — far below the fidelity
/// model's needs).
///
/// # Examples
///
/// ```
/// use raa_physics::erf;
/// assert!((erf(0.0)).abs() < 1e-6);
/// assert!((erf(10.0) - 1.0).abs() < 1e-7);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12); // odd by construction
/// ```
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let poly = ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t;
    1.0 - poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::erf;

    #[test]
    fn known_values() {
        // Reference values from tables.
        for (x, want) in [
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
        ] {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn odd_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            assert!((erf(-x) + erf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_increasing() {
        let mut prev = -1.0;
        let mut x = -4.0;
        while x <= 4.0 {
            let y = erf(x);
            assert!(y >= prev - 1e-12);
            prev = y;
            x += 0.05;
        }
    }

    #[test]
    fn saturates_to_one() {
        assert!((erf(6.0) - 1.0).abs() < 1e-12);
        assert!((erf(-6.0) + 1.0).abs() < 1e-12);
    }
}
