//! Atom-movement kinematics (paper Fig. 12 and Sec. IV).
//!
//! Ref. [Bluvstein et al. 2022] moves atoms with a *constant negative jerk*
//! profile: acceleration decreases linearly from +a₀ to −a₀, velocity is a
//! downward parabola vanishing at both endpoints, and position is the
//! corresponding smooth S-curve. With move distance `D` and duration `T`:
//!
//! * `a₀ = 6D/T²`, jerk `= −2a₀/T = −12D/T³` (constant),
//! * `v(t) = a₀·(t − t²/T)`, peaking at `v(T/2) = 3D/(2T)`,
//! * `x(t) = a₀·(t²/2 − t³/(3T))`, with `x(T) = D` exactly.

/// A single constant-negative-jerk movement of one AOD row/column.
///
/// # Examples
///
/// ```
/// use raa_physics::MovementProfile;
/// let m = MovementProfile::new(15e-6, 300e-6); // one 15 µm hop in 300 µs
/// assert!((m.position(300e-6) - 15e-6).abs() < 1e-12);
/// assert!((m.velocity(0.0)).abs() < 1e-15);
/// assert!((m.velocity(300e-6)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovementProfile {
    distance_m: f64,
    duration_s: f64,
}

/// One sampled point of a movement profile (used to regenerate Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KinematicSample {
    /// Time since movement start, seconds.
    pub t_s: f64,
    /// Jerk, m/s³ (constant over the move).
    pub jerk: f64,
    /// Acceleration, m/s².
    pub accel: f64,
    /// Velocity, m/s.
    pub velocity: f64,
    /// Distance travelled, m.
    pub distance: f64,
}

impl MovementProfile {
    /// Creates a profile for moving `distance_m` metres in `duration_s`
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive and finite.
    pub fn new(distance_m: f64, duration_s: f64) -> Self {
        assert!(
            distance_m > 0.0 && distance_m.is_finite(),
            "distance must be positive, got {distance_m}"
        );
        assert!(
            duration_s > 0.0 && duration_s.is_finite(),
            "duration must be positive, got {duration_s}"
        );
        MovementProfile {
            distance_m,
            duration_s,
        }
    }

    /// Total distance in metres.
    pub fn distance_m(&self) -> f64 {
        self.distance_m
    }

    /// Total duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Initial (peak) acceleration `a₀ = 6D/T²`.
    pub fn peak_accel(&self) -> f64 {
        6.0 * self.distance_m / (self.duration_s * self.duration_s)
    }

    /// The constant jerk `−2a₀/T`.
    pub fn jerk(&self) -> f64 {
        -2.0 * self.peak_accel() / self.duration_s
    }

    /// Acceleration at time `t`: linear from `+a₀` to `−a₀`.
    pub fn accel(&self, t: f64) -> f64 {
        let a0 = self.peak_accel();
        a0 * (1.0 - 2.0 * t / self.duration_s)
    }

    /// Velocity at time `t`: parabolic, zero at both endpoints.
    pub fn velocity(&self, t: f64) -> f64 {
        let a0 = self.peak_accel();
        a0 * (t - t * t / self.duration_s)
    }

    /// Peak velocity `3D/(2T)`, reached at `t = T/2`.
    pub fn peak_velocity(&self) -> f64 {
        1.5 * self.distance_m / self.duration_s
    }

    /// Average velocity `D/T`.
    pub fn avg_velocity(&self) -> f64 {
        self.distance_m / self.duration_s
    }

    /// Distance travelled by time `t`.
    pub fn position(&self, t: f64) -> f64 {
        let a0 = self.peak_accel();
        a0 * (t * t / 2.0 - t * t * t / (3.0 * self.duration_s))
    }

    /// Samples the profile at `n` evenly spaced instants (inclusive of both
    /// endpoints), regenerating the four panels of Fig. 12.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sample(&self, n: usize) -> Vec<KinematicSample> {
        assert!(n >= 2, "need at least two samples");
        (0..n)
            .map(|i| {
                let t = self.duration_s * i as f64 / (n - 1) as f64;
                KinematicSample {
                    t_s: t,
                    jerk: self.jerk(),
                    accel: self.accel(t),
                    velocity: self.velocity(t),
                    distance: self.position(t),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop() -> MovementProfile {
        MovementProfile::new(15e-6, 300e-6)
    }

    #[test]
    fn boundary_conditions() {
        let m = hop();
        assert!((m.position(0.0)).abs() < 1e-18);
        assert!((m.position(m.duration_s()) - m.distance_m()).abs() < 1e-15);
        assert!((m.velocity(0.0)).abs() < 1e-18);
        assert!((m.velocity(m.duration_s())).abs() < 1e-12);
        assert!((m.accel(0.0) - m.peak_accel()).abs() < 1e-12);
        assert!((m.accel(m.duration_s()) + m.peak_accel()).abs() < 1e-12);
    }

    #[test]
    fn velocity_peaks_at_midpoint() {
        let m = hop();
        let mid = m.velocity(m.duration_s() / 2.0);
        assert!((mid - m.peak_velocity()).abs() < 1e-12);
        assert!(mid > m.velocity(m.duration_s() / 4.0));
        assert!(mid > m.velocity(3.0 * m.duration_s() / 4.0));
    }

    #[test]
    fn velocity_integrates_to_distance() {
        // Numerical integration of v(t) must equal D.
        let m = hop();
        let n = 10_000;
        let dt = m.duration_s() / n as f64;
        let integral: f64 = (0..n).map(|i| m.velocity((i as f64 + 0.5) * dt) * dt).sum();
        assert!((integral - m.distance_m()).abs() / m.distance_m() < 1e-6);
    }

    #[test]
    fn jerk_is_constant_derivative_of_accel() {
        let m = hop();
        let dt = 1e-9;
        for frac in [0.1, 0.5, 0.9] {
            let t = frac * m.duration_s();
            let num = (m.accel(t + dt) - m.accel(t)) / dt;
            assert!((num - m.jerk()).abs() / m.jerk().abs() < 1e-4);
        }
    }

    #[test]
    fn sample_covers_endpoints() {
        let m = hop();
        let s = m.sample(31);
        assert_eq!(s.len(), 31);
        assert!((s[0].t_s).abs() < 1e-18);
        assert!((s[30].t_s - m.duration_s()).abs() < 1e-15);
        assert!((s[30].distance - m.distance_m()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distance_rejected() {
        MovementProfile::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_sample_rejected() {
        hop().sample(1);
    }
}
