//! End-to-end circuit fidelity estimation (paper Sec. V-A).
//!
//! `F = F_1Q · F_2Q · F_transfer · F_mov` with
//!
//! * `F_1Q = f_1Q^{N_1Q} · exp(−T_1Q·N/T1)` — gate error plus decoherence
//!   of all `N` qubits during the cumulative one-qubit gate time,
//! * `F_2Q` analogous,
//! * `F_transfer = (1−P_loss)^{N_transfer} · exp(−T_transfer·N/T1)`,
//! * `F_mov` from the [`MovementLedger`](crate::MovementLedger).

use crate::params::HardwareParams;

/// Per-source fidelity factors of one compiled circuit, multiplied together
/// by [`FidelityBreakdown::total`]. The −log components regenerate the
/// error-breakdown bars of Fig. 18.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityBreakdown {
    /// One-qubit gate factor `F_1Q`.
    pub one_qubit: f64,
    /// Two-qubit gate factor `F_2Q`.
    pub two_qubit: f64,
    /// SLM↔AOD transfer factor `F_transfer`.
    pub transfer: f64,
    /// Movement heating factor.
    pub move_heating: f64,
    /// Cooling-overhead factor.
    pub move_cooling: f64,
    /// Movement atom-loss factor.
    pub move_loss: f64,
    /// Movement decoherence factor.
    pub move_decoherence: f64,
}

impl Default for FidelityBreakdown {
    /// A unit breakdown (perfect fidelity).
    fn default() -> Self {
        FidelityBreakdown {
            one_qubit: 1.0,
            two_qubit: 1.0,
            transfer: 1.0,
            move_heating: 1.0,
            move_cooling: 1.0,
            move_loss: 1.0,
            move_decoherence: 1.0,
        }
    }
}

impl FidelityBreakdown {
    /// The total estimated fidelity: product of every factor.
    pub fn total(&self) -> f64 {
        self.one_qubit
            * self.two_qubit
            * self.transfer
            * self.move_heating
            * self.move_cooling
            * self.move_loss
            * self.move_decoherence
    }

    /// `F_mov` alone (paper Eq. 1).
    pub fn f_mov(&self) -> f64 {
        self.move_heating * self.move_cooling * self.move_loss * self.move_decoherence
    }

    /// Named −log(F) contributions, the Fig. 18 error-breakdown series.
    /// Ordering matches the paper's legend.
    pub fn neg_log_components(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("1Q Gate", neg_log(self.one_qubit)),
            ("2Q Gate", neg_log(self.two_qubit)),
            ("Move Heating", neg_log(self.move_heating)),
            ("Move Cooling", neg_log(self.move_cooling)),
            ("Move Atom Loss", neg_log(self.move_loss)),
            ("Move Decoherence", neg_log(self.move_decoherence)),
        ]
    }
}

fn neg_log(f: f64) -> f64 {
    -f.max(1e-300).ln()
}

/// Inputs for the gate-phase factors shared by every architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatePhaseStats {
    /// Total circuit qubits `N`.
    pub num_qubits: usize,
    /// One-qubit gate count after compilation.
    pub one_qubit_gates: usize,
    /// Two-qubit gate count after compilation.
    pub two_qubit_gates: usize,
    /// Cumulative wall-clock time spent in one-qubit layers, seconds.
    pub one_qubit_time_s: f64,
    /// Cumulative wall-clock time spent in two-qubit layers, seconds.
    pub two_qubit_time_s: f64,
}

/// Computes `(F_1Q, F_2Q)` for a compiled circuit.
pub fn gate_phase_fidelity(params: &HardwareParams, stats: &GatePhaseStats) -> (f64, f64) {
    let n = stats.num_qubits as f64;
    let f1 = powi_clamped(params.one_qubit_fidelity, stats.one_qubit_gates)
        * (-stats.one_qubit_time_s * n / params.coherence_time_s).exp();
    let f2 = powi_clamped(params.two_qubit_fidelity, stats.two_qubit_gates)
        * (-stats.two_qubit_time_s * n / params.coherence_time_s).exp();
    (f1, f2)
}

/// Computes `F_transfer` for `num_transfers` SLM↔AOD transfers taking
/// `transfer_time_s` cumulative seconds on an `n`-qubit circuit.
pub fn transfer_fidelity(
    params: &HardwareParams,
    num_transfers: usize,
    transfer_time_s: f64,
    num_qubits: usize,
) -> f64 {
    powi_clamped(1.0 - params.transfer_loss_prob, num_transfers)
        * (-transfer_time_s * num_qubits as f64 / params.coherence_time_s).exp()
}

/// Fidelity of a circuit on a *fixed* architecture (superconducting or
/// fixed atom array): no movement, no transfers.
///
/// `one_qubit_layers` / `two_qubit_layers` are depth measured in parallel
/// layers of the respective gate kind; the cumulative phase times are
/// `layers × gate time`.
pub fn fixed_architecture_fidelity(
    params: &HardwareParams,
    num_qubits: usize,
    one_qubit_gates: usize,
    two_qubit_gates: usize,
    one_qubit_layers: usize,
    two_qubit_layers: usize,
) -> FidelityBreakdown {
    let stats = GatePhaseStats {
        num_qubits,
        one_qubit_gates,
        two_qubit_gates,
        one_qubit_time_s: one_qubit_layers as f64 * params.one_qubit_time_s,
        two_qubit_time_s: two_qubit_layers as f64 * params.two_qubit_time_s,
    };
    let (one_qubit, two_qubit) = gate_phase_fidelity(params, &stats);
    FidelityBreakdown {
        one_qubit,
        two_qubit,
        ..FidelityBreakdown::default()
    }
}

fn powi_clamped(base: f64, exp: usize) -> f64 {
    if exp == 0 {
        return 1.0;
    }
    (exp as f64 * base.max(1e-300).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_breakdown_is_perfect() {
        let b = FidelityBreakdown::default();
        assert!((b.total() - 1.0).abs() < 1e-12);
        assert!((b.f_mov() - 1.0).abs() < 1e-12);
        assert!(b.neg_log_components().iter().all(|(_, v)| *v < 1e-12));
    }

    #[test]
    fn total_is_product() {
        let b = FidelityBreakdown {
            one_qubit: 0.9,
            two_qubit: 0.8,
            transfer: 0.99,
            move_heating: 0.95,
            move_cooling: 0.97,
            move_loss: 0.96,
            move_decoherence: 0.94,
        };
        let expect = 0.9 * 0.8 * 0.99 * 0.95 * 0.97 * 0.96 * 0.94;
        assert!((b.total() - expect).abs() < 1e-12);
    }

    #[test]
    fn superconducting_hhl_sanity() {
        // Cross-check against paper Fig. 13: HHL-7 on superconducting has
        // fidelity ≈ 0.33 with ≈174 2Q gates, ≈800 1Q gates, depth ≈150.
        let p = HardwareParams::superconducting();
        let b = fixed_architecture_fidelity(&p, 7, 800, 174, 300, 150);
        let f = b.total();
        assert!(f > 0.2 && f < 0.5, "HHL-7 fidelity {f}");
    }

    #[test]
    fn faa_fidelity_dominated_by_two_qubit_gates() {
        // With T1 = 15 s, decoherence is negligible: F ≈ f_2Q^N2Q.
        let p = HardwareParams::neutral_atom();
        let b = fixed_architecture_fidelity(&p, 10, 0, 170, 0, 120);
        assert!((b.total() - 0.9975_f64.powi(170)).abs() < 1e-3);
    }

    #[test]
    fn transfer_fidelity_decreases_with_transfers() {
        let p = HardwareParams::neutral_atom();
        let f1 = transfer_fidelity(&p, 10, 150e-6, 10);
        let f2 = transfer_fidelity(&p, 100, 1.5e-3, 10);
        assert!(f2 < f1);
        assert!(f1 < 1.0);
        assert!((transfer_fidelity(&p, 0, 0.0, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_phase_decoheres_with_time() {
        let p = HardwareParams::superconducting();
        let fast = GatePhaseStats {
            num_qubits: 50,
            one_qubit_gates: 0,
            two_qubit_gates: 100,
            one_qubit_time_s: 0.0,
            two_qubit_time_s: 10e-6,
        };
        let slow = GatePhaseStats {
            two_qubit_time_s: 100e-6,
            ..fast
        };
        let (_, f_fast) = gate_phase_fidelity(&p, &fast);
        let (_, f_slow) = gate_phase_fidelity(&p, &slow);
        assert!(f_slow < f_fast);
    }

    #[test]
    fn deep_circuit_does_not_underflow_to_nan() {
        let p = HardwareParams::neutral_atom();
        let b = fixed_architecture_fidelity(&p, 100, 1_000_000, 1_000_000, 500_000, 500_000);
        assert!(b.total() >= 0.0);
        assert!(b.total().is_finite());
    }

    #[test]
    fn neg_log_orders_match_magnitudes() {
        let b = FidelityBreakdown {
            two_qubit: 0.5,
            ..FidelityBreakdown::default()
        };
        let comps = b.neg_log_components();
        let two_q = comps.iter().find(|(n, _)| *n == "2Q Gate").unwrap().1;
        assert!((two_q - 0.5_f64.ln().abs()).abs() < 1e-12);
    }
}
