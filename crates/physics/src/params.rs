//! Hardware parameters (paper Table I).
//!
//! Two presets are provided: the neutral-atom machine of Bluvstein et al.
//! (used for every atom-array architecture) and the IBM superconducting
//! machine. The paper equalizes gate fidelities across platforms "for
//! unbiased comparisons"; the presets reflect the literal Table I values.

/// Physical constants of one machine, in SI units unless noted.
///
/// Construct via [`HardwareParams::neutral_atom`] or
/// [`HardwareParams::superconducting`], then adjust fields for sensitivity
/// sweeps (Fig. 18).
///
/// # Examples
///
/// ```
/// use raa_physics::HardwareParams;
/// let mut p = HardwareParams::neutral_atom();
/// p.t_move_s = 500e-6; // Fig. 18(a) sweep point
/// assert!(p.two_qubit_fidelity > 0.99);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareParams {
    /// Two-qubit gate fidelity `f_2Q` (Table I: 0.9975).
    pub two_qubit_fidelity: f64,
    /// One-qubit gate fidelity `f_1Q` (Table I: 0.99992).
    pub one_qubit_fidelity: f64,
    /// Two-qubit gate duration in seconds (neutral atom: 380 ns).
    pub two_qubit_time_s: f64,
    /// One-qubit gate duration in seconds (neutral atom: 625 ns).
    pub one_qubit_time_s: f64,
    /// Coherence time T1 in seconds (neutral atom: 15 s; superconducting:
    /// 801.2 µs).
    pub coherence_time_s: f64,
    /// Trap spacing in µm (15 µm); only meaningful for atom arrays.
    pub atom_distance_um: f64,
    /// Duration of one movement stage in seconds (300 µs).
    pub t_move_s: f64,
    /// Duration of one SLM↔AOD atom transfer in seconds (15 µs).
    pub t_transfer_s: f64,
    /// Atom-loss probability per transfer (0.0068).
    pub transfer_loss_prob: f64,
    /// Zero-point size x_zpf in metres (38 nm).
    pub x_zpf_m: f64,
    /// Trap angular frequency ω₀ in rad/s (2π·80 kHz). With these values
    /// one 15 µm hop at 300 µs costs Δn_vib = 0.0054, matching the paper.
    pub omega0_rad_s: f64,
    /// Heating-to-error proportionality λ (0.109).
    pub lambda: f64,
    /// Vibrational quantum number at which an atom is lost (33).
    pub n_vib_max: f64,
    /// Cooling threshold: cool the AOD array when any atom exceeds this
    /// n_vib (paper default 15).
    pub n_vib_cool_threshold: f64,
}

impl HardwareParams {
    /// The neutral-atom preset (Table I, Bluvstein et al. values).
    pub fn neutral_atom() -> Self {
        HardwareParams {
            two_qubit_fidelity: 0.9975,
            one_qubit_fidelity: 0.99992,
            two_qubit_time_s: 380e-9,
            one_qubit_time_s: 625e-9,
            coherence_time_s: 15.0,
            atom_distance_um: 15.0,
            t_move_s: 300e-6,
            t_transfer_s: 15e-6,
            transfer_loss_prob: 0.0068,
            x_zpf_m: 38e-9,
            omega0_rad_s: 2.0 * std::f64::consts::PI * 80e3,
            lambda: 0.109,
            n_vib_max: 33.0,
            n_vib_cool_threshold: 15.0,
        }
    }

    /// The IBM superconducting preset (Table I). Gate fidelities are
    /// equalized with the neutral-atom machine, as in the paper; movement
    /// fields are not meaningful and retain neutral-atom placeholders.
    pub fn superconducting() -> Self {
        HardwareParams {
            two_qubit_fidelity: 0.9975,
            one_qubit_fidelity: 0.99992,
            two_qubit_time_s: 480e-9,
            one_qubit_time_s: 35.2e-9,
            coherence_time_s: 801.2e-6,
            ..Self::neutral_atom()
        }
    }

    /// Average movement speed for the configured stage time, assuming a
    /// one-spacing hop (Fig. 18(b)'s x-axis): `d / t_move` in m/s.
    pub fn avg_move_speed_m_s(&self) -> f64 {
        self.atom_distance_um * 1e-6 / self.t_move_s
    }

    /// Returns a copy with a different per-stage movement time (Fig. 18a).
    pub fn with_t_move(mut self, t_move_s: f64) -> Self {
        self.t_move_s = t_move_s;
        self
    }

    /// Returns a copy with a different trap spacing (Fig. 18c).
    pub fn with_atom_distance(mut self, um: f64) -> Self {
        self.atom_distance_um = um;
        self
    }

    /// Returns a copy with a different cooling threshold (Fig. 18d).
    pub fn with_cool_threshold(mut self, n: f64) -> Self {
        self.n_vib_cool_threshold = n;
        self
    }

    /// Returns a copy with a different coherence time (Fig. 18e).
    pub fn with_coherence_time(mut self, t1_s: f64) -> Self {
        self.coherence_time_s = t1_s;
        self
    }

    /// Returns a copy with a different two-qubit gate fidelity (Fig. 18f).
    pub fn with_two_qubit_fidelity(mut self, f: f64) -> Self {
        self.two_qubit_fidelity = f;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_atom_matches_table_one() {
        let p = HardwareParams::neutral_atom();
        assert!((p.two_qubit_fidelity - 0.9975).abs() < 1e-12);
        assert!((p.one_qubit_fidelity - 0.99992).abs() < 1e-12);
        assert!((p.two_qubit_time_s - 380e-9).abs() < 1e-15);
        assert!((p.coherence_time_s - 15.0).abs() < 1e-12);
        assert!((p.t_move_s - 300e-6).abs() < 1e-12);
        assert!((p.transfer_loss_prob - 0.0068).abs() < 1e-12);
        assert!((p.lambda - 0.109).abs() < 1e-12);
        assert!((p.n_vib_max - 33.0).abs() < 1e-12);
    }

    #[test]
    fn superconducting_differs_in_times_only() {
        let s = HardwareParams::superconducting();
        let n = HardwareParams::neutral_atom();
        assert_eq!(s.two_qubit_fidelity, n.two_qubit_fidelity);
        assert!((s.two_qubit_time_s - 480e-9).abs() < 1e-15);
        assert!((s.one_qubit_time_s - 35.2e-9).abs() < 1e-15);
        assert!(s.coherence_time_s < 1e-3);
    }

    #[test]
    fn sweep_builders() {
        let p = HardwareParams::neutral_atom()
            .with_t_move(100e-6)
            .with_atom_distance(30.0)
            .with_cool_threshold(25.0)
            .with_coherence_time(1.0)
            .with_two_qubit_fidelity(0.99);
        assert!((p.t_move_s - 100e-6).abs() < 1e-12);
        assert!((p.atom_distance_um - 30.0).abs() < 1e-12);
        assert!((p.n_vib_cool_threshold - 25.0).abs() < 1e-12);
        assert!((p.coherence_time_s - 1.0).abs() < 1e-12);
        assert!((p.two_qubit_fidelity - 0.99).abs() < 1e-12);
    }

    #[test]
    fn average_speed() {
        let p = HardwareParams::neutral_atom();
        // 15 µm in 300 µs = 0.05 m/s
        assert!((p.avg_move_speed_m_s() - 0.05).abs() < 1e-9);
    }
}
