//! Atom-movement physics and fidelity estimation for the Atomique
//! (ISCA 2024) reproduction.
//!
//! The paper could not use any existing simulator (none supported movable
//! atoms, gates, and noise simultaneously) and built an analytical fidelity
//! model instead — Sec. IV and V-A. This crate is that model:
//!
//! * [`HardwareParams`] — Table I constants, with sweep builders for the
//!   Fig. 18 sensitivity analysis;
//! * [`MovementProfile`] — the constant-negative-jerk kinematics of Fig. 12;
//! * [`delta_n_vib`] / [`loss_probability`] / [`MovementLedger`] — heating,
//!   atom loss, cooling and movement decoherence (Eq. 1–2);
//! * [`FidelityBreakdown`] and helpers — the end-to-end
//!   `F = F_1Q·F_2Q·F_transfer·F_mov` estimate and its −log error
//!   breakdown.
//!
//! # Examples
//!
//! ```
//! use raa_physics::{delta_n_vib, HardwareParams};
//! let p = HardwareParams::neutral_atom();
//! // One 15 µm hop in 300 µs heats the atom by ~0.0054 vibrational quanta
//! // (paper Sec. IV).
//! let dn = delta_n_vib(&p, 15e-6, 300e-6);
//! assert!((dn - 0.0054).abs() < 2e-4);
//! ```

#![warn(missing_docs)]

mod fidelity;
mod kinematics;
mod math;
mod params;
mod vibration;

pub use fidelity::{
    fixed_architecture_fidelity, gate_phase_fidelity, transfer_fidelity, FidelityBreakdown,
    GatePhaseStats,
};
pub use kinematics::{KinematicSample, MovementProfile};
pub use math::erf;
pub use params::HardwareParams;
pub use vibration::{delta_n_vib, loss_probability, MovementLedger};
