//! Property tests of the physics model's scaling laws (paper Sec. IV):
//! heating scales with D² and T⁻⁴, loss is monotone in n_vib, kinematics
//! integrate consistently.

use proptest::prelude::*;
use raa_physics::{delta_n_vib, loss_probability, HardwareParams, MovementLedger, MovementProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Δn_vib ∝ D²: doubling the distance quadruples the heating.
    #[test]
    fn heating_quadratic_in_distance(d_um in 1.0f64..100.0, t_us in 100.0f64..1000.0) {
        let p = HardwareParams::neutral_atom();
        let one = delta_n_vib(&p, d_um * 1e-6, t_us * 1e-6);
        let two = delta_n_vib(&p, 2.0 * d_um * 1e-6, t_us * 1e-6);
        prop_assert!((two / one - 4.0).abs() < 1e-6);
    }

    /// Δn_vib ∝ T⁻⁴: doubling the move time cuts heating 16-fold
    /// (the paper's "minor increase in T_mov allows a substantially
    /// greater N_move" insight).
    #[test]
    fn heating_quartic_in_time(d_um in 1.0f64..100.0, t_us in 100.0f64..1000.0) {
        let p = HardwareParams::neutral_atom();
        let fast = delta_n_vib(&p, d_um * 1e-6, t_us * 1e-6);
        let slow = delta_n_vib(&p, d_um * 1e-6, 2.0 * t_us * 1e-6);
        prop_assert!((fast / slow - 16.0).abs() < 1e-6);
    }

    /// Loss probability is monotone non-decreasing in n_vib and bounded
    /// in [0, 1].
    #[test]
    fn loss_monotone(n1 in 0.0f64..40.0, n2 in 0.0f64..40.0) {
        let p = HardwareParams::neutral_atom();
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        let pl = loss_probability(&p, lo);
        let ph = loss_probability(&p, hi);
        prop_assert!(pl <= ph + 1e-12);
        prop_assert!((0.0..=1.0).contains(&pl));
        prop_assert!((0.0..=1.0).contains(&ph));
    }

    /// The kinematic profile's velocity numerically integrates to its
    /// distance for arbitrary parameters.
    #[test]
    fn velocity_integrates(d_um in 1.0f64..200.0, t_us in 50.0f64..2000.0) {
        let m = MovementProfile::new(d_um * 1e-6, t_us * 1e-6);
        let steps = 2000;
        let dt = m.duration_s() / steps as f64;
        let integral: f64 = (0..steps).map(|i| m.velocity((i as f64 + 0.5) * dt) * dt).sum();
        prop_assert!((integral - m.distance_m()).abs() / m.distance_m() < 1e-5);
    }

    /// Ledger fidelity factors stay in (0, 1] no matter the move history.
    #[test]
    fn ledger_factors_bounded(moves in proptest::collection::vec((0u32..20, 1.0f64..100.0), 1..60)) {
        let p = HardwareParams::neutral_atom();
        let mut l = MovementLedger::new(&p);
        for (atom, d_um) in moves {
            l.record_move(&[(atom, d_um * 1e-6)], p.t_move_s, 20);
            l.record_two_qubit_gate(&[atom]);
            if l.needs_cooling([atom]) {
                l.cool_array(&[atom]);
            }
        }
        for f in [l.f_heating(), l.f_loss(), l.f_cooling(), l.f_decoherence(), l.f_mov()] {
            prop_assert!(f > 0.0 && f <= 1.0 + 1e-12, "factor {f}");
        }
    }

    /// More movement never improves any fidelity factor.
    #[test]
    fn movement_monotonically_degrades(d_um in 5.0f64..50.0) {
        let p = HardwareParams::neutral_atom();
        let mut l = MovementLedger::new(&p);
        let mut prev = 1.0f64;
        for _ in 0..10 {
            l.record_move(&[(0, d_um * 1e-6)], p.t_move_s, 10);
            l.record_two_qubit_gate(&[0]);
            let f = l.f_mov();
            prop_assert!(f <= prev + 1e-12);
            prev = f;
        }
    }
}

/// The documented trade-off of Fig. 18(a): at short move times heating
/// dominates, at long times decoherence dominates.
#[test]
fn t_move_trade_off_shape() {
    let p = HardwareParams::neutral_atom();
    let heat_fast = delta_n_vib(&p, 15e-6, 100e-6);
    let heat_slow = delta_n_vib(&p, 15e-6, 1000e-6);
    assert!(heat_fast > 50.0 * heat_slow);
    // Decoherence per stage grows linearly in T_mov.
    let deco = |t: f64| (-(10.0 * t) / p.coherence_time_s).exp();
    assert!(deco(1000e-6) < deco(100e-6));
}
