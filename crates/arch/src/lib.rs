//! Hardware architectures for the Atomique (ISCA 2024) reproduction.
//!
//! Two families of hardware are modelled:
//!
//! * **Fixed-topology machines** ([`CouplingGraph`]): IBM heavy-hex
//!   superconducting devices, fixed atom arrays with rectangular,
//!   triangular, or long-range connectivity, and the complete multipartite
//!   graph Atomique uses as its coarse coupling model.
//! * **Reconfigurable atom arrays** ([`RaaConfig`]): one SLM array of fixed
//!   traps plus movable AOD arrays, with the physical geometry (trap
//!   spacing, Rydberg radius, home positions) the Atomique router checks
//!   its movement constraints against.
//!
//! # Examples
//!
//! ```
//! use raa_arch::{CouplingGraph, RaaConfig};
//!
//! let heavy_hex = CouplingGraph::heavy_hex(7, 15); // IBM-Washington-like
//! assert!(heavy_hex.max_degree() <= 3);
//!
//! let raa = RaaConfig::default(); // 10x10 SLM + two 10x10 AODs
//! assert_eq!(raa.num_arrays(), 3);
//! ```

#![warn(missing_docs)]

mod coupling;
mod error;
mod raa;

pub use coupling::{CouplingGraph, UNREACHABLE};
pub use error::ArchError;
pub use raa::{ArrayDims, ArrayIndex, RaaConfig, TrapSite};
