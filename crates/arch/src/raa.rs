//! Reconfigurable-atom-array hardware description: one SLM array of fixed
//! traps plus one or more movable AOD arrays (paper Sec. II).
//!
//! Geometry conventions (documented in `DESIGN.md` §5):
//!
//! * SLM trap `(r, c)` sits at `(c·d, r·d)` where `d` is the trap spacing
//!   (default 15 µm, i.e. 6 Rydberg radii — the paper's setting).
//! * AOD array *k*'s home position for trap `(r, c)` is
//!   `((c + fx_k)·d, (r + fy_k)·d)` where `(fx_k, fy_k)` is a per-array
//!   fractional offset chosen by farthest-point sampling on the unit cell so
//!   that resting atoms of different arrays stay out of the Rydberg radius
//!   of each other and of the SLM atoms.
//! * An atom pair interacts (CZ) when within the Rydberg radius `r_b`
//!   (default 2.5 µm); pairs in the band `(r_b, 2.5·r_b)` partially
//!   interact and are forbidden by the router's constraint C1.

use std::fmt;

use crate::error::ArchError;

/// Rows × columns of one trap array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayDims {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
}

impl ArrayDims {
    /// Creates dimensions.
    pub fn new(rows: usize, cols: usize) -> Self {
        ArrayDims { rows, cols }
    }

    /// Number of traps in the array.
    pub fn capacity(&self) -> usize {
        self.rows * self.cols
    }
}

impl fmt::Display for ArrayDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Identifies one of the trap arrays: index 0 is the SLM, `1..=num_aods`
/// are the AOD arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayIndex(pub u8);

impl ArrayIndex {
    /// The SLM array.
    pub const SLM: ArrayIndex = ArrayIndex(0);

    /// Constructs the index of the `k`-th AOD array (0-based).
    pub fn aod(k: usize) -> Self {
        ArrayIndex(k as u8 + 1)
    }

    /// Whether this is the (fixed) SLM array.
    pub fn is_slm(self) -> bool {
        self.0 == 0
    }

    /// For AOD arrays, the 0-based AOD number.
    ///
    /// # Panics
    ///
    /// Panics when called on the SLM.
    pub fn aod_number(self) -> usize {
        assert!(!self.is_slm(), "the SLM array has no AOD number");
        self.0 as usize - 1
    }
}

impl fmt::Display for ArrayIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_slm() {
            write!(f, "SLM")
        } else {
            write!(f, "AOD{}", self.0 - 1)
        }
    }
}

/// A trap site: array plus row/column within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrapSite {
    /// Which array the trap belongs to.
    pub array: ArrayIndex,
    /// Row within the array.
    pub row: u16,
    /// Column within the array.
    pub col: u16,
}

impl TrapSite {
    /// Creates a trap site.
    pub fn new(array: ArrayIndex, row: u16, col: u16) -> Self {
        TrapSite { array, row, col }
    }
}

impl fmt::Display for TrapSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{},{}]", self.array, self.row, self.col)
    }
}

/// Full hardware description of one RAA machine.
///
/// # Examples
///
/// ```
/// use raa_arch::RaaConfig;
/// let hw = RaaConfig::default(); // 10×10 SLM + two 10×10 AODs (paper default)
/// assert_eq!(hw.num_arrays(), 3);
/// assert_eq!(hw.total_capacity(), 300);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RaaConfig {
    /// Dimensions of the fixed SLM array.
    pub slm: ArrayDims,
    /// Dimensions of each movable AOD array (at least one).
    pub aods: Vec<ArrayDims>,
    /// Trap spacing `d` in µm (paper: 15 µm).
    pub spacing_um: f64,
    /// Rydberg (blockade) radius `r_b` in µm (paper: 2.5 µm = d/6).
    pub rydberg_radius_um: f64,
    /// Per-AOD fractional home offsets within a unit cell.
    home_offsets: Vec<(f64, f64)>,
}

impl Default for RaaConfig {
    /// The paper's default configuration: 10×10 topology with 1 SLM array
    /// and 2 AOD arrays, 15 µm spacing, 2.5 µm Rydberg radius.
    fn default() -> Self {
        RaaConfig::new(
            ArrayDims::new(10, 10),
            vec![ArrayDims::new(10, 10), ArrayDims::new(10, 10)],
        )
        .expect("default configuration is valid")
    }
}

impl RaaConfig {
    /// Creates a configuration with the paper's physical constants
    /// (15 µm spacing, 2.5 µm Rydberg radius).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if any array is empty or no AOD is provided.
    pub fn new(slm: ArrayDims, aods: Vec<ArrayDims>) -> Result<Self, ArchError> {
        Self::with_physics(slm, aods, 15.0, 2.5)
    }

    /// Creates a configuration with explicit spacing and Rydberg radius.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::EmptyArray`] for zero-sized arrays,
    /// [`ArchError::NoAods`] when `aods` is empty, and
    /// [`ArchError::SpacingTooSmall`] when the spacing is not at least six
    /// Rydberg radii (the paper's minimum separation requirement).
    pub fn with_physics(
        slm: ArrayDims,
        aods: Vec<ArrayDims>,
        spacing_um: f64,
        rydberg_radius_um: f64,
    ) -> Result<Self, ArchError> {
        if slm.capacity() == 0 {
            return Err(ArchError::EmptyArray {
                which: "SLM".into(),
            });
        }
        if aods.is_empty() {
            return Err(ArchError::NoAods);
        }
        for (k, a) in aods.iter().enumerate() {
            if a.capacity() == 0 {
                return Err(ArchError::EmptyArray {
                    which: format!("AOD{k}"),
                });
            }
        }
        if spacing_um < 6.0 * rydberg_radius_um {
            return Err(ArchError::SpacingTooSmall {
                spacing_um,
                min_um: 6.0 * rydberg_radius_um,
            });
        }
        let home_offsets = fractional_offsets(aods.len());
        Ok(RaaConfig {
            slm,
            aods,
            spacing_um,
            rydberg_radius_um,
            home_offsets,
        })
    }

    /// Builds the paper's default machine scaled to `side`×`side` arrays
    /// with `num_aods` AODs.
    ///
    /// # Errors
    ///
    /// Same as [`RaaConfig::new`].
    pub fn square(side: usize, num_aods: usize) -> Result<Self, ArchError> {
        RaaConfig::new(
            ArrayDims::new(side, side),
            vec![ArrayDims::new(side, side); num_aods],
        )
    }

    /// Total number of arrays (SLM + AODs).
    pub fn num_arrays(&self) -> usize {
        1 + self.aods.len()
    }

    /// Number of AOD arrays.
    pub fn num_aods(&self) -> usize {
        self.aods.len()
    }

    /// Dimensions of the given array.
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    pub fn dims(&self, array: ArrayIndex) -> ArrayDims {
        if array.is_slm() {
            self.slm
        } else {
            self.aods[array.aod_number()]
        }
    }

    /// Sum of all array capacities (number of physical traps).
    pub fn total_capacity(&self) -> usize {
        self.slm.capacity() + self.aods.iter().map(|a| a.capacity()).sum::<usize>()
    }

    /// All array indices, SLM first.
    pub fn arrays(&self) -> impl Iterator<Item = ArrayIndex> + '_ {
        (0..self.num_arrays()).map(|i| ArrayIndex(i as u8))
    }

    /// The home x-coordinate (µm) of column `col` of `array`.
    pub fn home_x(&self, array: ArrayIndex, col: u16) -> f64 {
        if array.is_slm() {
            col as f64 * self.spacing_um
        } else {
            let (fx, _) = self.home_offsets[array.aod_number()];
            (col as f64 + fx) * self.spacing_um
        }
    }

    /// The home y-coordinate (µm) of row `row` of `array`.
    pub fn home_y(&self, array: ArrayIndex, row: u16) -> f64 {
        if array.is_slm() {
            row as f64 * self.spacing_um
        } else {
            let (_, fy) = self.home_offsets[array.aod_number()];
            (row as f64 + fy) * self.spacing_um
        }
    }

    /// The home position `(x, y)` in µm of a trap site.
    pub fn home_position(&self, site: TrapSite) -> (f64, f64) {
        (
            self.home_x(site.array, site.col),
            self.home_y(site.array, site.row),
        )
    }

    /// Distance below which two atoms interact (perform a CZ).
    pub fn interaction_radius_um(&self) -> f64 {
        self.rydberg_radius_um
    }

    /// Minimum allowed separation between non-interacting atoms
    /// (2.5 Rydberg radii, paper Sec. II).
    pub fn safe_radius_um(&self) -> f64 {
        2.5 * self.rydberg_radius_um
    }

    /// The offset, in µm, that an interacting AOD atom parks at relative to
    /// its partner: `0.6·r_b` in each coordinate, i.e. distance
    /// `≈ 0.85·r_b < r_b` while spectators stay clear.
    pub fn interaction_offset_um(&self) -> f64 {
        0.6 * self.rydberg_radius_um
    }

    /// Validates a trap site against this configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::SiteOutOfRange`] if the site does not exist.
    pub fn check_site(&self, site: TrapSite) -> Result<(), ArchError> {
        if site.array.0 as usize >= self.num_arrays() {
            return Err(ArchError::SiteOutOfRange {
                site: site.to_string(),
            });
        }
        let dims = self.dims(site.array);
        if (site.row as usize) < dims.rows && (site.col as usize) < dims.cols {
            Ok(())
        } else {
            Err(ArchError::SiteOutOfRange {
                site: site.to_string(),
            })
        }
    }
}

/// Staggered fractional home offsets for up to seven AOD arrays.
///
/// Properties required by the movement router's constraint model (see
/// `DESIGN.md` §5):
///
/// * every coordinate lies in `[0.1875, 0.8125]`, so atoms in a row/column
///   that slides onto an SLM line keep a clear Rydberg margin from the SLM
///   lattice in the other coordinate;
/// * any two arrays differ by ≥ 0.104 in *both* coordinates, with pairwise
///   Euclidean separation ≥ 0.23 cells (> one Rydberg radius at the paper's
///   15 µm spacing), so resting atoms of different arrays never blockade
///   each other.
///
/// The construction places the x-fractions on a 7-point grid and permutes
/// the y-fractions so that arrays adjacent in x are far apart in y.
const AOD_HOME_OFFSETS: [(f64, f64); 7] = [
    (0.395_833, 0.604_167),
    (0.604_167, 0.291_667),
    (0.291_667, 0.395_833),
    (0.708_333, 0.500_000),
    (0.187_500, 0.187_500),
    (0.500_000, 0.812_500),
    (0.812_500, 0.708_333),
];

/// Home offsets for `k` AOD arrays (prefixes of the staggered table keep
/// all pairwise guarantees).
///
/// # Panics
///
/// Panics if `k` exceeds the supported seven arrays — the paper's Fig. 20c
/// sensitivity sweep tops out at seven.
fn fractional_offsets(k: usize) -> Vec<(f64, f64)> {
    assert!(
        k <= AOD_HOME_OFFSETS.len(),
        "at most 7 AOD arrays are supported, got {k}"
    );
    AOD_HOME_OFFSETS[..k].to_vec()
}

#[cfg(test)]
fn torus_dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = (a.0 - b.0).abs().min(1.0 - (a.0 - b.0).abs());
    let dy = (a.1 - b.1).abs().min(1.0 - (a.1 - b.1).abs());
    (dx * dx + dy * dy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_configuration() {
        let hw = RaaConfig::default();
        assert_eq!(hw.slm, ArrayDims::new(10, 10));
        assert_eq!(hw.num_aods(), 2);
        assert_eq!(hw.total_capacity(), 300);
        assert!((hw.spacing_um - 15.0).abs() < 1e-12);
        assert!((hw.rydberg_radius_um - 2.5).abs() < 1e-12);
        assert!((hw.safe_radius_um() - 6.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            RaaConfig::new(ArrayDims::new(0, 5), vec![ArrayDims::new(2, 2)]),
            Err(ArchError::EmptyArray { .. })
        ));
        assert!(matches!(
            RaaConfig::new(ArrayDims::new(2, 2), vec![]),
            Err(ArchError::NoAods)
        ));
        assert!(matches!(
            RaaConfig::with_physics(ArrayDims::new(2, 2), vec![ArrayDims::new(2, 2)], 10.0, 2.5),
            Err(ArchError::SpacingTooSmall { .. })
        ));
    }

    #[test]
    fn slm_positions_are_integer_lattice() {
        let hw = RaaConfig::default();
        let (x, y) = hw.home_position(TrapSite::new(ArrayIndex::SLM, 2, 3));
        assert!((x - 45.0).abs() < 1e-9);
        assert!((y - 30.0).abs() < 1e-9);
    }

    #[test]
    fn aod_homes_clear_of_slm_and_each_other() {
        for num_aods in 1..=7 {
            let hw = RaaConfig::square(10, num_aods).unwrap();
            let rb = hw.rydberg_radius_um;
            // Every AOD home offset is more than one Rydberg radius (torus
            // metric) from the SLM lattice and from every other AOD home.
            for k1 in 0..num_aods {
                let p1 = (
                    hw.home_x(ArrayIndex::aod(k1), 0) / hw.spacing_um,
                    hw.home_y(ArrayIndex::aod(k1), 0) / hw.spacing_um,
                );
                let d_slm = torus_dist(p1, (0.0, 0.0)) * hw.spacing_um;
                assert!(d_slm > rb, "AOD{k1} home within r_b of SLM ({d_slm:.2} µm)");
                for k2 in k1 + 1..num_aods {
                    let p2 = (
                        hw.home_x(ArrayIndex::aod(k2), 0) / hw.spacing_um,
                        hw.home_y(ArrayIndex::aod(k2), 0) / hw.spacing_um,
                    );
                    let d = torus_dist(p1, p2) * hw.spacing_um;
                    assert!(d > rb, "AOD{k1}/AOD{k2} homes {d:.2} µm apart");
                }
            }
        }
    }

    #[test]
    fn two_aod_homes_clear_of_rydberg_radius() {
        // Resting atoms of different arrays must never blockade each other
        // (> r_b apart). The 2.5 r_b band for resting pairs is handled by
        // the router's tiered constraint model, not by home geometry.
        let hw = RaaConfig::default();
        let p0 = (
            hw.home_x(ArrayIndex::aod(0), 0),
            hw.home_y(ArrayIndex::aod(0), 0),
        );
        let p1 = (
            hw.home_x(ArrayIndex::aod(1), 0),
            hw.home_y(ArrayIndex::aod(1), 0),
        );
        let d = ((p0.0 - p1.0).powi(2) + (p0.1 - p1.1).powi(2)).sqrt();
        assert!(d > hw.rydberg_radius_um, "AOD homes {d:.2} µm apart");
    }

    #[test]
    fn home_offsets_keep_slm_margin_in_each_coordinate() {
        // Each fractional coordinate must be ≥ 0.16 cells from the SLM
        // lattice lines so that a row/column sliding onto an SLM line keeps
        // its spectator atoms out of the Rydberg radius.
        for k in 0..7 {
            let (fx, fy) = super::AOD_HOME_OFFSETS[k];
            for f in [fx, fy] {
                assert!(
                    (0.16..=0.84).contains(&f),
                    "offset {f} too close to lattice"
                );
            }
        }
    }

    #[test]
    fn home_offsets_pairwise_separated_in_both_coordinates() {
        for a in 0..7 {
            for b in a + 1..7 {
                let (ax, ay) = super::AOD_HOME_OFFSETS[a];
                let (bx, by) = super::AOD_HOME_OFFSETS[b];
                assert!((ax - bx).abs() >= 0.10, "arrays {a},{b} x-close");
                assert!((ay - by).abs() >= 0.10, "arrays {a},{b} y-close");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most 7")]
    fn eight_aods_rejected() {
        RaaConfig::square(4, 8).unwrap();
    }

    #[test]
    fn site_validation() {
        let hw = RaaConfig::default();
        assert!(hw.check_site(TrapSite::new(ArrayIndex::SLM, 9, 9)).is_ok());
        assert!(hw
            .check_site(TrapSite::new(ArrayIndex::SLM, 10, 0))
            .is_err());
        assert!(hw
            .check_site(TrapSite::new(ArrayIndex::aod(1), 0, 0))
            .is_ok());
        assert!(hw.check_site(TrapSite::new(ArrayIndex(5), 0, 0)).is_err());
    }

    #[test]
    fn array_index_helpers() {
        assert!(ArrayIndex::SLM.is_slm());
        assert!(!ArrayIndex::aod(0).is_slm());
        assert_eq!(ArrayIndex::aod(1).aod_number(), 1);
        assert_eq!(ArrayIndex::SLM.to_string(), "SLM");
        assert_eq!(ArrayIndex::aod(0).to_string(), "AOD0");
        assert_eq!(
            TrapSite::new(ArrayIndex::aod(0), 1, 2).to_string(),
            "AOD0[1,2]"
        );
    }

    #[test]
    #[should_panic(expected = "no AOD number")]
    fn slm_aod_number_panics() {
        ArrayIndex::SLM.aod_number();
    }

    #[test]
    fn interaction_offset_within_rydberg() {
        let hw = RaaConfig::default();
        let off = hw.interaction_offset_um();
        let dist = (2.0_f64).sqrt() * off;
        assert!(dist < hw.interaction_radius_um());
    }

    #[test]
    fn varied_aod_sizes_supported() {
        // Fig. 23: SLM 10×10 with 8×8 and 6×6 AODs.
        let hw = RaaConfig::new(
            ArrayDims::new(10, 10),
            vec![ArrayDims::new(8, 8), ArrayDims::new(6, 6)],
        )
        .unwrap();
        assert_eq!(hw.total_capacity(), 100 + 64 + 36);
        assert_eq!(hw.dims(ArrayIndex::aod(1)), ArrayDims::new(6, 6));
    }
}
