//! Error types for hardware descriptions.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating hardware configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// An array was declared with zero traps.
    EmptyArray {
        /// Human-readable array name ("SLM", "AOD0", ...).
        which: String,
    },
    /// A reconfigurable machine needs at least one AOD array.
    NoAods,
    /// The trap spacing violates the minimum-separation requirement
    /// (six Rydberg radii).
    SpacingTooSmall {
        /// Requested spacing in µm.
        spacing_um: f64,
        /// Minimum legal spacing in µm.
        min_um: f64,
    },
    /// A trap site does not exist on the machine.
    SiteOutOfRange {
        /// Rendered site, e.g. `AOD0[3,9]`.
        site: String,
    },
    /// A circuit requires more qubits than the machine (or an array subset)
    /// can hold.
    InsufficientCapacity {
        /// Qubits required.
        required: usize,
        /// Traps available.
        available: usize,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::EmptyArray { which } => write!(f, "array {which} has zero traps"),
            ArchError::NoAods => write!(f, "a reconfigurable machine needs at least one AOD array"),
            ArchError::SpacingTooSmall { spacing_um, min_um } => write!(
                f,
                "trap spacing {spacing_um} um is below the minimum {min_um} um (6 Rydberg radii)"
            ),
            ArchError::SiteOutOfRange { site } => write!(f, "trap site {site} does not exist"),
            ArchError::InsufficientCapacity {
                required,
                available,
            } => write!(
                f,
                "circuit needs {required} qubits but only {available} traps are available"
            ),
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ArchError::NoAods.to_string().contains("AOD"));
        assert!(ArchError::EmptyArray {
            which: "SLM".into()
        }
        .to_string()
        .contains("SLM"));
        assert!(ArchError::InsufficientCapacity {
            required: 10,
            available: 4
        }
        .to_string()
        .contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
