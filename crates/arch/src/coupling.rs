//! Coupling graphs for fixed-topology architectures.
//!
//! The paper evaluates Atomique against four fixed-coupling baselines:
//! IBM superconducting (heavy-hex), Baker's FAA with long-range
//! interactions, FAA-rectangular (nearest neighbour grid), and
//! FAA-triangular. All of them are represented by a [`CouplingGraph`]:
//! an undirected graph over physical qubits with a precomputed all-pairs
//! shortest-path distance matrix (the quantity SABRE's heuristic consumes).

use std::collections::VecDeque;

/// An undirected coupling graph over `n` physical qubits with precomputed
/// BFS distances.
///
/// # Examples
///
/// ```
/// use raa_arch::CouplingGraph;
/// let g = CouplingGraph::grid(2, 3);
/// assert_eq!(g.num_qubits(), 6);
/// assert!(g.are_coupled(0, 1));
/// assert_eq!(g.distance(0, 5), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CouplingGraph {
    n: usize,
    adj: Vec<Vec<u32>>,
    edges: Vec<(u32, u32)>,
    dist: Vec<u16>, // row-major n×n
}

/// Distance value used for disconnected pairs.
pub const UNREACHABLE: u16 = u16::MAX;

impl CouplingGraph {
    /// Builds a graph from an edge list.
    ///
    /// Self-loops and duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= n`.
    pub fn from_edges(n: usize, raw_edges: &[(u32, u32)]) -> Self {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut edges = Vec::new();
        for &(a, b) in raw_edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge ({a},{b}) out of range"
            );
            if a == b {
                continue;
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if adj[lo as usize].contains(&hi) {
                continue;
            }
            adj[lo as usize].push(hi);
            adj[hi as usize].push(lo);
            edges.push((lo, hi));
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let dist = all_pairs_bfs(n, &adj);
        CouplingGraph {
            n,
            adj,
            edges,
            dist,
        }
    }

    /// A 1-D chain of `n` qubits.
    pub fn line(n: usize) -> Self {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1))
            .map(|i| (i as u32, i as u32 + 1))
            .collect();
        Self::from_edges(n, &edges)
    }

    /// A rectangular nearest-neighbour grid (FAA-Rectangular baseline).
    pub fn grid(rows: usize, cols: usize) -> Self {
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Self::from_edges(rows * cols, &edges)
    }

    /// A triangular lattice (FAA-Triangular baseline, Geyser-style).
    ///
    /// Implemented as the rectangular grid plus one diagonal per cell,
    /// alternating direction row by row so every interior qubit reaches six
    /// neighbours.
    pub fn triangular(rows: usize, cols: usize) -> Self {
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                    // Alternate the diagonal direction so the lattice is
                    // triangular rather than square-with-one-diagonal.
                    if r % 2 == 0 {
                        if c + 1 < cols {
                            edges.push((idx(r, c), idx(r + 1, c + 1)));
                        }
                    } else if c > 0 {
                        edges.push((idx(r, c), idx(r + 1, c - 1)));
                    }
                }
            }
        }
        Self::from_edges(rows * cols, &edges)
    }

    /// A rectangular grid with interactions allowed up to Euclidean
    /// `radius` (in units of the lattice spacing): the Baker long-range FAA
    /// baseline, with the paper's setting `radius = 4` (four Rydberg radii).
    pub fn long_range_grid(rows: usize, cols: usize, radius: f64) -> Self {
        let idx = |r: usize, c: usize| (r * cols + c) as u32;
        let r2 = radius * radius + 1e-9;
        let reach = radius.ceil() as isize;
        let mut edges = Vec::new();
        for r in 0..rows as isize {
            for c in 0..cols as isize {
                for dr in 0..=reach {
                    for dc in -reach..=reach {
                        if dr == 0 && dc <= 0 {
                            continue; // count each pair once
                        }
                        let (nr, nc) = (r + dr, c + dc);
                        if nr < 0 || nr >= rows as isize || nc < 0 || nc >= cols as isize {
                            continue;
                        }
                        let d2 = (dr * dr + dc * dc) as f64;
                        if d2 <= r2 {
                            edges
                                .push((idx(r as usize, c as usize), idx(nr as usize, nc as usize)));
                        }
                    }
                }
            }
        }
        Self::from_edges(rows * cols, &edges)
    }

    /// An IBM-style heavy-hex lattice.
    ///
    /// `chain_rows` horizontal chains of `chain_len` qubits each, joined by
    /// bridge qubits every four columns with the standard alternating
    /// offset. `heavy_hex(7, 15)` gives a 129-qubit device with the same
    /// degree-≤3 connectivity as IBM Washington (127 qubits); the paper's
    /// superconducting baseline.
    pub fn heavy_hex(chain_rows: usize, chain_len: usize) -> Self {
        let chain_base: Vec<u32> = {
            let mut base = Vec::with_capacity(chain_rows);
            let mut next = 0u32;
            for r in 0..chain_rows {
                base.push(next);
                next += chain_len as u32;
                if r + 1 < chain_rows {
                    // bridges between row r and r+1
                    let offset = if r % 2 == 0 { 0 } else { 2 };
                    let nbridges = chain_len.saturating_sub(offset).div_ceil(4);
                    next += nbridges as u32;
                }
            }
            base
        };
        let mut edges = Vec::new();
        let mut next_bridge;
        for r in 0..chain_rows {
            let base = chain_base[r];
            for c in 0..chain_len - 1 {
                edges.push((base + c as u32, base + c as u32 + 1));
            }
            if r + 1 < chain_rows {
                let offset = if r % 2 == 0 { 0 } else { 2 };
                next_bridge = base + chain_len as u32;
                let below = chain_base[r + 1];
                let mut c = offset;
                while c < chain_len {
                    edges.push((base + c as u32, next_bridge));
                    edges.push((next_bridge, below + c as u32));
                    next_bridge += 1;
                    c += 4;
                }
            }
        }
        let n = {
            let last_base = chain_base[chain_rows - 1];
            (last_base + chain_len as u32) as usize
        };
        Self::from_edges(n, &edges)
    }

    /// The complete multipartite graph over the given partition sizes.
    ///
    /// This is Atomique's coarse coupling model (paper Sec. I/III): qubits
    /// in different arrays can always interact via movement; qubits in the
    /// same array never can. Partition of qubit `q` is recoverable with
    /// prefix-sum arithmetic over `part_sizes` by the caller.
    pub fn complete_multipartite(part_sizes: &[usize]) -> Self {
        let n: usize = part_sizes.iter().sum();
        let mut part_of = Vec::with_capacity(n);
        for (p, &s) in part_sizes.iter().enumerate() {
            part_of.extend(std::iter::repeat_n(p, s));
        }
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                if part_of[a] != part_of[b] {
                    edges.push((a as u32, b as u32));
                }
            }
        }
        Self::from_edges(n, &edges)
    }

    /// The complete multipartite graph, built analytically instead of via
    /// [`Self::from_edges`] + all-pairs BFS.
    ///
    /// Produces a graph *identical field-for-field* to
    /// [`Self::complete_multipartite`] — same edge order, same sorted
    /// adjacency lists, same distance matrix — but in O(n²) writes instead
    /// of O(n·E) BFS work plus the O(E·deg) duplicate scan of `from_edges`.
    /// The structure admits closed forms because partitions are contiguous
    /// index ranges: every cross-part pair is an edge (distance 1), every
    /// intra-part pair at distance 2 via any vertex of another part (or
    /// [`UNREACHABLE`] when only one part is populated), and a vertex's
    /// sorted neighbour list is simply "everything outside my part".
    /// Equality against the naive builder is pinned by tests below; the
    /// `TranspileIndex::Indexed` compile path depends on it.
    pub fn complete_multipartite_indexed(part_sizes: &[usize]) -> Self {
        let n: usize = part_sizes.iter().sum();
        // Per-vertex part range [start, end): parts occupy contiguous
        // ascending index ranges, which is what makes every order below
        // reproducible without sorting.
        let mut range_of: Vec<(usize, usize)> = Vec::with_capacity(n);
        let mut off = 0usize;
        for &s in part_sizes {
            for _ in 0..s {
                range_of.push((off, off + s));
            }
            off += s;
        }
        let populated = part_sizes.iter().filter(|&&s| s > 0).count();

        let mut adj: Vec<Vec<u32>> = Vec::with_capacity(n);
        for &(s, e) in &range_of {
            let mut a = Vec::with_capacity(n - (e - s));
            a.extend(0..s as u32);
            a.extend(e as u32..n as u32);
            adj.push(a);
        }

        // from_edges emits (a, b) with a < b in a-major order; with
        // contiguous parts the cross-part b > a are exactly b ∈ [end_a, n).
        let sum_sq: usize = part_sizes.iter().map(|&s| s * s).sum();
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity((n * n - sum_sq) / 2);
        for (a, &(_, e)) in range_of.iter().enumerate() {
            edges.extend((e as u32..n as u32).map(|b| (a as u32, b)));
        }

        let mut dist = vec![UNREACHABLE; n * n];
        for x in 0..n {
            let row = x * n;
            if populated >= 2 {
                let (s, e) = range_of[x];
                dist[row..row + n].fill(1);
                dist[row + s..row + e].fill(2);
            }
            dist[row + x] = 0;
        }

        CouplingGraph {
            n,
            adj,
            edges,
            dist,
        }
    }

    /// Number of physical qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The deduplicated edge list with `a < b`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// The neighbours of `q`, sorted ascending.
    pub fn neighbors(&self, q: u32) -> &[u32] {
        &self.adj[q as usize]
    }

    /// Whether `a` and `b` share an edge.
    pub fn are_coupled(&self, a: u32, b: u32) -> bool {
        self.adj[a as usize].binary_search(&b).is_ok()
    }

    /// Shortest-path distance in hops ([`UNREACHABLE`] if disconnected).
    #[inline]
    pub fn distance(&self, a: u32, b: u32) -> u16 {
        self.dist[a as usize * self.n + b as usize]
    }

    /// Whether the graph is connected (every pair reachable).
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return true;
        }
        (0..self.n).all(|b| self.dist[b] != UNREACHABLE)
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(|a| a.len()).max().unwrap_or(0)
    }

    /// Average vertex degree.
    pub fn avg_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        2.0 * self.edges.len() as f64 / self.n as f64
    }
}

fn all_pairs_bfs(n: usize, adj: &[Vec<u32>]) -> Vec<u16> {
    let mut dist = vec![UNREACHABLE; n * n];
    let mut queue = VecDeque::new();
    for src in 0..n {
        let row = src * n;
        dist[row + src] = 0;
        queue.clear();
        queue.push_back(src as u32);
        while let Some(u) = queue.pop_front() {
            let du = dist[row + u as usize];
            for &v in &adj[u as usize] {
                if dist[row + v as usize] == UNREACHABLE {
                    dist[row + v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_distances() {
        let g = CouplingGraph::line(5);
        assert_eq!(g.num_qubits(), 5);
        assert_eq!(g.edges().len(), 4);
        assert_eq!(g.distance(0, 4), 4);
        assert_eq!(g.distance(2, 2), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn grid_structure() {
        let g = CouplingGraph::grid(3, 3);
        assert_eq!(g.num_qubits(), 9);
        assert_eq!(g.edges().len(), 12);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.distance(0, 8), 4); // Manhattan
        assert!(g.are_coupled(0, 1));
        assert!(g.are_coupled(0, 3));
        assert!(!g.are_coupled(0, 4));
    }

    #[test]
    fn triangular_has_more_edges_than_grid() {
        let t = CouplingGraph::triangular(4, 4);
        let g = CouplingGraph::grid(4, 4);
        assert!(t.edges().len() > g.edges().len());
        assert_eq!(t.max_degree(), 6);
        // Distances can only shrink with more edges.
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert!(t.distance(a, b) <= g.distance(a, b));
            }
        }
    }

    #[test]
    fn long_range_radius_one_equals_grid() {
        let lr = CouplingGraph::long_range_grid(3, 3, 1.0);
        let g = CouplingGraph::grid(3, 3);
        assert_eq!(lr.edges().len(), g.edges().len());
    }

    #[test]
    fn long_range_radius_four_reaches_far() {
        let lr = CouplingGraph::long_range_grid(5, 5, 4.0);
        assert!(lr.are_coupled(0, 4)); // distance 4 along a row
        assert!(lr.are_coupled(0, 6)); // diagonal sqrt(2)
        assert!(!lr.are_coupled(0, 24)); // corner-to-corner sqrt(32) > 4
        assert_eq!(lr.distance(0, 24), 2);
    }

    #[test]
    fn heavy_hex_is_connected_and_sparse() {
        let g = CouplingGraph::heavy_hex(7, 15);
        assert!(
            g.num_qubits() >= 120 && g.num_qubits() <= 135,
            "n={}",
            g.num_qubits()
        );
        assert!(g.is_connected());
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn complete_multipartite_structure() {
        let g = CouplingGraph::complete_multipartite(&[2, 2]);
        assert_eq!(g.num_qubits(), 4);
        // parts {0,1} and {2,3}: edges only across
        assert!(!g.are_coupled(0, 1));
        assert!(!g.are_coupled(2, 3));
        assert!(g.are_coupled(0, 2));
        assert!(g.are_coupled(1, 3));
        assert_eq!(g.distance(0, 1), 2);
        assert_eq!(g.distance(0, 2), 1);
    }

    /// The analytic multipartite builder must be indistinguishable from
    /// the naive one down to private field contents: the indexed transpile
    /// path swaps it in and claims bit-identical compiles on top of it.
    #[test]
    fn indexed_multipartite_equals_naive_field_for_field() {
        let shapes: &[&[usize]] = &[
            &[],
            &[0],
            &[1],
            &[3],
            &[0, 3],
            &[5, 0],
            &[1, 1],
            &[2, 2],
            &[1, 2, 3],
            &[0, 2, 0, 3],
            &[4, 4, 4],
            &[1, 7],
            &[2, 3, 2, 3],
        ];
        for &parts in shapes {
            let naive = CouplingGraph::complete_multipartite(parts);
            let fast = CouplingGraph::complete_multipartite_indexed(parts);
            assert_eq!(naive.n, fast.n, "{parts:?}: n");
            assert_eq!(naive.adj, fast.adj, "{parts:?}: adjacency");
            assert_eq!(naive.edges, fast.edges, "{parts:?}: edge order");
            assert_eq!(naive.dist, fast.dist, "{parts:?}: distance matrix");
        }
    }

    #[test]
    fn indexed_multipartite_single_part_is_disconnected() {
        let g = CouplingGraph::complete_multipartite_indexed(&[4]);
        assert_eq!(g.distance(0, 3), UNREACHABLE);
        assert_eq!(g.distance(2, 2), 0);
        assert!(g.edges().is_empty());
        assert!(!g.is_connected());
    }

    #[test]
    fn disconnected_graph_reports_unreachable() {
        let g = CouplingGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(g.distance(0, 2), UNREACHABLE);
        assert!(!g.is_connected());
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let g = CouplingGraph::from_edges(3, &[(0, 1), (1, 0), (1, 1), (1, 2)]);
        assert_eq!(g.edges().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CouplingGraph::from_edges(2, &[(0, 5)]);
    }
}
