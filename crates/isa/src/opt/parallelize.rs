//! Pulse re-parallelization: two Rydberg pulses separated only by moves
//! merge into one pulse driving both pair sets at once.
//!
//! The router plans gate-by-gate; when two consecutively scheduled gate
//! groups are geometrically independent, the emitted stream still fires
//! two pulses with a retract/approach window between them. The global
//! Rydberg laser does not care: if *both* pair sets can legally sit at
//! their gate positions simultaneously, one pulse executes them all —
//! Arctic-style move batching recovered post hoc. The pass merges
//! `pulse(P₁) … moves … pulse(P₂)` into `approaches, pulse(P₁ ++ P₂),
//! retractions` when
//!
//! * only `MoveRow`/`MoveCol` instructions sit between the pulses (any
//!   gate event, park, unpark, transfer or cooling swap is a barrier),
//! * `P₁` and `P₂` are slot-disjoint (the merged pulse must not reuse an
//!   atom — the replay verifier's `SlotReuseInPulse` rule),
//! * the window moves of lines hosting `P₁`'s AOD atoms (their
//!   retractions) commute with the rest: no line is moved by both
//!   classes, so hoisting `P₂`'s approaches before the merged pulse and
//!   deferring `P₁`'s retractions after it preserves every line's final
//!   position, and
//! * the *merged* configuration — `P₂`'s lines at their approach
//!   targets, `P₁`'s lines still at their gate positions — satisfies the
//!   legality checker's own pulse predicates: C2/C3 on every AOD, every
//!   scheduled pair within the blockade radius, no other in-field pair
//!   within it.
//!
//! The rewrite deletes one instruction (the first pulse) and modifies
//! the survivor plus the window moves in place — one instruction saved
//! per merge, which fits the no-insertion edit-map contract. The
//! merged-configuration geometry is decided by the shared
//! [`cost::pulse_configuration_legal`] predicate. Line travel is
//! untouched —
//! the moves keep their endpoints, only their order around the pulse
//! changes. This is the one pass that rewrites the gate-event sequence,
//! which the safety harness admits because the *flattened* event
//! sequence (pair lists concatenated in stream order) is preserved and
//! the replay verdict is re-proven on the candidate.

use crate::program::{Instr, IsaProgram, SiteSpec};

use super::{cost, move_key, PassEdit, Tracker};

/// Runs the pass; `None` if no mergeable pulse window exists.
pub(crate) fn run(program: &IsaProgram) -> Option<PassEdit> {
    let instrs = &program.instrs;
    let interact = program.interaction_radius_tracks();
    if !(interact.is_finite() && interact > 0.0) {
        return None;
    }
    let (mut tracker, start) = Tracker::from_init(instrs)?;
    let mut out = instrs.to_vec();
    let mut removed = vec![false; instrs.len()];
    let mut merges = 0usize;
    // Indices below this bound were rewritten by an earlier merge this
    // run; a new window may not start inside one.
    let mut window_end = start;

    for (pc, instr) in instrs.iter().enumerate().skip(start) {
        if pc >= window_end {
            if let Some(k) = try_merge(program, &tracker, pc, interact, &mut out, &mut removed) {
                merges += 1;
                window_end = k + 1;
            }
        }
        // The tracker replays the *original* stream: a merge preserves
        // every line's position at the window's end, so original state
        // and rewritten state agree from there on.
        tracker.apply(instr)?;
    }

    if merges == 0 {
        return None;
    }
    debug_assert_eq!(merges, removed.iter().filter(|&&r| r).count());
    Some(PassEdit {
        out,
        removed,
        rewrites: merges,
    })
}

/// Attempts one merge with the pulse at `pc`; on success rewrites
/// `out`/`removed` and returns the partner pulse's index.
fn try_merge(
    program: &IsaProgram,
    at_first_pulse: &Tracker,
    pc: usize,
    interact: f64,
    out: &mut [Instr],
    removed: &mut [bool],
) -> Option<usize> {
    let instrs = &program.instrs;
    let Instr::RydbergPulse { pairs: p1 } = &instrs[pc] else {
        return None;
    };
    if p1.is_empty() {
        return None;
    }
    // The partner: the next pulse, reachable through moves only.
    let mut k = pc + 1;
    loop {
        match instrs.get(k)? {
            Instr::MoveRow { .. } | Instr::MoveCol { .. } => k += 1,
            Instr::RydbergPulse { .. } => break,
            _ => return None,
        }
    }
    let Instr::RydbergPulse { pairs: p2 } = &instrs[k] else {
        return None;
    };
    if p2.is_empty() || !slots_disjoint(p1, p2) {
        return None;
    }

    // Classify the window moves: moves of lines hosting P1's AOD atoms
    // are its retractions and must execute after the merged pulse;
    // everything else (P2's approaches, bystander repositioning) hoists
    // before it. A line moved by both classes cannot commute — but each
    // move addresses exactly one line, and the classification is by
    // line, so the split is always consistent.
    let p1_lines = pair_lines(&program.sites, p1);
    let window = &instrs[pc + 1..k];
    let mut approaches: Vec<&Instr> = Vec::new();
    let mut retractions: Vec<&Instr> = Vec::new();
    for instr in window {
        let key = move_key(instr).expect("window is moves only");
        if p1_lines.contains(&key) {
            retractions.push(instr);
        } else {
            approaches.push(instr);
        }
    }

    // The merged configuration: the state at the first pulse with the
    // hoisted approaches applied.
    let mut merged = at_first_pulse.clone();
    for instr in &approaches {
        merged.apply(instr)?;
    }
    if !merged_pulse_legal(&merged, &program.sites, p1, p2, interact) {
        return None;
    }

    // Rewrite the window in place: approaches, merged pulse,
    // retractions; the partner pulse's slot is the deleted index.
    let mut pairs = p1.clone();
    pairs.extend_from_slice(p2);
    let mut idx = pc;
    for instr in approaches {
        out[idx] = instr.clone();
        idx += 1;
    }
    out[idx] = Instr::RydbergPulse { pairs };
    idx += 1;
    for instr in retractions {
        out[idx] = instr.clone();
        idx += 1;
    }
    debug_assert_eq!(idx, k);
    removed[k] = true;
    Some(k)
}

/// Whether two pair lists share no slot.
fn slots_disjoint(p1: &[(u32, u32)], p2: &[(u32, u32)]) -> bool {
    p2.iter().all(|&(a, b)| {
        !p1.iter()
            .any(|&(x, y)| a == x || a == y || b == x || b == y)
    })
}

/// The `(aod, is_row, line)` keys hosting the AOD atoms of `pairs`.
fn pair_lines(sites: &[SiteSpec], pairs: &[(u32, u32)]) -> Vec<(u8, bool, u16)> {
    let mut lines = Vec::new();
    for &(a, b) in pairs {
        for s in [a, b] {
            let Some(site) = sites.get(s as usize) else {
                continue;
            };
            if site.array > 0 {
                let aod = site.array - 1;
                for key in [(aod, true, site.row), (aod, false, site.col)] {
                    if !lines.contains(&key) {
                        lines.push(key);
                    }
                }
            }
        }
    }
    lines
}

/// A slot's position under `tracker`, or `None` for out-of-range data.
fn slot_pos(tracker: &Tracker, site: &SiteSpec) -> Option<(f64, f64)> {
    if site.array == 0 {
        Some((site.row as f64, site.col as f64))
    } else {
        let aod = site.array - 1;
        Some((
            tracker.line(aod, true, site.row)?,
            tracker.line(aod, false, site.col)?,
        ))
    }
}

/// Whether a slot is in the interaction field under `tracker`.
fn in_field(tracker: &Tracker, site: &SiteSpec) -> bool {
    site.array == 0 || tracker.is_parked(site.array - 1) != Some(true)
}

/// The merged-configuration legality test, delegated to the shared
/// [`cost::pulse_configuration_legal`] predicate (the same one the
/// Atomique layered router consults): C2/C3 on every AOD, every
/// scheduled pair in the field and in range, no other in-field pair
/// within the blockade radius.
fn merged_pulse_legal(
    merged: &Tracker,
    sites: &[SiteSpec],
    p1: &[(u32, u32)],
    p2: &[(u32, u32)],
    interact: f64,
) -> bool {
    let axes = merged
        .aods
        .iter()
        .flat_map(|a| [a.rows.as_slice(), a.cols.as_slice()]);
    let mut in_field_pos: Vec<(u32, (f64, f64))> = Vec::with_capacity(sites.len());
    for (s, site) in sites.iter().enumerate() {
        if in_field(merged, site) {
            let Some(p) = slot_pos(merged, site) else {
                return false;
            };
            in_field_pos.push((s as u32, p));
        }
    }
    let mut desired: Vec<(u32, u32)> = p1
        .iter()
        .chain(p2)
        .map(|&(a, b)| (a.min(b), a.max(b)))
        .collect();
    desired.sort_unstable();
    if desired
        .iter()
        .any(|&(a, b)| b as usize >= sites.len() || a as usize >= sites.len())
    {
        return false;
    }
    cost::pulse_configuration_legal(interact, axes, &in_field_pos, &desired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramHeader, FORMAT_VERSION};
    use raa_circuit::{Circuit, Gate, Qubit};

    /// Two independent SLM–AOD gates far apart: slot 1 (AOD0) meets slot
    /// 0 at the origin, slot 3 (AOD1) meets slot 2 at (2, 2). The
    /// sequential emission fires two pulses with AOD0's retraction and
    /// AOD1's approach between them.
    fn two_stage_program() -> IsaProgram {
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(2), Qubit(3)));
        IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("test", "parallelize"),
            slot_of_qubit: vec![0, 1, 2, 3],
            sites: vec![
                SiteSpec {
                    array: 0,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 1,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 0,
                    row: 2,
                    col: 2,
                },
                SiteSpec {
                    array: 2,
                    row: 0,
                    col: 0,
                },
            ],
            reference: c,
            instrs: vec![
                Instr::InitSlm { rows: 4, cols: 4 },
                Instr::InitAod {
                    aod: 0,
                    rows: 1,
                    cols: 1,
                    fx: 0.4,
                    fy: 0.6,
                },
                Instr::InitAod {
                    aod: 1,
                    rows: 1,
                    cols: 1,
                    fx: 2.25,
                    fy: 2.25,
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.6,
                    to: 0.05,
                    retract: false,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 0,
                    from: 0.4,
                    to: 0.08,
                    retract: false,
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.05,
                    to: 0.6,
                    retract: true,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 0,
                    from: 0.08,
                    to: 0.4,
                    retract: true,
                },
                Instr::MoveRow {
                    aod: 1,
                    row: 0,
                    from: 2.25,
                    to: 2.05,
                    retract: false,
                },
                Instr::MoveCol {
                    aod: 1,
                    col: 0,
                    from: 2.25,
                    to: 2.08,
                    retract: false,
                },
                Instr::RydbergPulse {
                    pairs: vec![(2, 3)],
                },
                Instr::MoveRow {
                    aod: 1,
                    row: 0,
                    from: 2.05,
                    to: 2.25,
                    retract: true,
                },
                Instr::MoveCol {
                    aod: 1,
                    col: 0,
                    from: 2.08,
                    to: 2.25,
                    retract: true,
                },
            ],
        }
    }

    #[test]
    fn independent_pulses_merge() {
        let p = two_stage_program();
        crate::check::check_legality(&p).unwrap();
        let edit = run(&p).unwrap();
        assert_eq!(edit.rewrites, 1);
        let kept = edit.kept();
        assert_eq!(kept.len(), p.instrs.len() - 1);
        // AOD1's approach hoists before the merged pulse, AOD0's
        // retraction defers after it; the merged pair list keeps stream
        // order (P1 then P2).
        let expected: Vec<Instr> = p.instrs[..5] // inits + AOD0 approach
            .iter()
            .cloned()
            .chain([
                p.instrs[8].clone(), // AOD1 row approach
                p.instrs[9].clone(), // AOD1 col approach
                Instr::RydbergPulse {
                    pairs: vec![(0, 1), (2, 3)],
                },
                p.instrs[6].clone(),  // AOD0 row retraction
                p.instrs[7].clone(),  // AOD0 col retraction
                p.instrs[11].clone(), // AOD1 retractions
                p.instrs[12].clone(),
            ])
            .collect();
        assert_eq!(kept, expected);
        // The merged stream still passes the oracle.
        let merged = IsaProgram {
            instrs: kept,
            ..p.clone()
        };
        crate::check::check_legality(&merged).unwrap();
        crate::replay::replay_verify(&merged).unwrap();
    }

    #[test]
    fn must_not_merge_overlapping_slots() {
        let mut p = two_stage_program();
        // Second gate reuses slot 1: merging would reuse an atom in one
        // pulse.
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(2), Qubit(1)));
        p.reference = c;
        for instr in &mut p.instrs {
            if let Instr::RydbergPulse { pairs } = instr {
                if pairs == &vec![(2, 3)] {
                    *pairs = vec![(2, 1)];
                }
            }
        }
        assert!(run(&p).is_none());
    }

    #[test]
    fn must_not_merge_across_a_barrier() {
        for barrier in [
            Instr::RamanLayer { gates: vec![] },
            Instr::Unpark { aod: 0 },
            Instr::Park { kept: vec![0, 1] },
            Instr::Cool { aod: 0 },
        ] {
            let mut p = two_stage_program();
            p.instrs.insert(7, barrier);
            assert!(run(&p).is_none());
        }
    }

    #[test]
    fn must_not_merge_when_blockade_would_leak() {
        // An AOD1–AOD2 gate whose parked position is legal but whose
        // gate position sits 0.139 tracks from the *un-retracted* AOD0
        // atom: sequentially legal (AOD0 retracts home before the second
        // pulse), but at the merged configuration slot 1 would still be
        // at (0.05, 0.08) — inside the 1/6-track blockade radius of slot
        // 2 at (0.1, 0.21).
        let mut c = Circuit::new(4);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(2), Qubit(3)));
        let mrow = |aod: u8, from: f64, to: f64, retract: bool| Instr::MoveRow {
            aod,
            row: 0,
            from,
            to,
            retract,
        };
        let mcol = |aod: u8, from: f64, to: f64, retract: bool| Instr::MoveCol {
            aod,
            col: 0,
            from,
            to,
            retract,
        };
        let p = IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("test", "parallelize-leak"),
            slot_of_qubit: vec![0, 1, 2, 3],
            sites: vec![
                SiteSpec {
                    array: 0,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 1,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 2,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 3,
                    row: 0,
                    col: 0,
                },
            ],
            reference: c,
            instrs: vec![
                Instr::InitSlm { rows: 4, cols: 4 },
                Instr::InitAod {
                    aod: 0,
                    rows: 1,
                    cols: 1,
                    fx: 0.4,
                    fy: 0.6,
                },
                Instr::InitAod {
                    aod: 1,
                    rows: 1,
                    cols: 1,
                    fx: 2.25,
                    fy: 2.25,
                },
                Instr::InitAod {
                    aod: 2,
                    rows: 1,
                    cols: 1,
                    fx: 3.4,
                    fy: 3.4,
                },
                mrow(0, 0.6, 0.05, false),
                mcol(0, 0.4, 0.08, false),
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
                mrow(0, 0.05, 0.6, true),
                mcol(0, 0.08, 0.4, true),
                mrow(1, 2.25, 0.1, false),
                mcol(1, 2.25, 0.21, false),
                mrow(2, 3.4, 0.15, false),
                mcol(2, 3.4, 0.29, false),
                Instr::RydbergPulse {
                    pairs: vec![(2, 3)],
                },
                mrow(1, 0.1, 2.25, true),
                mcol(1, 0.21, 2.25, true),
                mrow(2, 0.15, 3.4, true),
                mcol(2, 0.29, 3.4, true),
            ],
        };
        crate::check::check_legality(&p).unwrap();
        crate::replay::replay_verify(&p).unwrap();
        assert!(run(&p).is_none());
    }

    #[test]
    fn merge_is_stable_under_reapplication() {
        let p = two_stage_program();
        let kept = run(&p).unwrap().kept();
        let merged = IsaProgram { instrs: kept, ..p };
        assert!(run(&merged).is_none(), "second run found more merges");
    }
}
