//! The optimizer's cost model, shared with upstream planners.
//!
//! The pass pipeline's applicability decisions reduce to a small set of
//! predicates: when two moves of one line are one move in disguise,
//! when a retract/approach round trip cancels, and when a merged pulse
//! configuration is legal. They are factored out here — public, so a
//! *scheduler* can consult the very same rules the post-schedule passes
//! apply. The Atomique layered router
//! (`atomique::AtomiqueConfig::router_strategy`) does exactly that: it
//! plans approaches knowing which retractions the
//! [`fuse`](mod@crate::opt::fuse) pass would cancel anyway, and batches
//! stages under the same merged-pulse geometry the
//! [`parallelize`](mod@crate::opt::parallelize) pass applies post hoc.
//! Keeping both sides on one predicate set means the planner and the
//! passes cannot disagree about what a rewrite is worth — the feedback
//! loop between optimizer and router is closed by construction, not by
//! convention.
//!
//! All positions are in track units, exactly as carried by
//! [`Instr::MoveRow`](crate::Instr::MoveRow) /
//! [`Instr::MoveCol`](crate::Instr::MoveCol).

use raa_spatial::SpatialGrid;

/// Slack applied to strict inequalities, matching the legality checker.
const EPS: f64 = 1e-9;

/// Whether two moves address the same line — the applicability test of
/// move coalescing: consecutive moves of one `(aod, is_row, line)` with
/// no observation between them are indistinguishable from a single
/// move. Keys are `(aod, is_row, line)` as returned by the stream
/// accessors.
#[must_use]
pub fn coalescible(a: (u8, bool, u16), b: (u8, bool, u16)) -> bool {
    a == b
}

/// Whether a retraction followed by a re-approach of the same line is a
/// cancellable round trip: the approach returns the line *exactly* to
/// its position before the retraction. Exact comparison is deliberate —
/// the router re-approaches a repeated gate at bit-identical targets,
/// and an epsilon here would let the planner and the
/// [`fuse`](mod@crate::opt::fuse) pass disagree on borderline cases.
#[must_use]
pub fn round_trip_cancels(pre_retract_pos: f64, approach_to: f64) -> bool {
    approach_to == pre_retract_pos
}

/// The legality checker's pulse predicates over one candidate
/// configuration — the shared geometry test behind pulse merging
/// (`docs/ISA.md` §4.2), consulted by the
/// [`parallelize`](mod@crate::opt::parallelize) pass and by the
/// Atomique layered router so the two cannot drift apart. Radii and
/// epsilons mirror [`check_legality`](crate::check_legality) exactly;
/// a configuration accepted here cannot fail the oracle's per-pulse
/// geometry.
///
/// * `interact` — the blockade radius in track units; non-positive or
///   non-finite values reject the configuration.
/// * `axes` — every declared AOD's row vector and column vector, in
///   track units (parked arrays included: they sit at their legal home
///   spacing). Checked for C2 (strictly increasing) and C3 (adjacent
///   lines at least one blockade radius apart).
/// * `in_field` — `(slot, position)` of every atom in the interaction
///   field, ascending by slot id.
/// * `desired` — the pulse's scheduled pairs, normalized `(min, max)`
///   and sorted. Every desired pair must be in the field and within
///   the radius; no other in-field pair may be within it.
#[must_use]
pub fn pulse_configuration_legal<'a>(
    interact: f64,
    axes: impl IntoIterator<Item = &'a [f64]>,
    in_field: &[(u32, (f64, f64))],
    desired: &[(u32, u32)],
) -> bool {
    if !(interact.is_finite() && interact > 0.0) {
        return false;
    }
    debug_assert!(desired.windows(2).all(|w| w[0] <= w[1]), "desired unsorted");
    debug_assert!(
        in_field.windows(2).all(|w| w[0].0 < w[1].0),
        "in_field not ascending"
    );

    // C2 (strict order) and C3 (blockade-radius separation) per axis.
    for axis in axes {
        for w in axis.windows(2) {
            let gap = w[1] - w[0];
            if gap <= EPS || gap < interact - EPS {
                return false;
            }
        }
    }

    // Scheduled pairs: in the field and touching.
    let pos_of = |s: u32| {
        in_field
            .binary_search_by_key(&s, |&(id, _)| id)
            .ok()
            .map(|i| in_field[i].1)
    };
    for &(a, b) in desired {
        let (Some(pa), Some(pb)) = (pos_of(a), pos_of(b)) else {
            return false; // a scheduled atom is parked out of the field
        };
        if dist(pa, pb) > interact + EPS {
            return false;
        }
    }

    // Nothing else interacts: no in-field pair outside `desired` within
    // the blockade radius (grid-accelerated, same predicate as the
    // checker's proximity scan).
    let mut grid = SpatialGrid::new(interact);
    for &(s, p) in in_field {
        grid.insert(s, p);
    }
    let mut cand: Vec<u32> = Vec::new();
    for &(x, px) in in_field {
        cand.clear();
        grid.candidates_into(px, interact, &mut cand);
        for &y in &cand {
            if y <= x || desired.binary_search(&(x, y)).is_ok() {
                continue;
            }
            let py = pos_of(y).expect("grid holds in-field slots only");
            if dist(px, py) <= interact {
                return false;
            }
        }
    }
    true
}

#[inline]
fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dr = a.0 - b.0;
    let dc = a.1 - b.1;
    (dr * dr + dc * dc).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescible_is_key_equality() {
        assert!(coalescible((0, true, 3), (0, true, 3)));
        assert!(!coalescible((0, true, 3), (0, false, 3)));
        assert!(!coalescible((0, true, 3), (1, true, 3)));
    }

    #[test]
    fn round_trips_cancel_only_on_exact_return() {
        assert!(round_trip_cancels(0.05, 0.05));
        assert!(!round_trip_cancels(0.05, 0.05 + 1e-12));
    }

    const R: f64 = 1.0 / 6.0;

    /// Two SLM atoms at (0,0) and (2,2), one AOD atom parked next to
    /// each's partner spot.
    fn base_config() -> Vec<(u32, (f64, f64))> {
        vec![
            (0, (0.0, 0.0)),
            (1, (0.05, 0.08)),
            (2, (2.0, 2.0)),
            (3, (2.05, 2.08)),
        ]
    }

    #[test]
    fn legal_merged_configuration_passes() {
        let axes: [&[f64]; 2] = [&[0.05], &[0.08]];
        assert!(pulse_configuration_legal(
            R,
            axes,
            &base_config(),
            &[(0, 1), (2, 3)],
        ));
    }

    #[test]
    fn unscheduled_proximity_fails() {
        // Pair (2,3) touches but is not desired.
        let axes: [&[f64]; 0] = [];
        assert!(!pulse_configuration_legal(
            R,
            axes,
            &base_config(),
            &[(0, 1)]
        ));
    }

    #[test]
    fn parked_desired_atom_fails() {
        let mut cfg = base_config();
        cfg.remove(1); // slot 1 out of the field
        let axes: [&[f64]; 0] = [];
        assert!(!pulse_configuration_legal(R, axes, &cfg, &[(0, 1), (2, 3)]));
    }

    #[test]
    fn too_far_desired_pair_fails() {
        let cfg = vec![(0, (0.0, 0.0)), (1, (1.0, 1.0))];
        let axes: [&[f64]; 0] = [];
        assert!(!pulse_configuration_legal(R, axes, &cfg, &[(0, 1)]));
    }

    #[test]
    fn order_and_separation_violations_fail() {
        let empty: &[(u32, (f64, f64))] = &[];
        // C2: not strictly increasing.
        assert!(!pulse_configuration_legal(R, [&[1.0, 0.5][..]], empty, &[]));
        // C3: ordered but closer than one blockade radius.
        assert!(!pulse_configuration_legal(R, [&[1.0, 1.1][..]], empty, &[]));
        assert!(pulse_configuration_legal(R, [&[1.0, 2.0][..]], empty, &[]));
    }
}
