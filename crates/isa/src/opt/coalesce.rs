//! Move coalescing: consecutive moves of one AOD line fuse into one
//! instruction.
//!
//! Line positions are only observable at Rydberg pulses and at end of
//! stream, so two moves of the same line with no observation between
//! them — `A→B` followed by `B→C` — are indistinguishable from a single
//! `A→C`. The pass scans past instructions that neither observe nor
//! overwrite positions (Raman layers, unparks, moves of *other* lines)
//! and stops at any barrier (pulse, transfer, park, cooling swap).
//! Triangle inequality guarantees the fused travel `|C−A|` never
//! exceeds `|B−A| + |C−B|`, so both instruction count and line travel
//! are non-increasing.
//!
//! This is the workhorse on Atomique streams: a movement stage's
//! retraction and the next stage's approach of the same line always
//! fuse (no pulse separates them).

use crate::program::Instr;

use super::{cost, is_barrier, move_key, move_retract, move_to, PassEdit};

/// Runs the pass; `None` if no fusion applies.
pub(crate) fn run(instrs: &[Instr]) -> Option<PassEdit> {
    let mut out: Vec<Instr> = instrs.to_vec();
    let mut removed = vec![false; out.len()];
    let mut fused = 0usize;

    for i in 0..out.len() {
        if removed[i] {
            continue;
        }
        let Some(key) = move_key(&out[i]) else {
            continue;
        };
        let mut j = i + 1;
        while j < out.len() {
            if removed[j] {
                j += 1;
                continue;
            }
            if is_barrier(&out[j]) {
                break;
            }
            if move_key(&out[j]).is_some_and(|k| cost::coalescible(key, k)) {
                let to = move_to(&out[j])?;
                let retract = move_retract(&out[i])? && move_retract(&out[j])?;
                set_target(&mut out[i], to, retract);
                removed[j] = true;
                fused += 1;
            }
            j += 1;
        }
    }

    if fused == 0 {
        return None;
    }
    Some(PassEdit {
        out,
        removed,
        rewrites: fused,
    })
}

/// Rewrites a move's target and retraction flag in place (the `from`
/// field keeps the original origin, so travel accounting stays honest).
fn set_target(instr: &mut Instr, new_to: f64, new_retract: bool) {
    match instr {
        Instr::MoveRow { to, retract, .. } | Instr::MoveCol { to, retract, .. } => {
            *to = new_to;
            *retract = new_retract;
        }
        _ => unreachable!("set_target on a non-move"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrow(from: f64, to: f64, retract: bool) -> Instr {
        Instr::MoveRow {
            aod: 0,
            row: 0,
            from,
            to,
            retract,
        }
    }

    #[test]
    fn adjacent_same_line_moves_fuse() {
        let instrs = vec![mrow(0.6, 0.3, false), mrow(0.3, 0.05, false)];
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert_eq!(out, vec![mrow(0.6, 0.05, false)]);
    }

    #[test]
    fn fusion_skips_position_neutral_instructions() {
        let instrs = vec![
            mrow(0.6, 0.3, false),
            Instr::RamanLayer { gates: vec![] },
            Instr::MoveCol {
                aod: 0,
                col: 0,
                from: 0.4,
                to: 0.1,
                retract: false,
            },
            Instr::Unpark { aod: 1 },
            mrow(0.3, 0.05, false),
        ];
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], mrow(0.6, 0.05, false));
    }

    #[test]
    fn chains_fuse_into_one_move() {
        let instrs = vec![
            mrow(0.6, 0.5, true),
            mrow(0.5, 0.4, true),
            mrow(0.4, 0.3, true),
        ];
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 2);
        assert_eq!(out, vec![mrow(0.6, 0.3, true)]);
    }

    #[test]
    fn retract_flag_survives_only_pure_retraction_chains() {
        let instrs = vec![mrow(0.05, 0.6, true), mrow(0.6, 0.1, false)];
        let (out, _) = run(&instrs).unwrap().into_parts();
        assert_eq!(out, vec![mrow(0.05, 0.1, false)]);
    }

    #[test]
    fn must_not_fire_across_a_pulse() {
        let instrs = vec![
            mrow(0.6, 0.05, false),
            Instr::RydbergPulse { pairs: vec![] },
            mrow(0.05, 0.6, true),
        ];
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn must_not_fire_across_park_transfer_or_cool() {
        for barrier in [
            Instr::Park { kept: vec![0] },
            Instr::Transfer { a: 0, b: 1 },
            Instr::Cool { aod: 0 },
        ] {
            let instrs = vec![mrow(0.6, 0.3, false), barrier, mrow(0.3, 0.05, false)];
            assert!(run(&instrs).is_none());
        }
    }

    #[test]
    fn must_not_fuse_different_lines() {
        let instrs = vec![
            mrow(0.6, 0.3, false),
            Instr::MoveRow {
                aod: 0,
                row: 1,
                from: 1.6,
                to: 1.3,
                retract: false,
            },
            Instr::MoveRow {
                aod: 1,
                row: 0,
                from: 0.6,
                to: 0.3,
                retract: false,
            },
            Instr::MoveCol {
                aod: 0,
                col: 0,
                from: 0.4,
                to: 0.1,
                retract: false,
            },
        ];
        assert!(run(&instrs).is_none());
    }
}
