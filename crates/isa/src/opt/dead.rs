//! Dead-move elimination: moves whose displacement is never observed
//! are deleted.
//!
//! Two dataflow cases, both decided against replayed positions (the
//! same machine model as the legality checker), never against `from`
//! fields:
//!
//! 1. **Zero move** — the target equals the line's current position and
//!    the AOD is already in the field: the instruction changes no
//!    state.
//! 2. **Killed by park** — the next instruction to touch the line
//!    before any observation (pulse, transfer, cooling swap, or end of
//!    stream) is a [`Instr::Park`], which re-homes every line: the
//!    displacement is overwritten unread. The parked flag needs no
//!    special care here because the park resets it for every AOD
//!    anyway, and nothing observes the field in between.
//!
//! A move overwritten by a later move of the *same line* is left alone:
//! that shape belongs to [mod@super::coalesce], which fuses the pair
//! while keeping the travel accounting of the surviving instruction
//! honest.

use crate::program::Instr;

use super::{move_key, move_to, PassEdit, Tracker};

/// Runs the pass; `None` if every move is live.
pub(crate) fn run(instrs: &[Instr]) -> Option<PassEdit> {
    let (mut tracker, start) = Tracker::from_init(instrs)?;
    let mut removed = vec![false; instrs.len()];
    let mut dead = 0usize;

    for i in start..instrs.len() {
        if let Some(key @ (aod, is_row, line)) = move_key(&instrs[i]) {
            let current = tracker.line(aod, is_row, line)?;
            let to = move_to(&instrs[i])?;
            let zero = to == current && !tracker.is_parked(aod)?;
            if zero || killed_by_park(instrs, &removed, i, key) {
                removed[i] = true;
                dead += 1;
                continue; // not applied: the tracker mirrors the output
            }
        }
        tracker.apply(&instrs[i])?;
    }

    if dead == 0 {
        return None;
    }
    Some(PassEdit {
        out: instrs.to_vec(),
        removed,
        rewrites: dead,
    })
}

/// `true` if the move at `i` is overwritten by a `Park` before anything
/// observes positions.
fn killed_by_park(instrs: &[Instr], removed: &[bool], i: usize, key: (u8, bool, u16)) -> bool {
    for (j, instr) in instrs.iter().enumerate().skip(i + 1) {
        if removed[j] {
            continue;
        }
        match instr {
            Instr::Park { .. } => return true,
            Instr::RydbergPulse { .. } | Instr::Transfer { .. } | Instr::Cool { .. } => {
                return false
            }
            _ if move_key(instr) == Some(key) => return false, // coalesce's job
            _ => {}
        }
    }
    false // end of stream observes positions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init() -> Vec<Instr> {
        vec![
            Instr::InitSlm { rows: 4, cols: 4 },
            Instr::InitAod {
                aod: 0,
                rows: 1,
                cols: 1,
                fx: 0.4,
                fy: 0.6,
            },
        ]
    }

    fn mrow(from: f64, to: f64) -> Instr {
        Instr::MoveRow {
            aod: 0,
            row: 0,
            from,
            to,
            retract: false,
        }
    }

    #[test]
    fn zero_move_is_removed() {
        let mut instrs = init();
        instrs.push(mrow(0.6, 0.6)); // home row moved to where it sits
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn displacement_undone_by_park_is_removed() {
        let mut instrs = init();
        instrs.extend([
            mrow(0.6, 0.3),
            Instr::RamanLayer { gates: vec![] },
            Instr::Park { kept: vec![0] },
        ]);
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert!(!out.iter().any(|i| move_key(i).is_some()));
    }

    #[test]
    fn must_not_fire_when_a_pulse_observes_the_move() {
        let mut instrs = init();
        instrs.extend([
            mrow(0.6, 0.05),
            Instr::RydbergPulse { pairs: vec![] },
            Instr::Park { kept: vec![0] },
        ]);
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn must_not_fire_at_end_of_stream() {
        // End-of-stream legality observes positions: a trailing real
        // move is live.
        let mut instrs = init();
        instrs.push(mrow(0.6, 0.3));
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn must_not_remove_a_zero_move_that_unparks() {
        let mut instrs = init();
        instrs.extend([
            Instr::Park { kept: vec![] },
            mrow(0.6, 0.6), // zero displacement, but it brings AOD0 back
            Instr::RydbergPulse { pairs: vec![] },
        ]);
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn leaves_same_line_overwrites_to_coalescing() {
        let mut instrs = init();
        instrs.extend([mrow(0.6, 0.3), mrow(0.3, 0.05)]);
        assert!(run(&instrs).is_none());
    }
}
