//! Park/unpark elision: parking that the stream immediately undoes, or
//! that does nothing, is removed.
//!
//! Three rewrites, all tracked against the same machine model the
//! legality checker uses:
//!
//! 1. **Redundant unpark** — [`Instr::Unpark`] of an AOD that is
//!    already in the field is a pure no-op and is deleted.
//! 2. **Park–unpark folding** — `Park { kept }` followed by
//!    `Unpark { k }` with no pulse (or other barrier) between parks `k`
//!    for an unobserved interval only; the unpark is deleted and `k` is
//!    folded into `kept`. Keeping `k` in the field during the interval
//!    is unobservable (nothing pulses) and strictly *adds* atoms to
//!    every later proximity check, so the rewrite can never mask a
//!    violation — at worst the harness rejects it.
//! 3. **No-op park** — a `Park` that keeps every declared AOD while all
//!    AODs are already at home and in the field changes no state and is
//!    deleted.
//!
//! Moves of a parked AOD also unpark it, so folding skips any AOD that
//! moves inside the park–unpark window (rewrite 1 catches its unpark on
//! a later iteration instead).

use crate::program::Instr;

use super::{PassEdit, Tracker};

/// Runs the pass; `None` if no elision applies.
pub(crate) fn run(instrs: &[Instr]) -> Option<PassEdit> {
    let (mut tracker, start) = Tracker::from_init(instrs)?;
    let mut out: Vec<Instr> = instrs.to_vec();
    let mut removed = vec![false; out.len()];
    let mut elided = 0usize;

    for i in start..out.len() {
        if removed[i] {
            continue;
        }
        match &out[i] {
            Instr::Unpark { aod } if !tracker.is_parked(*aod)? => {
                removed[i] = true;
                elided += 1;
                continue;
            }
            Instr::Park { kept } => {
                let keeps_all = (0..tracker.num_aods()).all(|k| kept.contains(&(k as u8)));
                if keeps_all && tracker.all_home_in_field() {
                    removed[i] = true;
                    elided += 1;
                    continue;
                }
                let mut kept_new = kept.clone();
                let mut moved: Vec<u8> = Vec::new();
                let mut j = i + 1;
                while j < out.len() {
                    if removed[j] {
                        j += 1;
                        continue;
                    }
                    match &out[j] {
                        Instr::RydbergPulse { .. }
                        | Instr::Transfer { .. }
                        | Instr::Cool { .. }
                        | Instr::Park { .. } => break,
                        Instr::MoveRow { aod, .. } | Instr::MoveCol { aod, .. } => {
                            moved.push(*aod);
                        }
                        Instr::Unpark { aod: k } if !kept_new.contains(k) && !moved.contains(k) => {
                            kept_new.push(*k);
                            removed[j] = true;
                            elided += 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if kept_new.len() != kept.len() {
                    kept_new.sort_unstable();
                    out[i] = Instr::Park { kept: kept_new };
                }
            }
            _ => {}
        }
        tracker.apply(&out[i])?;
    }

    if elided == 0 {
        return None;
    }
    Some(PassEdit {
        out,
        removed,
        rewrites: elided,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init2() -> Vec<Instr> {
        vec![
            Instr::InitSlm { rows: 4, cols: 4 },
            Instr::InitAod {
                aod: 0,
                rows: 1,
                cols: 1,
                fx: 0.4,
                fy: 0.6,
            },
            Instr::InitAod {
                aod: 1,
                rows: 1,
                cols: 1,
                fx: 0.25,
                fy: 0.25,
            },
        ]
    }

    #[test]
    fn redundant_unpark_is_removed() {
        let mut instrs = init2();
        instrs.push(Instr::Unpark { aod: 0 }); // never parked
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn park_unpark_pair_folds_into_kept() {
        let mut instrs = init2();
        instrs.extend([
            Instr::MoveRow {
                aod: 0,
                row: 0,
                from: 0.6,
                to: 0.3,
                retract: false,
            },
            Instr::Park { kept: vec![0] },
            Instr::RamanLayer { gates: vec![] },
            Instr::Unpark { aod: 1 },
        ]);
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert_eq!(out.len(), instrs.len() - 1);
        assert_eq!(out[4], Instr::Park { kept: vec![0, 1] });
    }

    #[test]
    fn noop_park_is_removed() {
        let mut instrs = init2();
        instrs.push(Instr::Park { kept: vec![0, 1] }); // everything home, in field
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn must_not_fire_across_a_pulse() {
        let mut instrs = init2();
        instrs.extend([
            Instr::MoveRow {
                aod: 1,
                row: 0,
                from: 0.25,
                to: 0.3,
                retract: false,
            },
            Instr::Park { kept: vec![0] },
            Instr::RydbergPulse { pairs: vec![] },
            Instr::Unpark { aod: 1 },
        ]);
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn must_not_remove_a_park_that_parks_something() {
        let mut instrs = init2();
        // AOD1 moved off home: Park { kept: [0, 1] } re-homes it, so the
        // park is not a no-op even though it parks nothing.
        instrs.extend([
            Instr::MoveRow {
                aod: 1,
                row: 0,
                from: 0.25,
                to: 0.35,
                retract: false,
            },
            Instr::Park { kept: vec![0, 1] },
        ]);
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn must_not_fold_an_aod_that_moves_inside_the_window() {
        let mut instrs = init2();
        instrs.extend([
            Instr::MoveRow {
                aod: 0,
                row: 0,
                from: 0.6,
                to: 0.3,
                retract: false,
            },
            Instr::Park { kept: vec![0] },
            Instr::MoveRow {
                aod: 1,
                row: 0,
                from: 0.25,
                to: 0.3,
                retract: false,
            },
            Instr::Unpark { aod: 1 },
        ]);
        // The move already unparked AOD1, so its unpark is redundant —
        // removed by rewrite 1, not folded into the park.
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert_eq!(out[4], Instr::Park { kept: vec![0] });
        assert!(!out.iter().any(|i| matches!(i, Instr::Unpark { .. })));
    }
}
