//! Retract/approach fusion: a retraction that the next approach of the
//! same line exactly undoes is cancelled — both moves are deleted.
//!
//! The router retracts gate atoms out of the blockade radius after
//! every pulse and approaches again for the next one. When two
//! consecutive pulses drive the same pair at the same position, the
//! intervening retract/approach round trip is pure wasted travel: the
//! line ends exactly where it started, and nothing observes it in
//! between. The pass deletes such a pair when
//!
//! * the first move is flagged `retract` and the second is not,
//! * the second move returns the line to its position *before* the
//!   retraction (tracked by replay, not trusted from `from` fields),
//! * no barrier (pulse, transfer, park, cooling swap) sits between
//!   them, and
//! * the AOD is in the field at the retraction (deleting a move of a
//!   parked AOD would leave it parked, changing which atoms later
//!   pulses observe).
//!
//! Travel strictly decreases by twice the retraction distance.

use crate::program::Instr;

use super::{cost, is_barrier, move_key, move_retract, move_to, PassEdit, Tracker};

/// Runs the pass; `None` if no cancellable pair exists.
pub(crate) fn run(instrs: &[Instr]) -> Option<PassEdit> {
    let (mut tracker, start) = Tracker::from_init(instrs)?;
    let mut removed = vec![false; instrs.len()];
    let mut cancelled = 0usize;

    for i in start..instrs.len() {
        if !removed[i] {
            if let Some(key @ (aod, is_row, line)) = move_key(&instrs[i]) {
                if move_retract(&instrs[i])? && !tracker.is_parked(aod)? {
                    let before = tracker.line(aod, is_row, line)?;
                    let mut j = i + 1;
                    while j < instrs.len() {
                        if removed[j] {
                            j += 1;
                            continue;
                        }
                        if is_barrier(&instrs[j]) {
                            break;
                        }
                        if move_key(&instrs[j]) == Some(key) {
                            if !move_retract(&instrs[j])?
                                && cost::round_trip_cancels(before, move_to(&instrs[j])?)
                            {
                                removed[i] = true;
                                removed[j] = true;
                                cancelled += 1;
                            }
                            break; // the first same-line move decides
                        }
                        j += 1;
                    }
                }
            }
        }
        if !removed[i] {
            tracker.apply(&instrs[i])?;
        }
    }

    if cancelled == 0 {
        return None;
    }
    Some(PassEdit {
        out: instrs.to_vec(),
        removed,
        rewrites: cancelled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init() -> Vec<Instr> {
        vec![
            Instr::InitSlm { rows: 4, cols: 4 },
            Instr::InitAod {
                aod: 0,
                rows: 1,
                cols: 1,
                fx: 0.4,
                fy: 0.6,
            },
        ]
    }

    fn mrow(from: f64, to: f64, retract: bool) -> Instr {
        Instr::MoveRow {
            aod: 0,
            row: 0,
            from,
            to,
            retract,
        }
    }

    #[test]
    fn round_trip_retraction_is_cancelled() {
        let mut instrs = init();
        instrs.extend([
            mrow(0.6, 0.05, false),
            Instr::RydbergPulse {
                pairs: vec![(0, 1)],
            },
            mrow(0.05, 0.6, true),  // retract home...
            mrow(0.6, 0.05, false), // ...and come straight back
            Instr::RydbergPulse {
                pairs: vec![(0, 1)],
            },
            mrow(0.05, 0.6, true),
        ]);
        let (out, n) = run(&instrs).unwrap().into_parts();
        assert_eq!(n, 1);
        assert_eq!(out.len(), instrs.len() - 2);
        // The surviving stream: approach, pulse, pulse, retract.
        assert!(matches!(out[3], Instr::RydbergPulse { .. }));
        assert!(matches!(out[4], Instr::RydbergPulse { .. }));
    }

    #[test]
    fn must_not_fire_when_the_approach_targets_a_new_offset() {
        let mut instrs = init();
        instrs.extend([
            mrow(0.6, 0.05, false),
            Instr::RydbergPulse {
                pairs: vec![(0, 1)],
            },
            mrow(0.05, 0.6, true),
            mrow(0.6, 0.10, false), // different target: travel is real
        ]);
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn must_not_fire_across_a_pulse() {
        let mut instrs = init();
        instrs.extend([
            mrow(0.6, 0.05, false),
            Instr::RydbergPulse {
                pairs: vec![(0, 1)],
            },
            mrow(0.05, 0.6, true),
            Instr::RydbergPulse { pairs: vec![] },
            mrow(0.6, 0.05, false),
        ]);
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn must_not_fire_on_plain_approach_pairs() {
        // Neither move is a retraction: this is coalescing's territory.
        let mut instrs = init();
        instrs.extend([mrow(0.6, 0.3, false), mrow(0.3, 0.6, false)]);
        assert!(run(&instrs).is_none());
    }

    #[test]
    fn must_not_fire_on_a_parked_aod() {
        // The moves of a parked AOD also unpark it; deleting them would
        // leave the array out of the field.
        let mut instrs = init();
        instrs.extend([
            Instr::Park { kept: vec![] },
            mrow(0.6, 0.3, true),
            mrow(0.3, 0.6, false),
        ]);
        assert!(run(&instrs).is_none());
    }
}
