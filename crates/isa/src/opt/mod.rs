//! ISA-level optimization passes over [`IsaProgram`] instruction streams.
//!
//! The instruction stream is a stable IR: the legality checker
//! ([`check_legality`]) and the replay verifier ([`replay_verify`])
//! define its observable semantics *purely from the stream*, so
//! rewrites can be validated with no reference to any compiler's
//! internal state. Movement time dominates both duration and fidelity
//! on reconfigurable arrays (Atomique, ISCA 2024), and post-schedule
//! rewriting of move sequences recovers parallelism the scheduler left
//! behind (Arctic, 2024) — these passes shave instruction count and
//! line travel without touching a single gate.
//!
//! # Passes
//!
//! | Pass | Level | Rewrite |
//! |---|---|---|
//! | [mod@coalesce] | `Basic` | fuses consecutive moves of one AOD line into one instruction |
//! | [mod@dead] | `Basic` | drops moves whose displacement is never observed |
//! | [mod@parallelize] | `Aggressive` | merges two pulses separated only by commuting moves |
//! | [mod@fuse] | `Aggressive` | cancels a retraction undone by the next approach |
//! | [mod@park] | `Aggressive` | elides park–unpark pairs and redundant unparks |
//!
//! The applicability/profitability predicates the passes share — and
//! that upstream schedulers may consult — live in [`cost`].
//!
//! Every pass runs under a harness that refuses unsafe rewrites: after
//! each pass the candidate stream must (1) keep the *flattened*
//! sequence of observable gate events — each pulse contributing its
//! pairs in order, plus Raman layers, transfers and cooling swaps as
//! whole events — so gates may be regrouped across merged pulses but
//! never reordered, dropped or duplicated, (2) still pass
//! [`check_legality`], and (3) still pass [`replay_verify`]. A
//! candidate failing any of the three is discarded and the input kept,
//! so a buggy pass can cost performance but never correctness.
//!
//! # Incremental re-verification
//!
//! Re-running the full oracle on the whole stream for every candidate
//! makes `-O2` superlinear in stream length. Passes therefore return an
//! *edit map* (a same-length rewritten copy plus deletion flags — passes
//! only modify in place or delete, never insert), and the default
//! [`VerifyStrategy::Incremental`] harness exploits it: it replays the
//! already-verified input and the candidate in lockstep, runs the
//! geometric pulse checks only while the two machine states diverge
//! (from the first edit until line positions and parked flags converge
//! again), and runs the end-of-stream check only if the divergence
//! reaches the end. When no edit touches a gate event (every pass
//! except [mod@parallelize]) the trace is proven untouched
//! index-by-index, which pins the [`replay_verify`] verdict to the
//! input's without re-running it; when gate events *are* edited the
//! harness requires the flattened event sequence to be preserved and
//! re-proves the replay verdict on the candidate (pulse regrouping can
//! trip the verifier's slot-reuse and DAG-order rules, so it cannot be
//! pinned). Whenever the edit map cannot bound a candidate's effect the
//! harness falls back to [`VerifyStrategy::Full`], the original
//! whole-stream oracle, so every accepted rewrite is exactly as safe as
//! before — only cheaper to prove.
//! `tests/verify_differential.rs` checks that both strategies accept
//! identical rewrites across the benchmark suites.
//!
//! # How to write a safe pass
//!
//! A pass is a function `fn(&[Instr]) -> Option<PassEdit>` returning an
//! edit map — a same-length copy of the input with entries modified in
//! place, a deletion flag per entry, and a rewrite count — or `None`
//! when it finds nothing (or encounters a stream it does not understand
//! — returning `None` is always safe). Passes must never *insert*
//! instructions; the index-preserving edit-map shape is what lets the
//! harness re-verify only where the candidate diverges. To stay inside
//! the oracle's notion of equivalence, obey three rules:
//!
//! 1. **Never reorder, drop or duplicate a gate.** Rydberg pulse
//!    pairs, Raman layers, transfers and cooling swaps are the program;
//!    the harness compares their flattened sequence before and after.
//!    Adjacent pulses may merge (their pair lists concatenate in stream
//!    order — [mod@parallelize] does this), but a pass that moves a
//!    gate past another, drops one or fires one twice is rejected.
//! 2. **Positions are only observable at pulses and at end of stream.**
//!    Between those points atom trajectories are free: moves may be
//!    fused, re-timed or deleted as long as every line holds the same
//!    value at each pulse and at the end. [`Instr::Park`] both writes
//!    positions (re-home) and parks arrays, so treat it as a barrier
//!    unless the pass models it explicitly.
//! 3. **Track the parked flag.** Moves and [`Instr::Unpark`] bring an
//!    AOD into the interaction field; deleting them may leave atoms
//!    parked at a later pulse, which changes which proximity checks
//!    apply. The (crate-private) `Tracker` used by the built-in passes
//!    replays positions and parked flags exactly like the legality
//!    checker.
//!
//! # Examples
//!
//! ```
//! use raa_circuit::{Circuit, Gate, Qubit};
//! use raa_isa::{optimize, Instr, IsaProgram, OptLevel, ProgramHeader, SiteSpec, FORMAT_VERSION};
//!
//! // One CZ, with the approach split into two row moves.
//! let mut c = Circuit::new(2);
//! c.push(Gate::cz(Qubit(0), Qubit(1)));
//! let program = IsaProgram {
//!     version: FORMAT_VERSION,
//!     header: ProgramHeader::new("example", "opt-doc"),
//!     slot_of_qubit: vec![0, 1],
//!     sites: vec![
//!         SiteSpec { array: 0, row: 0, col: 0 },
//!         SiteSpec { array: 1, row: 0, col: 0 },
//!     ],
//!     reference: c,
//!     instrs: vec![
//!         Instr::InitSlm { rows: 4, cols: 4 },
//!         Instr::InitAod { aod: 0, rows: 1, cols: 1, fx: 0.4, fy: 0.6 },
//!         Instr::MoveRow { aod: 0, row: 0, from: 0.6, to: 0.3, retract: false },
//!         Instr::MoveRow { aod: 0, row: 0, from: 0.3, to: 0.05, retract: false },
//!         Instr::MoveCol { aod: 0, col: 0, from: 0.4, to: 0.08, retract: false },
//!         Instr::RydbergPulse { pairs: vec![(0, 1)] },
//!         Instr::MoveRow { aod: 0, row: 0, from: 0.05, to: 0.6, retract: true },
//!         Instr::MoveCol { aod: 0, col: 0, from: 0.08, to: 0.4, retract: true },
//!     ],
//! };
//!
//! let (optimized, report) = optimize(&program, OptLevel::Aggressive);
//! assert_eq!(report.instructions_before, 8);
//! assert_eq!(report.instructions_after, 7); // split approach coalesced
//! assert!(report.line_travel_after <= report.line_travel_before);
//! raa_isa::check_legality(&optimized)?;
//! raa_isa::replay_verify(&optimized)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod coalesce;
pub mod cost;
pub mod dead;
pub mod fuse;
pub mod parallelize;
pub mod park;

use crate::check::{check_legality, check_legality_with, init_machine, CheckMode};
use crate::program::{Instr, IsaProgram};
use crate::replay::replay_verify;
use crate::stats::IsaStats;
use raa_circuit::Gate;
use raa_par::WorkPool;
use raa_trace::Counter;

/// Candidate rewrites produced by passes (accepted + rejected).
static OPT_CANDIDATES: Counter = Counter::new("opt.candidates");
/// Candidates that survived re-verification and were committed.
static OPT_ACCEPTED: Counter = Counter::new("opt.accepted");
/// Candidates refused by the harness (the pass is then disabled).
static OPT_REJECTED: Counter = Counter::new("opt.rejected");
/// Candidates proven safe by the incremental harness alone.
static OPT_VERIFY_INCREMENTAL: Counter = Counter::new("opt.verify.incremental");
/// Whole-stream oracle runs: incremental fallbacks plus every
/// [`VerifyStrategy::Full`] candidate.
static OPT_VERIFY_FULL: Counter = Counter::new("opt.verify.full");

/// How hard [`optimize`] works on a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// `-O0`: no rewriting; [`optimize`] returns a verbatim copy.
    #[default]
    None,
    /// `-O1`: local move cleanups only — [mod@coalesce] and [mod@dead].
    Basic,
    /// `-O2`: all passes ([mod@fuse], [mod@coalesce], [mod@park],
    /// [mod@dead]), iterated to a fixpoint.
    Aggressive,
}

impl OptLevel {
    /// Parses a `-O` flag value: `0`/`none`, `1`/`basic`,
    /// `2`/`aggressive` (an optional leading `-O` is accepted).
    pub fn parse_flag(flag: &str) -> Option<OptLevel> {
        let v = flag.strip_prefix("-O").unwrap_or(flag);
        match v {
            "0" | "none" => Some(OptLevel::None),
            "1" | "basic" => Some(OptLevel::Basic),
            "2" | "aggressive" => Some(OptLevel::Aggressive),
            _ => None,
        }
    }

    /// The pass pipeline of this level, in execution order.
    /// `Aggressive` runs pulse merging first: merged windows turn
    /// inter-pulse round trips into plain round trips that
    /// [mod@fuse] and [mod@coalesce] then clean up in the same
    /// fixpoint iteration.
    fn passes(self) -> &'static [PassKind] {
        match self {
            OptLevel::None => &[],
            OptLevel::Basic => &[PassKind::Coalesce, PassKind::DeadMove],
            OptLevel::Aggressive => &[
                PassKind::Parallelize,
                PassKind::CancelRetract,
                PassKind::Coalesce,
                PassKind::ElidePark,
                PassKind::DeadMove,
            ],
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum PassKind {
    Parallelize,
    CancelRetract,
    Coalesce,
    ElidePark,
    DeadMove,
}

/// Number of [`PassKind`] variants (sizes the per-run disable table).
const NUM_PASSES: usize = 5;

impl PassKind {
    fn name(self) -> &'static str {
        match self {
            PassKind::Parallelize => "parallelize-pulses",
            PassKind::CancelRetract => "cancel-retract",
            PassKind::Coalesce => "coalesce-moves",
            PassKind::ElidePark => "elide-parks",
            PassKind::DeadMove => "dead-moves",
        }
    }

    /// Span name for this pass's candidate search + re-verification.
    fn span_name(self) -> &'static str {
        match self {
            PassKind::Parallelize => "opt.parallelize-pulses",
            PassKind::CancelRetract => "opt.cancel-retract",
            PassKind::Coalesce => "opt.coalesce-moves",
            PassKind::ElidePark => "opt.elide-parks",
            PassKind::DeadMove => "opt.dead-moves",
        }
    }

    fn run(self, program: &IsaProgram) -> Option<PassEdit> {
        match self {
            PassKind::Parallelize => parallelize::run(program),
            PassKind::CancelRetract => fuse::run(&program.instrs),
            PassKind::Coalesce => coalesce::run(&program.instrs),
            PassKind::ElidePark => park::run(&program.instrs),
            PassKind::DeadMove => dead::run(&program.instrs),
        }
    }
}

/// How [`optimize_with`] re-proves safety after each candidate rewrite.
/// Both strategies accept exactly the same rewrites (checked by
/// `tests/verify_differential.rs`); they differ only in how much of the
/// stream they re-examine per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyStrategy {
    /// Re-verify incrementally from the pass's edit map: lockstep
    /// replay of input and candidate, geometric pulse checks only while
    /// the machine states diverge, and the gate trace proven untouched
    /// index-by-index (pinning the replay verdict without re-running
    /// it) — or, for pulse-merging edits, the flattened trace proven
    /// preserved with the replay verdict re-run on the candidate.
    /// Falls back to [`VerifyStrategy::Full`] whenever the edit map
    /// cannot bound the candidate's effect.
    #[default]
    Incremental,
    /// Re-run the whole-stream oracle ([`check_legality`] +
    /// [`replay_verify`] + full gate-trace comparison) on every
    /// candidate — the original harness, kept as the incremental
    /// harness's differential baseline and fallback.
    Full,
}

/// The edit map a pass returns: a same-length rewritten copy of the
/// input plus per-entry deletion flags. Passes only modify entries in
/// place or delete them — never insert — so old index `i` and `out[i]`
/// always describe the same stream position, which is what lets the
/// incremental harness re-verify only the indices that changed.
pub(crate) struct PassEdit {
    /// Same length as the input; kept entries may be modified in place.
    pub(crate) out: Vec<Instr>,
    /// Which entries of `out` are deleted.
    pub(crate) removed: Vec<bool>,
    /// How many rewrites the pass performed.
    pub(crate) rewrites: usize,
}

impl PassEdit {
    /// The surviving stream plus the rewrite count (test convenience).
    #[cfg(test)]
    pub(crate) fn into_parts(self) -> (Vec<Instr>, usize) {
        (self.kept(), self.rewrites)
    }

    /// The surviving instruction stream.
    pub(crate) fn kept(&self) -> Vec<Instr> {
        self.out
            .iter()
            .zip(&self.removed)
            .filter(|(_, &r)| !r)
            .map(|(instr, _)| instr.clone())
            .collect()
    }
}

/// What [`optimize`] did to a stream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OptReport {
    /// The level the optimizer ran at.
    pub level: OptLevel,
    /// Fixpoint iterations executed (0 at [`OptLevel::None`]).
    pub iterations: usize,
    /// Instruction count of the input stream.
    pub instructions_before: usize,
    /// Instruction count of the optimized stream.
    pub instructions_after: usize,
    /// Summed line travel of the input stream, in track units.
    pub line_travel_before: f64,
    /// Summed line travel of the optimized stream, in track units.
    pub line_travel_after: f64,
    /// Moves fused by [mod@coalesce].
    pub coalesced_moves: usize,
    /// Pulse pairs merged by [mod@parallelize].
    pub merged_pulses: usize,
    /// Retract/approach pairs cancelled by [mod@fuse].
    pub cancelled_retractions: usize,
    /// Park/unpark instructions elided by [mod@park].
    pub elided_parks: usize,
    /// Moves deleted by [mod@dead].
    pub dead_moves: usize,
    /// Passes the safety harness refused (a refusal means a pass
    /// produced a stream that failed the oracle or grew it; the input
    /// was kept and the pass disabled for the rest of the run, so
    /// refusals cost performance, never correctness).
    pub rejected_rewrites: usize,
    /// Candidates whose verdict came from the windowed incremental
    /// re-verifier (0 under [`VerifyStrategy::Full`]).
    pub incremental_reverifies: usize,
    /// Candidates re-verified by the whole-stream oracle — every
    /// candidate under [`VerifyStrategy::Full`], incremental fallbacks
    /// otherwise.
    pub full_reverifies: usize,
    /// `true` if the *input* already failed the oracle, in which case
    /// the optimizer returned it untouched.
    pub skipped_unverified: bool,
}

impl OptReport {
    /// Instructions removed by optimization.
    pub fn instructions_saved(&self) -> usize {
        self.instructions_before - self.instructions_after
    }

    /// Line travel removed by optimization, in track units.
    pub fn line_travel_saved(&self) -> f64 {
        self.line_travel_before - self.line_travel_after
    }
}

/// Upper bound on fixpoint iterations; every accepted rewrite strictly
/// shrinks the stream, so this is never reached in practice.
const MAX_ITERATIONS: usize = 64;

/// Optimizes `program` at `level`, returning the rewritten program and
/// a report of what changed.
///
/// Safety is enforced, not assumed: the input must pass
/// [`check_legality`] + [`replay_verify`] (otherwise it is returned
/// untouched with [`OptReport::skipped_unverified`] set), and after
/// every pass the candidate stream must keep the exact observable gate
/// sequence and still pass both oracle halves, or the candidate is
/// discarded. The result therefore never has more instructions or more
/// line travel than the input, and passes the oracle whenever the input
/// does.
///
/// # Examples
///
/// ```
/// use raa_circuit::{Circuit, Gate, Qubit};
/// use raa_isa::{lower_gate_schedule, optimize, OptLevel, ProgramHeader};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::h(Qubit(0)));
/// c.push(Gate::cz(Qubit(0), Qubit(1)));
/// let program = lower_gate_schedule(&c, &[vec![1]], ProgramHeader::new("example", "doc"))?;
///
/// // Transfer-based streams are already minimal: optimization is a no-op.
/// let (optimized, report) = optimize(&program, OptLevel::Aggressive);
/// assert_eq!(optimized, program);
/// assert_eq!(report.instructions_saved(), 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(program: &IsaProgram, level: OptLevel) -> (IsaProgram, OptReport) {
    optimize_with(program, level, VerifyStrategy::default())
}

/// [`optimize`] with an explicit re-verification strategy. The result is
/// identical under both strategies; [`VerifyStrategy::Full`] exists as
/// the differential baseline and costs a whole-stream oracle run per
/// candidate.
pub fn optimize_with(
    program: &IsaProgram,
    level: OptLevel,
    strategy: VerifyStrategy,
) -> (IsaProgram, OptReport) {
    optimize_pooled(program, level, strategy, &WorkPool::sequential())
}

/// [`optimize_with`] with the harness's independent oracle work fanned
/// out over `pool`: the up-front input oracle runs its two halves
/// ([`check_legality`] and [`replay_verify`]) as a concurrent wave, and
/// every whole-stream candidate re-verify shards its C1 proximity scan
/// over the pool ([`check_legality_with`]). The pass pipeline itself
/// stays sequential — each accepted candidate feeds the next pass — so
/// the optimized stream and report are bit-identical at every worker
/// count. (On an input the oracle *rejects*, the concurrent wave still
/// runs both halves where the sequential `||` stops at the first, so
/// rejected inputs may do more oracle work — never a different
/// verdict.)
pub fn optimize_pooled(
    program: &IsaProgram,
    level: OptLevel,
    strategy: VerifyStrategy,
    pool: &WorkPool,
) -> (IsaProgram, OptReport) {
    let before = IsaStats::of(program);
    let mut report = OptReport {
        level,
        instructions_before: before.instructions,
        instructions_after: before.instructions,
        line_travel_before: before.line_travel_tracks,
        line_travel_after: before.line_travel_tracks,
        ..OptReport::default()
    };
    if level == OptLevel::None {
        return (program.clone(), report);
    }
    let input_failed = if pool.is_parallel() {
        // The two oracle halves are independent reads of the input
        // stream: run them as one wave, worker 0 sharding its C1 scan
        // over the remaining idle workers via the nested pool.
        pool.map("par.opt.oracle", &[0u8, 1], |_, &half| match half {
            0 => check_legality_with(program, CheckMode::default(), *pool).is_err(),
            _ => replay_verify(program).is_err(),
        })
        .into_iter()
        .any(|failed| failed)
    } else {
        check_legality(program).is_err() || replay_verify(program).is_err()
    };
    if input_failed {
        report.skipped_unverified = true;
        return (program.clone(), report);
    }

    let reference_trace = flat_trace(&program.instrs);
    let mut current = program.clone();
    // A pass whose candidate is refused is disabled for the rest of the
    // run: re-running it would deterministically rebuild (and re-pay the
    // oracle cost of) the same unsafe rewrite every iteration.
    let mut disabled = [false; NUM_PASSES];
    while report.iterations < MAX_ITERATIONS {
        report.iterations += 1;
        let mut changed = false;
        for &pass in level.passes() {
            if disabled[pass as usize] {
                continue;
            }
            let _pass_span = raa_trace::span(pass.span_name());
            let Some(edit) = pass.run(&current) else {
                continue;
            };
            debug_assert!(edit.rewrites > 0, "{}: rewrite without count", pass.name());
            OPT_CANDIDATES.incr();
            let kept = edit.kept();
            // The acceptance check enforces the documented guarantees
            // directly, so a buggy pass cannot break them: exact gate
            // sequence, oracle-clean, and never more instructions or
            // line travel than before the pass.
            let accepted = kept.len() < current.instrs.len()
                && match strategy {
                    VerifyStrategy::Incremental => {
                        let incremental = {
                            let _s = raa_trace::span("opt.verify.incremental");
                            verify_incremental(&current, &edit, &kept)
                        };
                        match incremental {
                            Some(verdict) => {
                                report.incremental_reverifies += 1;
                                OPT_VERIFY_INCREMENTAL.incr();
                                verdict
                            }
                            None => {
                                report.full_reverifies += 1;
                                OPT_VERIFY_FULL.incr();
                                let _s = raa_trace::span("opt.verify.full");
                                verify_full(&current, &kept, &reference_trace, pool)
                            }
                        }
                    }
                    VerifyStrategy::Full => {
                        report.full_reverifies += 1;
                        OPT_VERIFY_FULL.incr();
                        let _s = raa_trace::span("opt.verify.full");
                        verify_full(&current, &kept, &reference_trace, pool)
                    }
                };
            if accepted {
                OPT_ACCEPTED.incr();
                match pass {
                    PassKind::Parallelize => report.merged_pulses += edit.rewrites,
                    PassKind::CancelRetract => report.cancelled_retractions += edit.rewrites,
                    PassKind::Coalesce => report.coalesced_moves += edit.rewrites,
                    PassKind::ElidePark => report.elided_parks += edit.rewrites,
                    PassKind::DeadMove => report.dead_moves += edit.rewrites,
                }
                current.instrs = kept;
                changed = true;
            } else {
                report.rejected_rewrites += 1;
                OPT_REJECTED.incr();
                disabled[pass as usize] = true;
            }
        }
        if !changed {
            break;
        }
    }

    let after = IsaStats::of(&current);
    report.instructions_after = after.instructions;
    report.line_travel_after = after.line_travel_tracks;
    (current, report)
}

/// Summed `|to - from|` of all moves — the same accumulation (stream
/// order, track units) as [`IsaStats::of`], shared by both verify
/// strategies so their travel comparisons cannot disagree.
fn line_travel(instrs: &[Instr]) -> f64 {
    instrs
        .iter()
        .map(|i| match i {
            Instr::MoveRow { from, to, .. } | Instr::MoveCol { from, to, .. } => (to - from).abs(),
            _ => 0.0,
        })
        .sum()
}

/// Whether `instr` is part of the observable gate-event sequence.
fn is_gate_event(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::RydbergPulse { .. }
            | Instr::RamanLayer { .. }
            | Instr::Transfer { .. }
            | Instr::Cool { .. }
    )
}

/// One atom of the flattened gate-event sequence: a pulse contributes
/// each of its pairs in order (so merging adjacent pulses with
/// concatenated pair lists preserves the sequence); Raman layers,
/// transfers and cooling swaps are whole events.
#[derive(Debug, PartialEq)]
enum FlatEvent<'a> {
    Pair(u32, u32),
    Raman(&'a [Gate]),
    Transfer(u32, u32),
    Cool(u8),
}

/// The flattened observable gate-event sequence of a stream, as
/// normalized instructions: each [`Instr::RydbergPulse`] expands to one
/// single-pair pulse per scheduled pair (in list order); Raman layers,
/// transfers and cooling swaps pass through whole. This is the
/// equivalence relation the optimizer preserves — two streams with
/// equal flattened sequences execute the same gates in the same order,
/// differing only in how pulses are grouped — and the comparison the
/// differential tests use for layered-vs-sequential schedules.
///
/// # Examples
///
/// ```
/// use raa_isa::{flat_gate_events, Instr};
///
/// let split = [
///     Instr::RydbergPulse { pairs: vec![(0, 1)] },
///     Instr::MoveRow { aod: 0, row: 0, from: 0.0, to: 1.0, retract: true },
///     Instr::RydbergPulse { pairs: vec![(2, 3)] },
/// ];
/// let merged = [Instr::RydbergPulse { pairs: vec![(0, 1), (2, 3)] }];
/// assert_eq!(flat_gate_events(&split), flat_gate_events(&merged));
/// ```
pub fn flat_gate_events(instrs: &[Instr]) -> Vec<Instr> {
    flat_trace(instrs)
        .into_iter()
        .map(|e| match e {
            FlatEvent::Pair(a, b) => Instr::RydbergPulse {
                pairs: vec![(a, b)],
            },
            FlatEvent::Raman(gates) => Instr::RamanLayer {
                gates: gates.to_vec(),
            },
            FlatEvent::Transfer(a, b) => Instr::Transfer { a, b },
            FlatEvent::Cool(aod) => Instr::Cool { aod },
        })
        .collect()
}

/// The flattened observable gate-event sequence of a stream.
/// Optimization must preserve this sequence exactly — pulses may be
/// regrouped, but no gate may be reordered, dropped or duplicated.
/// (The borrowing twin of [`flat_gate_events`], used on the hot
/// per-candidate harness path.)
fn flat_trace(instrs: &[Instr]) -> Vec<FlatEvent<'_>> {
    let mut out = Vec::new();
    for instr in instrs {
        match instr {
            Instr::RydbergPulse { pairs } => {
                out.extend(pairs.iter().map(|&(a, b)| FlatEvent::Pair(a, b)));
            }
            Instr::RamanLayer { gates } => out.push(FlatEvent::Raman(gates)),
            Instr::Transfer { a, b } => out.push(FlatEvent::Transfer(*a, *b)),
            Instr::Cool { aod } => out.push(FlatEvent::Cool(*aod)),
            _ => {}
        }
    }
    out
}

/// The original whole-stream acceptance check: travel non-increasing,
/// flattened gate trace preserved, and both oracle halves on the full
/// candidate (the replay half re-proves DAG order and exactly-once
/// execution under any pulse regrouping).
fn verify_full(
    current: &IsaProgram,
    kept: &[Instr],
    reference_trace: &[FlatEvent<'_>],
    pool: &WorkPool,
) -> bool {
    let candidate = IsaProgram {
        instrs: kept.to_vec(),
        ..current.clone()
    };
    line_travel(&candidate.instrs) <= line_travel(&current.instrs) + 1e-12
        && flat_trace(&candidate.instrs) == reference_trace
        && check_legality_with(&candidate, CheckMode::default(), *pool).is_ok()
        && replay_verify(&candidate).is_ok()
}

/// The incremental acceptance check.
///
/// Returns `Some(verdict)` when the edit map bounds the candidate's
/// effect, `None` when it cannot (the caller falls back to
/// [`verify_full`]). Soundness rests on `current` being oracle-verified
/// (an invariant of [`optimize_with`]: the input is checked up front and
/// every accepted candidate is proven before replacing it) and on the
/// lockstep argument: once the candidate's machine state re-converges
/// with the input's and the remaining instructions are identical, every
/// later check must reproduce the input's passing verdict.
fn verify_incremental(current: &IsaProgram, edit: &PassEdit, kept: &[Instr]) -> Option<bool> {
    let old = &current.instrs;
    if edit.out.len() != old.len() || edit.removed.len() != old.len() {
        return None; // malformed edit map: effect unbounded
    }
    let edits: Vec<usize> = (0..old.len())
        .filter(|&i| edit.removed[i] || edit.out[i] != old[i])
        .collect();
    if edits.is_empty() {
        return Some(false); // claimed a rewrite but changed nothing
    }
    // Gate-trace preservation. When no edit touches a gate event the
    // trace is untouched index-for-index, which also pins the replay
    // verdict to the input's. When gate events are edited (pulse
    // merging) the flattened sequence must be preserved and the replay
    // verdict re-proven on the candidate below — regrouping can trip
    // the verifier's slot-reuse and DAG-order rules.
    let events_edited = edits
        .iter()
        .any(|&i| is_gate_event(&old[i]) || (!edit.removed[i] && is_gate_event(&edit.out[i])));
    if events_edited && flat_trace(kept) != flat_trace(old) {
        return Some(false);
    }
    // Line travel: the same comparison as the full harness.
    if line_travel(kept) > line_travel(old) + 1e-12 {
        return Some(false);
    }
    // Lockstep legality. The init prefix and loading map are shared with
    // the (verified) input, so both machines start from the same state;
    // edits inside the init prefix cannot be bounded this way.
    let Ok((mut m_old, start)) =
        init_machine(current, CheckMode::Exhaustive, WorkPool::sequential())
    else {
        return None;
    };
    if edits[0] < start {
        return None;
    }
    let Ok((mut m_new, _)) = init_machine(current, CheckMode::Grid, WorkPool::sequential()) else {
        return None;
    };
    let mut diverged = false;
    let mut next_edit = 0usize;
    for (i, instr) in old.iter().enumerate().skip(start) {
        if next_edit < edits.len() && edits[next_edit] == i {
            diverged = true;
            next_edit += 1;
        }
        if m_old.step(i, instr, false).is_err() {
            return None; // the verified input failed to replay: bail out
        }
        if !edit.removed[i] && m_new.step(i, &edit.out[i], diverged).is_err() {
            return Some(false);
        }
        if diverged && m_new.state_eq(&m_old) {
            diverged = false;
        }
    }
    // Converged before the end: the end-of-stream checks replay the
    // input's passing verdict. Still diverged: run them on the candidate.
    if diverged && m_new.end_check(kept.len()).is_err() {
        return Some(false);
    }
    // Edited gate events: legality is proven by the lockstep replay
    // above, but the replay verdict cannot be pinned — re-prove it.
    if events_edited {
        let candidate = IsaProgram {
            instrs: kept.to_vec(),
            ..current.clone()
        };
        if replay_verify(&candidate).is_err() {
            return Some(false);
        }
    }
    Some(true)
}

// ---------------------------------------------------------------------
// Shared pass infrastructure
// ---------------------------------------------------------------------

/// An instruction that observes or overwrites line positions (or
/// executes a gate): no move-motion rewrite may look past one.
pub(crate) fn is_barrier(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::RydbergPulse { .. }
            | Instr::Transfer { .. }
            | Instr::Park { .. }
            | Instr::Cool { .. }
    )
}

/// The line a move instruction writes: `(aod, is_row, line)`.
pub(crate) fn move_key(instr: &Instr) -> Option<(u8, bool, u16)> {
    match instr {
        Instr::MoveRow { aod, row, .. } => Some((*aod, true, *row)),
        Instr::MoveCol { aod, col, .. } => Some((*aod, false, *col)),
        _ => None,
    }
}

/// A move's target track position.
pub(crate) fn move_to(instr: &Instr) -> Option<f64> {
    match instr {
        Instr::MoveRow { to, .. } | Instr::MoveCol { to, .. } => Some(*to),
        _ => None,
    }
}

/// A move's retraction flag.
pub(crate) fn move_retract(instr: &Instr) -> Option<bool> {
    match instr {
        Instr::MoveRow { retract, .. } | Instr::MoveCol { retract, .. } => Some(*retract),
        _ => None,
    }
}

#[derive(Clone)]
struct AodTrack {
    rows: Vec<f64>,
    cols: Vec<f64>,
    home_rows: Vec<f64>,
    home_cols: Vec<f64>,
    parked: bool,
}

/// Replays line positions and parked flags through a stream, exactly
/// like the legality checker's machine model. Passes use it to reason
/// about the *output* stream: apply only the instructions they keep.
///
/// All accessors return `Option` so a pass can abort (`None` = rewrite
/// nothing) on a stream it does not understand, rather than panic.
#[derive(Clone)]
pub(crate) struct Tracker {
    aods: Vec<AodTrack>,
}

impl Tracker {
    /// Builds a tracker from the stream's init prefix; returns the
    /// tracker and the index of the first non-init instruction.
    pub(crate) fn from_init(instrs: &[Instr]) -> Option<(Tracker, usize)> {
        let mut aods = Vec::new();
        let mut saw_slm = false;
        let mut pc = 0;
        while pc < instrs.len() {
            match instrs[pc] {
                Instr::InitSlm { .. } => {
                    if saw_slm {
                        return None;
                    }
                    saw_slm = true;
                }
                Instr::InitAod {
                    aod,
                    rows,
                    cols,
                    fx,
                    fy,
                } => {
                    if aod as usize != aods.len() || !(fx.is_finite() && fy.is_finite()) {
                        return None;
                    }
                    let home_rows: Vec<f64> = (0..rows).map(|r| r as f64 + fy).collect();
                    let home_cols: Vec<f64> = (0..cols).map(|c| c as f64 + fx).collect();
                    aods.push(AodTrack {
                        rows: home_rows.clone(),
                        cols: home_cols.clone(),
                        home_rows,
                        home_cols,
                        parked: false,
                    });
                }
                _ => break,
            }
            pc += 1;
        }
        if !saw_slm {
            return None;
        }
        Some((Tracker { aods }, pc))
    }

    /// Applies one instruction's state effect.
    pub(crate) fn apply(&mut self, instr: &Instr) -> Option<()> {
        match instr {
            Instr::InitSlm { .. } | Instr::InitAod { .. } => return None,
            Instr::MoveRow { aod, row, to, .. } => {
                let aod = self.aods.get_mut(*aod as usize)?;
                *aod.rows.get_mut(*row as usize)? = *to;
                aod.parked = false;
            }
            Instr::MoveCol { aod, col, to, .. } => {
                let aod = self.aods.get_mut(*aod as usize)?;
                *aod.cols.get_mut(*col as usize)? = *to;
                aod.parked = false;
            }
            Instr::Unpark { aod } => self.aods.get_mut(*aod as usize)?.parked = false,
            Instr::Park { kept } => {
                for (k, aod) in self.aods.iter_mut().enumerate() {
                    aod.rows.clone_from(&aod.home_rows);
                    aod.cols.clone_from(&aod.home_cols);
                    aod.parked = !kept.contains(&(k as u8));
                }
            }
            Instr::RydbergPulse { .. }
            | Instr::RamanLayer { .. }
            | Instr::Transfer { .. }
            | Instr::Cool { .. } => {}
        }
        Some(())
    }

    /// Current track position of one AOD line.
    pub(crate) fn line(&self, aod: u8, is_row: bool, line: u16) -> Option<f64> {
        let aod = self.aods.get(aod as usize)?;
        let lines = if is_row { &aod.rows } else { &aod.cols };
        lines.get(line as usize).copied()
    }

    /// Whether one AOD is currently parked out of the field.
    pub(crate) fn is_parked(&self, aod: u8) -> Option<bool> {
        Some(self.aods.get(aod as usize)?.parked)
    }

    /// Whether every declared AOD is unparked and at its home positions.
    pub(crate) fn all_home_in_field(&self) -> bool {
        self.aods
            .iter()
            .all(|a| !a.parked && a.rows == a.home_rows && a.cols == a.home_cols)
    }

    /// Number of declared AODs.
    pub(crate) fn num_aods(&self) -> usize {
        self.aods.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramHeader, SiteSpec, FORMAT_VERSION};
    use raa_circuit::{Circuit, Gate, Qubit};

    /// Two slots: s0 on SLM[0,0], s1 on AOD0[0,0]; `stages` CZ pulses,
    /// each approached with `split`-segment moves and retracted home.
    pub(crate) fn movement_program(stages: usize, split: usize) -> IsaProgram {
        let mut c = Circuit::new(2);
        for _ in 0..stages {
            c.push(Gate::cz(Qubit(0), Qubit(1)));
        }
        let mut instrs = vec![
            Instr::InitSlm { rows: 4, cols: 4 },
            Instr::InitAod {
                aod: 0,
                rows: 1,
                cols: 1,
                fx: 0.4,
                fy: 0.6,
            },
        ];
        for _ in 0..stages {
            let mut at = 0.6;
            for s in 0..split {
                let to = if s + 1 == split {
                    0.05
                } else {
                    at - (at - 0.05) / 2.0
                };
                instrs.push(Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: at,
                    to,
                    retract: false,
                });
                at = to;
            }
            instrs.push(Instr::MoveCol {
                aod: 0,
                col: 0,
                from: 0.4,
                to: 0.08,
                retract: false,
            });
            instrs.push(Instr::RydbergPulse {
                pairs: vec![(0, 1)],
            });
            instrs.push(Instr::MoveRow {
                aod: 0,
                row: 0,
                from: 0.05,
                to: 0.6,
                retract: true,
            });
            instrs.push(Instr::MoveCol {
                aod: 0,
                col: 0,
                from: 0.08,
                to: 0.4,
                retract: true,
            });
        }
        IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("test", "opt"),
            slot_of_qubit: vec![0, 1],
            sites: vec![
                SiteSpec {
                    array: 0,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 1,
                    row: 0,
                    col: 0,
                },
            ],
            reference: c,
            instrs,
        }
    }

    #[test]
    fn none_level_copies_verbatim() {
        let p = movement_program(2, 3);
        let (out, report) = optimize(&p, OptLevel::None);
        assert_eq!(out, p);
        assert_eq!(report.iterations, 0);
        assert_eq!(report.instructions_saved(), 0);
    }

    #[test]
    fn aggressive_reaches_a_fixpoint_and_shrinks() {
        let p = movement_program(3, 4);
        check_legality(&p).unwrap();
        let (out, report) = optimize(&p, OptLevel::Aggressive);
        assert!(report.instructions_after < report.instructions_before);
        assert!(report.line_travel_after <= report.line_travel_before + 1e-12);
        check_legality(&out).unwrap();
        replay_verify(&out).unwrap();
        // Idempotence: a second run finds nothing.
        let (again, r2) = optimize(&out, OptLevel::Aggressive);
        assert_eq!(again, out);
        assert_eq!(r2.instructions_saved(), 0);
    }

    #[test]
    fn optimization_preserves_the_flattened_gate_trace() {
        let p = movement_program(4, 2);
        let (out, _) = optimize(&p, OptLevel::Aggressive);
        assert_eq!(flat_trace(&out.instrs), flat_trace(&p.instrs));
    }

    #[test]
    fn unverified_input_is_returned_untouched() {
        let mut p = movement_program(1, 1);
        p.instrs.truncate(5); // pulse with no retraction: illegal
        let (out, report) = optimize(&p, OptLevel::Aggressive);
        assert_eq!(out, p);
        assert!(report.skipped_unverified);
        assert_eq!(report.instructions_saved(), 0);
    }

    #[test]
    fn basic_is_a_subset_of_aggressive() {
        let p = movement_program(3, 3);
        let (basic, _) = optimize(&p, OptLevel::Basic);
        let (aggressive, _) = optimize(&p, OptLevel::Aggressive);
        assert!(aggressive.instrs.len() <= basic.instrs.len());
        assert!(basic.instrs.len() <= p.instrs.len());
    }

    #[test]
    fn parse_flag_accepts_both_spellings() {
        assert_eq!(OptLevel::parse_flag("-O2"), Some(OptLevel::Aggressive));
        assert_eq!(OptLevel::parse_flag("0"), Some(OptLevel::None));
        assert_eq!(OptLevel::parse_flag("basic"), Some(OptLevel::Basic));
        assert_eq!(OptLevel::parse_flag("-O9"), None);
    }
}
