//! A minimal RFC 8259 JSON reader shared by the codecs and the
//! serving layer.
//!
//! This is the parser half of the dependency-free JSON support that
//! [`codec`](crate::codec) has always used internally; it is public so
//! other workspace crates (notably `raa-serve`, whose HTTP front
//! accepts JSON requests from untrusted clients) can parse documents
//! without growing their own parser or an external dependency.
//!
//! Errors are [`DecodeError`] values carrying the byte offset of the
//! problem — [`DecodeError::Json`] for syntax errors,
//! [`DecodeError::UnexpectedEnd`]/[`DecodeError::BadUtf8`] (with
//! offset + context) for truncated or non-UTF-8 input.

use crate::error::DecodeError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in document order (duplicate keys are kept; lookups
    /// return the first).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value as a number.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Structure`] if the value is not a number.
    pub fn num(&self) -> Result<f64, DecodeError> {
        match self {
            Value::Num(v) => Ok(*v),
            _ => Err(structure("expected number")),
        }
    }

    /// The value as an unsigned integer in `[0, max]`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Structure`] if the value is not an integer in
    /// range.
    pub fn uint(&self, max: u64) -> Result<u64, DecodeError> {
        let v = self.num()?;
        if v.fract() != 0.0 || v < 0.0 || v > max as f64 {
            return Err(structure(format!("expected integer in [0, {max}]")));
        }
        Ok(v as u64)
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Structure`] if the value is not a string.
    pub fn str(&self) -> Result<&str, DecodeError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(structure("expected string")),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Structure`] if the value is not an array.
    pub fn arr(&self) -> Result<&[Value], DecodeError> {
        match self {
            Value::Arr(items) => Ok(items),
            _ => Err(structure("expected array")),
        }
    }

    /// Looks up a required object field.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Structure`] if the value is not an object or the
    /// field is missing.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Value, DecodeError> {
        match self {
            Value::Obj(items) => items
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| structure(format!("missing field `{key}`"))),
            _ => Err(structure("expected object")),
        }
    }

    /// Looks up an optional object field: `Ok(None)` when the field is
    /// absent or JSON `null`, an error when `self` is not an object.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Structure`] if the value is not an object.
    pub fn opt_field<'a>(&'a self, key: &str) -> Result<Option<&'a Value>, DecodeError> {
        match self {
            Value::Obj(items) => Ok(items
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .filter(|v| !matches!(v, Value::Null))),
            _ => Err(structure("expected object")),
        }
    }
}

/// Builds a [`DecodeError::Structure`] — the error for well-formed
/// JSON whose shape does not match what the caller expects.
pub fn structure(message: impl Into<String>) -> DecodeError {
    DecodeError::Structure {
        message: message.into(),
    }
}

/// Parses a complete JSON document: exactly one value, with nothing
/// but whitespace after it.
///
/// # Errors
///
/// [`DecodeError::Json`] on syntax problems, [`DecodeError::
/// UnexpectedEnd`] on truncation, [`DecodeError::TrailingData`] if
/// non-whitespace bytes follow the value.
///
/// # Examples
///
/// ```
/// use raa_isa::json::{parse, Value};
///
/// let v = parse(r#"{"jobs": [1, 2.5], "name": "bell"}"#)?;
/// assert_eq!(v.field("name")?.str()?, "bell");
/// assert_eq!(v.field("jobs")?.arr()?.len(), 2);
/// assert!(matches!(v.opt_field("missing")?, None));
/// # Ok::<(), raa_isa::DecodeError>(())
/// ```
pub fn parse(text: &str) -> Result<Value, DecodeError> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DecodeError::TrailingData {
            bytes: parser.bytes.len() - parser.pos,
        });
    }
    Ok(root)
}

/// Maximum container (array/object) nesting the parser accepts.
/// Parsing recurses per level, and the serving layer feeds this parser
/// untrusted multi-megabyte bodies — without a bound, a document of
/// nothing but `[` would overflow the connection thread's stack. 128
/// is far beyond any legitimate document of ours (the codec's streams
/// nest fewer than 10 deep).
const MAX_DEPTH: usize = 128;

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl JsonParser<'_> {
    fn err(&self, message: impl Into<String>) -> DecodeError {
        DecodeError::Json {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn end(&self) -> DecodeError {
        DecodeError::UnexpectedEnd {
            offset: self.bytes.len(),
            context: "json document",
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DecodeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<Value, DecodeError>,
    ) -> Result<Value, DecodeError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        self.depth += 1;
        let v = container(self);
        self.depth -= 1;
        v
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        match self.peek().ok_or_else(|| self.end())? {
            b'{' => self.nested(Self::object),
            b'[' => self.nested(Self::array),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(self.err(format!("unexpected byte `{}`", c as char))),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, DecodeError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Value, DecodeError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DecodeError::BadUtf8 { offset: start })?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.end())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos).ok_or_else(|| self.end())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Re-borrow from the byte slice to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while let Some(&c) = self.bytes.get(end) {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| DecodeError::BadUtf8 { offset: start })?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DecodeError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.end())?;
        let text =
            std::str::from_utf8(chunk).map_err(|_| DecodeError::BadUtf8 { offset: self.pos })?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad hex"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Value, DecodeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, DecodeError> {
        self.expect(b'{')?;
        let mut items = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(items));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            items.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(items));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_trailing_data() {
        assert!(matches!(
            parse("{} x"),
            Err(DecodeError::TrailingData { bytes: 1 })
        ));
    }

    #[test]
    fn truncated_documents_report_end_offset() {
        for doc in ["", "{", "[1,", "\"ab", "{\"k\": "] {
            match parse(doc) {
                Err(DecodeError::UnexpectedEnd { offset, context }) => {
                    assert!(offset <= doc.len());
                    assert!(!context.is_empty());
                }
                Err(_) => {}
                Ok(v) => panic!("truncated doc `{doc}` parsed as {v:?}"),
            }
        }
    }

    #[test]
    fn nesting_at_the_bound_parses_and_past_it_errors() {
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(matches!(parse(&over), Err(DecodeError::Json { .. })));
        let objects = "{\"k\":".repeat(MAX_DEPTH + 1);
        assert!(matches!(parse(&objects), Err(DecodeError::Json { .. })));
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing_the_stack() {
        // A megabyte of `[` recursed once per byte before the depth
        // bound existed — enough to overflow an 8 MiB thread stack.
        for doc in ["[".repeat(1 << 20), "{\"a\":".repeat(200_000)] {
            assert!(matches!(parse(&doc), Err(DecodeError::Json { .. })));
        }
    }

    #[test]
    fn opt_field_treats_null_as_absent() {
        let v = parse(r#"{"a": null, "b": 1}"#).unwrap();
        assert!(v.opt_field("a").unwrap().is_none());
        assert!(v.opt_field("b").unwrap().is_some());
        assert!(v.opt_field("c").unwrap().is_none());
        assert!(Value::Null.opt_field("a").is_err());
    }
}
