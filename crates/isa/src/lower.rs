//! Generic lowering of abstract gate schedules to instruction streams.
//!
//! The baseline compilers (Tan-IterP/Tan-Solver, the SABRE-routed fixed
//! topologies, Geyser) produce *abstract* schedules — ordered groups of
//! two-qubit gate indices — with no atom-movement geometry. On a
//! reconfigurable array such schedules execute by re-grabbing atoms
//! (SLM↔AOD transfers), which is exactly how the DPQA compiler family
//! realizes arbitrary pairs; [`lower_gate_schedule`] therefore lowers
//! each scheduled two-qubit gate to an [`Instr::Transfer`] and each
//! ready one-qubit gate to a [`Instr::RamanLayer`], producing a stream
//! that the shared replay verifier and legality checker accept or
//! reject exactly like an Atomique movement stream.

use raa_circuit::{Circuit, DagSchedule, GateIdx};

use crate::error::LowerError;
use crate::program::{Instr, IsaProgram, ProgramHeader, SiteSpec, FORMAT_VERSION};

/// Lowers `reference` (a slot-level circuit) executed as `stages`
/// (groups of two-qubit gate indices, in execution order) into an
/// instruction stream.
///
/// One-qubit gates are not listed in `stages`; they are emitted as
/// Raman layers as soon as their dependencies allow, which preserves
/// DAG consistency. Slots are loaded onto the snuggest square SLM grid;
/// the stream contains no AOD movement (two-qubit gates execute as
/// transfers), so it is trivially movement-legal while remaining fully
/// replay-verifiable.
///
/// # Errors
///
/// [`LowerError`] if `stages` is not a valid execution order of the
/// circuit's two-qubit gates.
///
/// # Examples
///
/// ```
/// use raa_circuit::{Circuit, Gate, Qubit};
/// use raa_isa::{check_legality, lower_gate_schedule, replay_verify, Instr, ProgramHeader};
///
/// let mut c = Circuit::new(3);
/// c.push(Gate::h(Qubit(0)));
/// c.push(Gate::cz(Qubit(0), Qubit(1)));
/// c.push(Gate::cz(Qubit(1), Qubit(2)));
///
/// // Gate indices 1 and 2 executed in two stages.
/// let program = lower_gate_schedule(&c, &[vec![1], vec![2]], ProgramHeader::new("doc", "chain"))?;
/// assert_eq!(
///     program.instrs.iter().filter(|i| matches!(i, Instr::Transfer { .. })).count(),
///     2
/// );
/// check_legality(&program)?;
/// assert_eq!(replay_verify(&program)?.two_qubit_gates, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lower_gate_schedule(
    reference: &Circuit,
    stages: &[Vec<GateIdx>],
    header: ProgramHeader,
) -> Result<IsaProgram, LowerError> {
    let n = reference.num_qubits();
    let side = (n as f64).sqrt().ceil().max(1.0) as usize;

    let mut instrs: Vec<Instr> = Vec::new();
    instrs.push(Instr::InitSlm {
        rows: side as u16,
        cols: side as u16,
    });

    let mut sched = DagSchedule::new(reference);
    drain_one_qubit(reference, &mut sched, &mut instrs);
    for stage in stages {
        for &g in stage {
            let gate = reference
                .gates()
                .get(g)
                .ok_or(LowerError::NotTwoQubit { gate: g })?;
            let (a, b) = gate.pair().ok_or(LowerError::NotTwoQubit { gate: g })?;
            // The gate must be executable here; draining cannot unblock a
            // two-qubit gate whose two-qubit predecessors are missing.
            drain_one_qubit(reference, &mut sched, &mut instrs);
            if !sched.front().contains(&g) {
                return Err(LowerError::NotExecutable { gate: g });
            }
            sched.execute(g);
            instrs.push(Instr::Transfer { a: a.0, b: b.0 });
        }
    }
    drain_one_qubit(reference, &mut sched, &mut instrs);
    if !sched.is_done() {
        let total = reference
            .gates()
            .iter()
            .filter(|g| g.is_two_qubit())
            .count();
        let scheduled = stages.iter().map(|s| s.len()).sum();
        return Err(LowerError::Incomplete {
            remaining: reconcile_unexecuted(total, scheduled)?,
        });
    }

    Ok(IsaProgram {
        version: FORMAT_VERSION,
        header,
        slot_of_qubit: (0..n as u32).collect(),
        sites: (0..n)
            .map(|i| SiteSpec {
                array: 0,
                row: (i / side) as u16,
                col: (i % side) as u16,
            })
            .collect(),
        reference: reference.clone(),
        instrs,
    })
}

/// Reconciles an unfinished schedule's counts into the number of
/// two-qubit gates it left unexecuted.
///
/// Reaching this point with `scheduled >= total` would mean the stage
/// list claims to have executed at least every two-qubit gate while
/// the replay tracker says some never ran — a bookkeeping
/// contradiction, not a property of the input. A `saturating_sub` here
/// would silently report such a miscount as "0 remaining" (then get
/// clamped to 1), masking the bug; instead it is surfaced as
/// [`LowerError::Internal`].
fn reconcile_unexecuted(total: usize, scheduled: usize) -> Result<usize, LowerError> {
    match total.checked_sub(scheduled) {
        Some(remaining) if remaining > 0 => Ok(remaining),
        Some(_) => Err(LowerError::Internal {
            message: format!("schedule lists all {total} two-qubit gates but some never executed"),
        }),
        None => Err(LowerError::Internal {
            message: format!(
                "schedule lists {scheduled} two-qubit gates but the circuit has only {total}"
            ),
        }),
    }
}

/// Emits every currently-executable one-qubit gate as Raman layers.
fn drain_one_qubit(circuit: &Circuit, sched: &mut DagSchedule, instrs: &mut Vec<Instr>) {
    loop {
        let ones: Vec<GateIdx> = sched
            .front()
            .iter()
            .copied()
            .filter(|&g| circuit.gates()[g].is_one_qubit())
            .collect();
        if ones.is_empty() {
            return;
        }
        let gates = ones.iter().map(|&g| circuit.gates()[g]).collect();
        sched.execute_all(&ones);
        instrs.push(Instr::RamanLayer { gates });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_legality, replay_verify};
    use raa_circuit::{Gate, Qubit};

    fn header() -> ProgramHeader {
        ProgramHeader::new("test", "lower")
    }

    #[test]
    fn interleaved_circuit_lowers_and_verifies() {
        let mut c = Circuit::new(4);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::rz(Qubit(1), 0.4)); // depends on the first CZ
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        c.push(Gate::cz(Qubit(0), Qubit(3)));
        let p = lower_gate_schedule(&c, &[vec![1], vec![3, 4]], header()).unwrap();
        check_legality(&p).unwrap();
        let r = replay_verify(&p).unwrap();
        assert_eq!(r.two_qubit_gates, 3);
        assert_eq!(r.one_qubit_gates, 2);
        assert_eq!(r.transfers, 3);
    }

    #[test]
    fn one_qubit_only_circuit_lowers() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::x(Qubit(0)));
        let p = lower_gate_schedule(&c, &[], header()).unwrap();
        // Sequential dependency: two separate Raman layers.
        let layers = p
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::RamanLayer { .. }))
            .count();
        assert_eq!(layers, 2);
        replay_verify(&p).unwrap();
    }

    #[test]
    fn out_of_order_schedule_is_rejected() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        assert_eq!(
            lower_gate_schedule(&c, &[vec![1, 0]], header()),
            Err(LowerError::NotExecutable { gate: 1 })
        );
    }

    #[test]
    fn incomplete_schedule_is_rejected() {
        let mut c = Circuit::new(3);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        c.push(Gate::cz(Qubit(1), Qubit(2)));
        assert_eq!(
            lower_gate_schedule(&c, &[vec![0]], header()),
            Err(LowerError::Incomplete { remaining: 1 })
        );
    }

    #[test]
    fn reconcile_reports_true_remainder() {
        assert_eq!(reconcile_unexecuted(5, 2), Ok(3));
        assert_eq!(reconcile_unexecuted(1, 0), Ok(1));
    }

    #[test]
    fn reconcile_surfaces_miscounts_instead_of_masking_them() {
        // `saturating_sub` would have returned 0 (clamped to 1) for
        // both of these; they are contradictions and must say so.
        assert!(matches!(
            reconcile_unexecuted(2, 2),
            Err(LowerError::Internal { .. })
        ));
        match reconcile_unexecuted(2, 5) {
            Err(LowerError::Internal { message }) => {
                assert!(message.contains("5"), "offending count in message");
                assert!(message.contains("2"), "true total in message");
            }
            other => panic!("expected Internal, got {other:?}"),
        }
    }

    #[test]
    fn one_qubit_index_in_stage_is_rejected() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        assert_eq!(
            lower_gate_schedule(&c, &[vec![0]], header()),
            Err(LowerError::NotTwoQubit { gate: 0 })
        );
    }
}
