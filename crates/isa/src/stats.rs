//! Stream-level statistics.

use crate::program::{Instr, IsaProgram};

/// Aggregate statistics of one instruction stream, the ISA-level
/// counterpart of the compiler's `CompileStats`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IsaStats {
    /// Total instructions in the stream.
    pub instructions: usize,
    /// Row/column move instructions (including retractions).
    pub moves: usize,
    /// Rydberg pulses fired.
    pub pulses: usize,
    /// Raman one-qubit layers.
    pub raman_layers: usize,
    /// Transfer-assisted gates.
    pub transfers: usize,
    /// Cooling swaps.
    pub cools: usize,
    /// Park (re-home) events.
    pub parks: usize,
    /// Two-qubit gates executed (pulse pairs + transfers).
    pub two_qubit_gates: usize,
    /// One-qubit gates executed.
    pub one_qubit_gates: usize,
    /// Summed line travel of all move instructions, in track units.
    /// (Line travel, not per-atom travel: one row move carries every
    /// atom of that row.)
    pub line_travel_tracks: f64,
    /// Summed line travel in µm.
    pub line_travel_um: f64,
    /// Largest number of pairs driven by a single pulse.
    pub max_parallel_pulse: usize,
}

impl IsaStats {
    /// Computes the statistics of `program`.
    pub fn of(program: &IsaProgram) -> IsaStats {
        let mut s = IsaStats {
            instructions: program.instrs.len(),
            ..IsaStats::default()
        };
        for instr in &program.instrs {
            match instr {
                Instr::MoveRow { from, to, .. } | Instr::MoveCol { from, to, .. } => {
                    s.moves += 1;
                    s.line_travel_tracks += (to - from).abs();
                }
                Instr::RydbergPulse { pairs } => {
                    s.pulses += 1;
                    s.two_qubit_gates += pairs.len();
                    s.max_parallel_pulse = s.max_parallel_pulse.max(pairs.len());
                }
                Instr::RamanLayer { gates } => {
                    s.raman_layers += 1;
                    s.one_qubit_gates += gates.len();
                }
                Instr::Transfer { .. } => {
                    s.transfers += 1;
                    s.two_qubit_gates += 1;
                }
                Instr::Cool { .. } => s.cools += 1,
                Instr::Park { .. } => s.parks += 1,
                Instr::InitSlm { .. } | Instr::InitAod { .. } | Instr::Unpark { .. } => {}
            }
        }
        s.line_travel_um = s.line_travel_tracks * program.header.spacing_um;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramHeader, SiteSpec, FORMAT_VERSION};
    use raa_circuit::{Circuit, Gate, Qubit};

    #[test]
    fn counts_and_travel_add_up() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        let p = IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("test", "stats"),
            slot_of_qubit: vec![0, 1],
            sites: vec![
                SiteSpec {
                    array: 0,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 1,
                    row: 0,
                    col: 0,
                },
            ],
            reference: c,
            instrs: vec![
                Instr::InitSlm { rows: 2, cols: 2 },
                Instr::InitAod {
                    aod: 0,
                    rows: 1,
                    cols: 1,
                    fx: 0.4,
                    fy: 0.6,
                },
                Instr::RamanLayer {
                    gates: vec![Gate::h(Qubit(0))],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.6,
                    to: 0.1,
                    retract: false,
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.1,
                    to: 0.6,
                    retract: true,
                },
                Instr::Cool { aod: 0 },
                Instr::Park { kept: vec![] },
            ],
        };
        let s = IsaStats::of(&p);
        assert_eq!(s.instructions, 8);
        assert_eq!(s.moves, 2);
        assert_eq!(s.pulses, 1);
        assert_eq!(s.raman_layers, 1);
        assert_eq!(s.two_qubit_gates, 1);
        assert_eq!(s.one_qubit_gates, 1);
        assert_eq!(s.cools, 1);
        assert_eq!(s.parks, 1);
        assert!((s.line_travel_tracks - 1.0).abs() < 1e-12);
        assert!((s.line_travel_um - 15.0).abs() < 1e-9);
        assert_eq!(s.max_parallel_pulse, 1);
    }
}
