//! The standalone legality checker.
//!
//! [`check_legality`] replays atom positions through an instruction
//! stream and re-verifies the three RAA hardware constraints *purely
//! from the stream* — it shares no state with the Atomique router, the
//! baseline compilers, or `atomique::validate_program`, so it catches
//! serialization and bookkeeping bugs none of them can see.
//!
//! Checks performed:
//!
//! * **C1 (exact-pair Rydberg addressing)** — at every
//!   [`Instr::RydbergPulse`], each scheduled pair must sit within the
//!   blockade radius, and *no other* pair of in-field atoms may; at the
//!   end of the stream no pair at all may remain within the radius.
//!   (The global laser fires only at pulses, so between pulses atoms may
//!   transiently pass near each other — what matters is the
//!   configuration whenever a pulse fires, which these two checks cover
//!   exhaustively.)
//! * **C2 (row/column order)** — at every pulse, each AOD's row and
//!   column coordinates must be strictly increasing.
//! * **C3 (line separation)** — at every pulse, adjacent rows/columns of
//!   one AOD must be at least one blockade radius apart.
//!
//! [`Instr::Transfer`] gates are exempt from geometric checks: the
//! re-grabbed atom is carried directly to its partner, which is exactly
//! the transfer-loss-prone mechanism the paper charges separately.

use crate::error::LegalityError;
use crate::program::{Instr, IsaProgram};

/// Slack applied to strict inequalities, matching the router/validator.
const EPS: f64 = 1e-9;

struct AodState {
    rows: Vec<f64>,
    cols: Vec<f64>,
    home_rows: Vec<f64>,
    home_cols: Vec<f64>,
    parked: bool,
}

struct Machine {
    slm: Option<(u16, u16)>,
    aods: Vec<AodState>,
    interact_r: f64,
}

impl Machine {
    fn position(&self, site: crate::SiteSpec) -> (f64, f64) {
        if site.array == 0 {
            (site.row as f64, site.col as f64)
        } else {
            let aod = &self.aods[site.array as usize - 1];
            (aod.rows[site.row as usize], aod.cols[site.col as usize])
        }
    }

    fn in_field(&self, site: crate::SiteSpec) -> bool {
        site.array == 0 || !self.aods[site.array as usize - 1].parked
    }
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dr = a.0 - b.0;
    let dc = a.1 - b.1;
    (dr * dr + dc * dc).sqrt()
}

fn malformed(pc: usize, message: impl Into<String>) -> LegalityError {
    LegalityError::Malformed {
        pc,
        message: message.into(),
    }
}

/// Verifies that `program`'s stream satisfies the hardware constraints.
///
/// # Errors
///
/// The first violation or structural problem found, as a
/// [`LegalityError`].
pub fn check_legality(program: &IsaProgram) -> Result<(), LegalityError> {
    let mut m = Machine {
        slm: None,
        aods: Vec::new(),
        interact_r: program.interaction_radius_tracks(),
    };
    if !(m.interact_r.is_finite() && m.interact_r > 0.0) {
        return Err(malformed(usize::MAX, "non-positive interaction radius"));
    }

    // --- Init section: must prefix the stream. ---
    let mut pc = 0usize;
    while pc < program.instrs.len() {
        match program.instrs[pc] {
            Instr::InitSlm { rows, cols } => {
                if m.slm.is_some() {
                    return Err(malformed(pc, "duplicate InitSlm"));
                }
                if rows == 0 || cols == 0 {
                    return Err(malformed(pc, "empty SLM array"));
                }
                m.slm = Some((rows, cols));
            }
            Instr::InitAod {
                aod,
                rows,
                cols,
                fx,
                fy,
            } => {
                if aod as usize != m.aods.len() {
                    return Err(malformed(pc, "AOD arrays must be declared in index order"));
                }
                if rows == 0 || cols == 0 {
                    return Err(malformed(pc, "empty AOD array"));
                }
                if !(fx.is_finite() && fy.is_finite()) {
                    return Err(malformed(pc, "non-finite AOD home offset"));
                }
                let home_rows: Vec<f64> = (0..rows).map(|r| r as f64 + fy).collect();
                let home_cols: Vec<f64> = (0..cols).map(|c| c as f64 + fx).collect();
                m.aods.push(AodState {
                    rows: home_rows.clone(),
                    cols: home_cols.clone(),
                    home_rows,
                    home_cols,
                    parked: false,
                });
            }
            _ => break,
        }
        pc += 1;
    }
    if m.slm.is_none() {
        return Err(malformed(usize::MAX, "stream declares no SLM array"));
    }
    if program.instrs[pc..]
        .iter()
        .any(|i| matches!(i, Instr::InitSlm { .. } | Instr::InitAod { .. }))
    {
        let at = pc
            + program.instrs[pc..]
                .iter()
                .position(|i| matches!(i, Instr::InitSlm { .. } | Instr::InitAod { .. }))
                .unwrap();
        return Err(malformed(at, "init instruction after start of program"));
    }

    // --- Loading map: every slot on a declared, in-range trap. ---
    let (slm_rows, slm_cols) = m.slm.unwrap();
    for (slot, site) in program.sites.iter().enumerate() {
        let ok = if site.array == 0 {
            site.row < slm_rows && site.col < slm_cols
        } else if let Some(aod) = m.aods.get(site.array as usize - 1) {
            (site.row as usize) < aod.rows.len() && (site.col as usize) < aod.cols.len()
        } else {
            false
        };
        if !ok {
            return Err(malformed(
                usize::MAX,
                format!("slot {slot} loaded on unknown trap"),
            ));
        }
    }

    // --- Replay. The C1 exactness check runs at every pulse (the global
    // Rydberg laser fires nowhere else) and once more at the end of the
    // stream, which is where incomplete retraction physically matters.
    for (pc, instr) in program.instrs.iter().enumerate().skip(pc) {
        match instr {
            Instr::InitSlm { .. } | Instr::InitAod { .. } => unreachable!("init scanned above"),
            Instr::MoveRow { aod, row, to, .. } => {
                let aod_state = m
                    .aods
                    .get_mut(*aod as usize)
                    .ok_or_else(|| malformed(pc, "move on undeclared AOD"))?;
                let slot = aod_state
                    .rows
                    .get_mut(*row as usize)
                    .ok_or_else(|| malformed(pc, "move on nonexistent row"))?;
                if !to.is_finite() {
                    return Err(malformed(pc, "non-finite move target"));
                }
                *slot = *to;
                aod_state.parked = false;
            }
            Instr::MoveCol { aod, col, to, .. } => {
                let aod_state = m
                    .aods
                    .get_mut(*aod as usize)
                    .ok_or_else(|| malformed(pc, "move on undeclared AOD"))?;
                let slot = aod_state
                    .cols
                    .get_mut(*col as usize)
                    .ok_or_else(|| malformed(pc, "move on nonexistent column"))?;
                if !to.is_finite() {
                    return Err(malformed(pc, "non-finite move target"));
                }
                *slot = *to;
                aod_state.parked = false;
            }
            Instr::Unpark { aod } => {
                m.aods
                    .get_mut(*aod as usize)
                    .ok_or_else(|| malformed(pc, "unpark of undeclared AOD"))?
                    .parked = false;
            }
            Instr::RydbergPulse { pairs } => {
                check_line_constraints(&m, pc)?;
                check_pulse(&m, program, pc, pairs)?;
            }
            Instr::RamanLayer { gates } => {
                for g in gates {
                    for q in g.qubits() {
                        if q.index() >= program.num_slots() {
                            return Err(malformed(pc, format!("raman gate on unknown slot {q}")));
                        }
                    }
                }
            }
            Instr::Transfer { a, b } => {
                if *a as usize >= program.num_slots() || *b as usize >= program.num_slots() {
                    return Err(malformed(pc, "transfer on unknown slot"));
                }
            }
            Instr::Cool { aod } => {
                if *aod as usize >= m.aods.len() {
                    return Err(malformed(pc, "cool of undeclared AOD"));
                }
            }
            Instr::Park { kept } => {
                for &k in kept {
                    if k as usize >= m.aods.len() {
                        return Err(malformed(pc, "park keeps undeclared AOD"));
                    }
                }
                for (k, aod) in m.aods.iter_mut().enumerate() {
                    aod.rows.clone_from(&aod.home_rows);
                    aod.cols.clone_from(&aod.home_cols);
                    aod.parked = !kept.contains(&(k as u8));
                }
            }
        }
    }
    // End of stream: line constraints hold and no in-field pair remains
    // within the blockade radius (a further pulse would re-fire on it).
    let end = program.instrs.len();
    check_line_constraints(&m, end)?;
    check_no_proximity(&m, program, end, &[])?;
    Ok(())
}

/// C2 and C3 over every declared AOD.
fn check_line_constraints(m: &Machine, pc: usize) -> Result<(), LegalityError> {
    for (k, aod) in m.aods.iter().enumerate() {
        for (lines, rows) in [(&aod.rows, true), (&aod.cols, false)] {
            for w in lines.windows(2) {
                let gap = w[1] - w[0];
                if gap <= EPS {
                    return Err(LegalityError::OrderViolation {
                        pc,
                        aod: k as u8,
                        rows,
                    });
                }
                if gap < m.interact_r - EPS {
                    return Err(LegalityError::LineOverlap {
                        pc,
                        aod: k as u8,
                        rows,
                        gap,
                    });
                }
            }
        }
    }
    Ok(())
}

/// C1 at a pulse: scheduled pairs touch, nothing else does.
fn check_pulse(
    m: &Machine,
    program: &IsaProgram,
    pc: usize,
    pairs: &[(u32, u32)],
) -> Result<(), LegalityError> {
    let n = program.num_slots() as u32;
    let mut desired: Vec<(u32, u32)> = Vec::with_capacity(pairs.len());
    for &(a, b) in pairs {
        if a >= n || b >= n {
            return Err(LegalityError::Malformed {
                pc,
                message: format!("pulse references unknown slot ({a}, {b})"),
            });
        }
        for s in [a, b] {
            if !m.in_field(program.sites[s as usize]) {
                return Err(LegalityError::Malformed {
                    pc,
                    message: format!("pulse on slot {s} of a parked array"),
                });
            }
        }
        desired.push((a.min(b), a.max(b)));
        let pa = m.position(program.sites[a as usize]);
        let pb = m.position(program.sites[b as usize]);
        let d = dist(pa, pb);
        if d > m.interact_r + EPS {
            return Err(LegalityError::PairTooFar {
                pc,
                pair: (a, b),
                distance: d,
            });
        }
    }

    check_no_proximity(m, program, pc, &desired)
}

/// No in-field pair except the `exempt` (normalized) ones may sit within
/// the blockade radius. `exempt` is a pulse's scheduled pair set, empty
/// for the end-of-stream check.
fn check_no_proximity(
    m: &Machine,
    program: &IsaProgram,
    pc: usize,
    exempt: &[(u32, u32)],
) -> Result<(), LegalityError> {
    let n = program.num_slots() as u32;
    let active: Vec<u32> = (0..n)
        .filter(|&s| m.in_field(program.sites[s as usize]))
        .collect();
    for (xi, &x) in active.iter().enumerate() {
        let px = m.position(program.sites[x as usize]);
        for &y in &active[xi + 1..] {
            let key = (x.min(y), x.max(y));
            if exempt.contains(&key) {
                continue;
            }
            let py = m.position(program.sites[y as usize]);
            let d = dist(px, py);
            if d <= m.interact_r {
                return Err(LegalityError::UnwantedInteraction {
                    pc,
                    pair: key,
                    distance: d,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProgramHeader, SiteSpec, FORMAT_VERSION};
    use raa_circuit::{Circuit, Gate, Qubit};

    /// Two slots: s0 on SLM[0,0], s1 on AOD0[0,0]; one pulse brings s1
    /// next to s0 and retracts it afterwards.
    fn legal_program() -> IsaProgram {
        let mut c = Circuit::new(2);
        c.push(Gate::cz(Qubit(0), Qubit(1)));
        IsaProgram {
            version: FORMAT_VERSION,
            header: ProgramHeader::new("test", "legal"),
            slot_of_qubit: vec![0, 1],
            sites: vec![
                SiteSpec {
                    array: 0,
                    row: 0,
                    col: 0,
                },
                SiteSpec {
                    array: 1,
                    row: 0,
                    col: 0,
                },
            ],
            reference: c,
            instrs: vec![
                Instr::InitSlm { rows: 4, cols: 4 },
                Instr::InitAod {
                    aod: 0,
                    rows: 1,
                    cols: 1,
                    fx: 0.4,
                    fy: 0.6,
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.6,
                    to: 0.05,
                    retract: false,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 0,
                    from: 0.4,
                    to: 0.08,
                    retract: false,
                },
                Instr::RydbergPulse {
                    pairs: vec![(0, 1)],
                },
                Instr::MoveRow {
                    aod: 0,
                    row: 0,
                    from: 0.05,
                    to: 0.6,
                    retract: true,
                },
                Instr::MoveCol {
                    aod: 0,
                    col: 0,
                    from: 0.08,
                    to: 0.4,
                    retract: true,
                },
            ],
        }
    }

    #[test]
    fn legal_program_passes() {
        check_legality(&legal_program()).unwrap();
    }

    #[test]
    fn pair_too_far_is_c1() {
        let mut p = legal_program();
        // Remove the column approach: the pair stays 0.32 tracks apart.
        p.instrs.remove(3);
        assert!(matches!(
            check_legality(&p),
            Err(LegalityError::PairTooFar { .. })
        ));
    }

    #[test]
    fn missing_retraction_is_caught() {
        let mut p = legal_program();
        p.instrs.truncate(5); // pulse with no retraction
        assert!(matches!(
            check_legality(&p),
            Err(LegalityError::UnwantedInteraction { .. })
        ));
    }

    #[test]
    fn order_inversion_is_c2() {
        let mut p = legal_program();
        // A second AOD row crossing below the first.
        p.instrs[1] = Instr::InitAod {
            aod: 0,
            rows: 2,
            cols: 1,
            fx: 0.4,
            fy: 0.6,
        };
        p.instrs.insert(
            2,
            Instr::MoveRow {
                aod: 0,
                row: 1,
                from: 1.6,
                to: 0.0,
                retract: false,
            },
        );
        assert!(matches!(
            check_legality(&p),
            Err(LegalityError::OrderViolation { rows: true, .. })
        ));
    }

    #[test]
    fn near_lines_are_c3() {
        let mut p = legal_program();
        p.instrs[1] = Instr::InitAod {
            aod: 0,
            rows: 2,
            cols: 1,
            fx: 0.4,
            fy: 0.6,
        };
        // Row 1 parks 0.1 tracks above row 0's target: ordered but within
        // the 1/6-track blockade radius.
        p.instrs.insert(
            4,
            Instr::MoveRow {
                aod: 0,
                row: 1,
                from: 1.6,
                to: 0.15,
                retract: false,
            },
        );
        assert!(matches!(
            check_legality(&p),
            Err(LegalityError::LineOverlap { rows: true, .. })
        ));
    }

    #[test]
    fn malformed_streams_are_rejected() {
        // No SLM.
        let mut p = legal_program();
        p.instrs.remove(0);
        assert!(matches!(
            check_legality(&p),
            Err(LegalityError::Malformed { .. })
        ));

        // Init after start.
        let mut p = legal_program();
        p.instrs.push(Instr::InitAod {
            aod: 1,
            rows: 1,
            cols: 1,
            fx: 0.2,
            fy: 0.2,
        });
        assert!(matches!(
            check_legality(&p),
            Err(LegalityError::Malformed { .. })
        ));

        // Move on undeclared AOD.
        let mut p = legal_program();
        p.instrs.push(Instr::MoveRow {
            aod: 3,
            row: 0,
            from: 0.0,
            to: 1.0,
            retract: false,
        });
        assert!(matches!(
            check_legality(&p),
            Err(LegalityError::Malformed { .. })
        ));
    }

    #[test]
    fn parked_arrays_are_exempt_until_unparked() {
        let mut p = legal_program();
        // Park AOD0 away, then pulse nothing: the parked atom must not
        // count as in-field even though its home overlaps nothing anyway.
        p.instrs = vec![
            p.instrs[0].clone(),
            p.instrs[1].clone(),
            Instr::Park { kept: vec![] },
            Instr::RydbergPulse { pairs: vec![] },
        ];
        let mut c = Circuit::new(2);
        c.push(Gate::h(Qubit(0)));
        p.reference = c;
        check_legality(&p).unwrap();
    }

    #[test]
    fn pulse_on_parked_atom_is_rejected() {
        let mut p = legal_program();
        // Park AOD0, then pulse the pair anyway: slot 1 is out of the
        // interaction field, so the pulse is malformed even if its home
        // happened to sit near the partner.
        p.instrs = vec![
            p.instrs[0].clone(),
            p.instrs[1].clone(),
            Instr::Park { kept: vec![] },
            Instr::RydbergPulse {
                pairs: vec![(0, 1)],
            },
        ];
        assert!(matches!(
            check_legality(&p),
            Err(LegalityError::Malformed { .. })
        ));
    }
}
